//! # ring-ssle
//!
//! A reproduction, as a Rust workspace, of
//! *"A Near Time-optimal Population Protocol for Self-stabilizing Leader
//! Election on Rings with a Poly-logarithmic Number of States"*
//! (Yokota, Sudo, Ooshita, Masuzawa; PODC 2023, arXiv:2305.08375).
//!
//! This umbrella crate re-exports the workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`population`] — the population-protocol simulation substrate
//!   (Section 2 of the paper): protocols, ring topologies, the uniformly
//!   random scheduler, execution, convergence measurement, fault injection
//!   and parallel batch running.
//! * [`ssle_core`] — the paper's protocol `P_PL` (Algorithms 1–5), the
//!   ring-orientation protocol `P_OR` (Algorithm 6), the two-hop-colouring
//!   substrate, and the structural machinery of Sections 3–4 (segments,
//!   perfect configurations, tokens, the safe set `S_PL`).
//! * [`ssle_baselines`] — the comparison protocols of Table 1
//!   (\[5\] Angluin et al., \[15\] Fischer–Jiang, \[28\] Yokota et al., and the
//!   Thue–Morse substrate of \[11\] Chen–Chen).
//! * [`ssle_adversary`] — the adversary engine: the scheduler zoo (weighted
//!   arc distributions, fairness-audited epoch partitions, a state-aware
//!   greedy adversary) and the worst-case stabilization search emitting
//!   reproducible certificates.
//! * [`analysis`] — statistics, asymptotic model fitting, the lottery game
//!   and table rendering used by the benchmark harness.
//!
//! The experiment harness that regenerates every table and figure lives in
//! the `ssle-bench` crate; see `EXPERIMENTS.md`.
//!
//! ## Electing a leader with a Scenario
//!
//! Experiments are declared once as a [`population::scenario::Scenario`] —
//! protocol × graph × initial condition × stop criterion × step budget — and
//! run on single sweep points or whole grids through one type-erased run
//! path:
//!
//! ```
//! use ring_ssle::prelude::*;
//! use ring_ssle::ssle_core::init;
//!
//! let scenario = ScenarioBuilder::new("quickstart", |pt: &SweepPoint| {
//!     Ppl::new(Params::for_ring(pt.n))
//! })
//! .init(|p: &Ppl, pt| init::generate(InitialCondition::UniformRandom, pt.n, p.params(), pt.seed))
//! .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
//! .step_budget(|_pt| 50_000_000)
//! .build()
//! .unwrap();
//!
//! // One trial ...
//! let report = scenario.run(&SweepPoint::new(16, 7));
//! assert!(report.converged());
//!
//! // ... or a parallel sweep, grouped per population size.
//! let grid = SweepGrid::new().sizes(&[8, 16]).trials(4, 7);
//! let summaries = scenario.sweep_summaries(&grid, &BatchRunner::new());
//! assert!(summaries.iter().all(|s| s.converged_fraction() == 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use population;
pub use ssle_adversary;
pub use ssle_baselines;
pub use ssle_core;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use analysis::{fit_models, Summary, Table};
    pub use population::prelude::*;
    pub use ssle_baselines::{AngluinModK, FischerJiang, YokotaLinear};
    pub use ssle_core::{
        in_c_dl, in_c_pb, in_s_pl, is_perfect, perfect_configuration, InitialCondition, Mode,
        Params, Ppl, PplState, SafeConfiguration, Token, TokenKind,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let params = Params::for_ring(8);
        let _protocol = Ppl::new(params);
        let _baseline = YokotaLinear::for_ring(8);
        let ring = DirectedRing::new(8).unwrap();
        assert_eq!(ring.num_agents(), 8);
        let config = perfect_configuration(8, &params, 0, 0);
        assert!(in_s_pl(&config, &params));
    }
}
