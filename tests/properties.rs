//! Property-based tests (proptest) over the core data structures and protocol
//! invariants, spanning the workspace crates.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ring_ssle::population::InteractionSeq;
use ring_ssle::prelude::*;
use ring_ssle::ssle_baselines::angluin_mod_k::{defects, AngluinModK, ModKState};
use ring_ssle::ssle_core::create::{create_leader, eliminate_leaders};
use ring_ssle::ssle_core::segments::{segment_id, segments};
use ring_ssle::ssle_core::tokens::token_is_invalid;

/// Strategy: protocol parameters with ψ ∈ [2, 8].
fn params_strategy() -> impl Strategy<Value = Params> {
    (2u32..=8, 1u32..=8).prop_map(|(psi, factor)| Params::new(psi, psi * factor.max(1)))
}

/// Cases per property: `PROPTEST_CASES` if set, otherwise a fast default so
/// the tier-1 suite stays well under the time budget.  Raise it (e.g.
/// `PROPTEST_CASES=1024 cargo test`) for a more thorough sweep.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// The transition function is deterministic and closed over the state
    /// domain: applying it to any two in-domain states yields in-domain
    /// states, and applying it twice to the same inputs yields the same
    /// outputs.
    #[test]
    fn ppl_transition_is_deterministic_and_domain_closed(
        params in params_strategy(),
        seed_l in any::<u64>(),
        seed_r in any::<u64>(),
    ) {
        let mut rng_l = ChaCha8Rng::seed_from_u64(seed_l);
        let mut rng_r = ChaCha8Rng::seed_from_u64(seed_r);
        let l0 = PplState::sample_uniform(&mut rng_l, &params);
        let r0 = PplState::sample_uniform(&mut rng_r, &params);
        prop_assert!(l0.in_domain(&params));
        prop_assert!(r0.in_domain(&params));

        let protocol = Ppl::new(params);
        let (mut l1, mut r1) = (l0.clone(), r0.clone());
        let (mut l2, mut r2) = (l0, r0);
        protocol.interact(&mut l1, &mut r1);
        protocol.interact(&mut l2, &mut r2);
        prop_assert_eq!(&l1, &l2);
        prop_assert_eq!(&r1, &r2);
        prop_assert!(l1.in_domain(&params), "initiator left the domain: {:?}", l1);
        prop_assert!(r1.in_domain(&params), "responder left the domain: {:?}", r1);
    }

    /// `CreateLeader` never demotes a leader and `EliminateLeaders` never
    /// demotes the responder's leader bit unless a live bullet hit it — in
    /// particular, a pair interaction can never lose *two* leaders at once.
    #[test]
    fn an_interaction_never_removes_two_leaders(
        params in params_strategy(),
        seed_l in any::<u64>(),
        seed_r in any::<u64>(),
    ) {
        let mut rng_l = ChaCha8Rng::seed_from_u64(seed_l);
        let mut rng_r = ChaCha8Rng::seed_from_u64(seed_r);
        let l0 = PplState::sample_uniform(&mut rng_l, &params);
        let r0 = PplState::sample_uniform(&mut rng_r, &params);
        let before = l0.leader as usize + r0.leader as usize;
        let (mut l, mut r) = (l0.clone(), r0);
        create_leader(&params, &mut l, &mut r);
        eliminate_leaders(&mut l, &mut r);
        let after = l.leader as usize + r.leader as usize;
        prop_assert!(after + 1 >= before, "lost more than one leader: {before} -> {after}");
        // The initiator's leader bit is never cleared by an interaction
        // (only the responder can be shot).
        prop_assert!(!l0.leader || l.leader);
    }

    /// Valid tokens written by the creation rule are never flagged invalid,
    /// for every border state.
    #[test]
    fn created_tokens_are_always_valid(
        params in params_strategy(),
        seed in any::<u64>(),
        black in any::<bool>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = PplState::sample_uniform(&mut rng, &params);
        let kind = if black { TokenKind::Black } else { TokenKind::White };
        // Put the agent on the creating border of the chosen colour and give
        // it the freshly created token of Line 13.
        s.dist = kind.offset(&params);
        *s.token_mut(kind) = Some(Token {
            target_offset: params.psi() as i32,
            value: !s.b,
            carry: s.b,
        });
        prop_assert!(!token_is_invalid(&s, kind, &params));
    }

    /// Perfect configurations are perfect (and in `S_PL`) for every leader
    /// position and every starting segment ID, and become imperfect when any
    /// single agent's `dist` is corrupted.
    #[test]
    fn perfect_configurations_are_safe_and_fragile(
        n in 6usize..40,
        leader_offset in 0usize..40,
        first_id in 0u64..1024,
        victim_offset in 0usize..40,
        delta in 1u32..4,
    ) {
        let params = Params::for_ring(n);
        let leader_at = leader_offset % n;
        let config = perfect_configuration(n, &params, leader_at, first_id % params.id_modulus());
        prop_assert!(is_perfect(&config, &params));
        prop_assert!(in_s_pl(&config, &params));

        let mut corrupted = config.clone();
        let victim = victim_offset % n;
        corrupted[victim].dist = (corrupted[victim].dist + delta) % params.two_psi();
        prop_assert!(!in_s_pl(&corrupted, &params) || delta % params.two_psi() == 0);
    }

    /// Segment IDs are invariant under rotating the configuration (only the
    /// agent labels change, not the ring structure).
    #[test]
    fn segment_ids_are_rotation_invariant(
        n in 6usize..40,
        first_id in 0u64..255,
        rotation in 0usize..40,
    ) {
        let params = Params::for_ring(n);
        let config = perfect_configuration(n, &params, 0, first_id % params.id_modulus());
        let rotated = config.rotated(rotation % n);
        let ids: Vec<u64> = segments(&config, &params)
            .iter()
            .map(|s| segment_id(&config, s))
            .collect();
        let rotated_ids: Vec<u64> = segments(&rotated, &params)
            .iter()
            .map(|s| segment_id(&rotated, s))
            .collect();
        // The multiset of segment IDs is preserved (order may rotate).
        let mut a = ids.clone();
        let mut b = rotated_ids.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// `seq_R(i, j)` and `seq_L(i, j)` always have length `j`, stay on ring
    /// arcs, and are inverses in the sense that reversing `seq_R(i, j)` gives
    /// the arcs of `seq_L(i + j, j)`.
    #[test]
    fn interaction_sequences_match_their_definitions(
        n in 2usize..64,
        i in 0usize..64,
        j in 1usize..64,
    ) {
        let r = InteractionSeq::seq_r(i, j, n);
        let l = InteractionSeq::seq_l(i + j, j, n);
        prop_assert_eq!(r.len(), j);
        prop_assert_eq!(l.len(), j);
        let ring = DirectedRing::new(n).unwrap();
        for e in r.iter().chain(l.iter()) {
            prop_assert!(ring.is_arc(e.initiator().index(), e.responder().index()));
        }
        let mut reversed: Vec<_> = r.interactions().to_vec();
        reversed.reverse();
        prop_assert_eq!(reversed.as_slice(), l.interactions());
    }

    /// The mod-k defect structure of baseline \[5\]: the number of defects of
    /// any configuration on a ring whose size is not a multiple of k is at
    /// least one, and one interaction never increases it.
    #[test]
    fn defect_count_is_positive_and_non_increasing(
        n in 3usize..40,
        seed in any::<u64>(),
        arc in 0usize..40,
    ) {
        let k = 2u8;
        prop_assume!(n % 2 == 1); // k = 2 must not divide n
        let protocol = AngluinModK::new(k);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::from_fn(n, |_| ModKState::sample_uniform(&mut rng, k));
        let before = defects(&config, k).len();
        prop_assert!(before >= 1);

        let mut sim = Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, seed);
        sim.apply(population::Interaction::new(arc % n, (arc + 1) % n));
        let after = defects(sim.config(), k).len();
        prop_assert!(after >= 1);
        prop_assert!(after <= before);
    }

    /// `EliminateLeaders` on its own never creates a leader, never creates a
    /// bullet out of nothing at the responder unless the initiator passed one
    /// or the responder fired, and keeps `bullet` in its 3-value domain.
    #[test]
    fn eliminate_leaders_only_removes_leaders(
        params in params_strategy(),
        seed_l in any::<u64>(),
        seed_r in any::<u64>(),
    ) {
        let mut rng_l = ChaCha8Rng::seed_from_u64(seed_l);
        let mut rng_r = ChaCha8Rng::seed_from_u64(seed_r);
        let l0 = PplState::sample_uniform(&mut rng_l, &params);
        let r0 = PplState::sample_uniform(&mut rng_r, &params);
        let (mut l, mut r) = (l0.clone(), r0.clone());
        eliminate_leaders(&mut l, &mut r);
        prop_assert!(l.leader as usize + r.leader as usize <= l0.leader as usize + r0.leader as usize);
        prop_assert!(!l.leader || l0.leader, "EliminateLeaders created an initiator leader");
        prop_assert!(!r.leader || r0.leader, "EliminateLeaders created a responder leader");
        prop_assert!(l.bullet <= 2 && r.bullet <= 2);
    }

    /// `DetermineMode` keeps the clock, hits and signal TTL inside their
    /// domains and keeps `mode` consistent with `clock` for both agents.
    #[test]
    fn determine_mode_respects_domains_and_mode_clock_consistency(
        params in params_strategy(),
        seed_l in any::<u64>(),
        seed_r in any::<u64>(),
    ) {
        use ring_ssle::ssle_core::create::determine_mode;
        let mut rng_l = ChaCha8Rng::seed_from_u64(seed_l);
        let mut rng_r = ChaCha8Rng::seed_from_u64(seed_r);
        let mut l = PplState::sample_uniform(&mut rng_l, &params);
        let mut r = PplState::sample_uniform(&mut rng_r, &params);
        determine_mode(&params, &mut l, &mut r);
        for v in [&l, &r] {
            prop_assert!(v.clock <= params.kappa_max());
            prop_assert!(v.hits <= params.psi());
            prop_assert!(v.signal_r <= params.kappa_max());
            let expected = if v.clock == params.kappa_max() { Mode::Detect } else { Mode::Construct };
            prop_assert_eq!(v.mode, expected);
        }
        // The initiator's lottery counter is always reset (Line 36).
        prop_assert_eq!(l.hits, 0);
    }

    /// Thue–Morse prefixes of arbitrary length are cube-free, and appending
    /// the same symbol three times always introduces a cube (the detector is
    /// sound and complete on these families).
    #[test]
    fn thue_morse_cube_freeness(len in 1usize..400, bit in any::<bool>()) {
        use ring_ssle::ssle_baselines::thue_morse::{find_cube, is_cube_free, thue_morse_prefix};
        let prefix = thue_morse_prefix(len);
        prop_assert!(is_cube_free(&prefix));
        let mut with_cube = prefix;
        with_cube.extend([bit, bit, bit]);
        prop_assert!(find_cube(&with_cube).is_some());
    }

    /// The \[28\] baseline's distance variable never leaves `[0, N]` and its
    /// transition is deterministic.
    #[test]
    fn yokota_distance_stays_capped(
        cap in 2u32..200,
        seed_l in any::<u64>(),
        seed_r in any::<u64>(),
    ) {
        use ring_ssle::ssle_baselines::yokota_linear::{YokotaLinear, YokotaState};
        let protocol = YokotaLinear::new(cap);
        let mut rng_l = ChaCha8Rng::seed_from_u64(seed_l);
        let mut rng_r = ChaCha8Rng::seed_from_u64(seed_r);
        let l0 = YokotaState::sample_uniform(&mut rng_l, cap);
        let r0 = YokotaState::sample_uniform(&mut rng_r, cap);
        let (mut l1, mut r1) = (l0, r0);
        let (mut l2, mut r2) = (l0, r0);
        protocol.interact(&mut l1, &mut r1);
        protocol.interact(&mut l2, &mut r2);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(r1, r2);
        prop_assert!(l1.dist <= cap && r1.dist <= cap);
        // A responder that hits the cap must have turned itself into a leader
        // with distance reset to zero, never report distance N.
        prop_assert!(r1.dist < cap || r1.leader || cap == 0);
    }

    /// `FaultPlanSpec` round-trips losslessly through the fault plan it
    /// builds: `spec → FaultPlan → spec` is the identity for every
    /// integer-exact crash schedule — the property that makes fault-bearing
    /// worst-case certificates replayable from the JSON artifact.
    #[test]
    fn fault_plan_spec_round_trips_through_the_plan(
        raw in proptest::collection::vec(
            (any::<u64>(), 0u8..4, 0u32..10_000, 0u32..10_000),
            0..6,
        ),
    ) {
        use ring_ssle::ssle_adversary::{FaultEventSpec, FaultPlacementSpec, FaultPlanSpec};
        let events: Vec<FaultEventSpec> = raw
            .into_iter()
            .map(|(at_step, kind, start, count)| FaultEventSpec {
                at_step,
                placement: match kind {
                    0 => FaultPlacementSpec::Random { count: count.max(1) },
                    1 => FaultPlacementSpec::Block { start, count: count.max(1) },
                    2 => FaultPlacementSpec::Targeted { limit: count.max(1) },
                    _ => FaultPlacementSpec::All,
                },
            })
            .collect();
        let spec = FaultPlanSpec::new(events);
        let plan = spec.plan();
        prop_assert_eq!(plan.len(), spec.events().len());
        prop_assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
    }

    /// The hostile extensions of `FaultPlanSpec` — predicate-coupled
    /// triggered events and bounded Byzantine windows — round-trip
    /// losslessly through the `FaultPlan` they build, exactly like timed
    /// events: the property that makes hostile worst-case certificates
    /// replayable from the JSON artifact.
    #[test]
    fn hostile_fault_plan_spec_round_trips_through_the_plan(
        raw_triggers in proptest::collection::vec(
            (0usize..3, 0u8..4, 0u32..10_000, 0u32..10_000),
            0..4,
        ),
        agents in proptest::collection::vec(0u32..64, 0..8),
        from_step in any::<u64>(),
        window_len in 0u64..1_000_000,
    ) {
        use ring_ssle::ssle_adversary::{
            ByzantineWindowSpec, FaultPlacementSpec, FaultPlanSpec,
        };
        const TRIGGERS: [&str; 3] = ["on-elect", "on-quiet", "on-split"];
        let mut spec = FaultPlanSpec::none();
        for (name, kind, start, count) in raw_triggers {
            let placement = match kind {
                0 => FaultPlacementSpec::Random { count: count.max(1) },
                1 => FaultPlacementSpec::Block { start, count: count.max(1) },
                2 => FaultPlacementSpec::Targeted { limit: count.max(1) },
                _ => FaultPlacementSpec::All,
            };
            spec = spec.with_triggered(TRIGGERS[name], placement);
        }
        // Inert windows (no agents, or an empty step range) are dropped at
        // attach time on both sides of the round trip.
        spec = spec.with_byzantine(ByzantineWindowSpec::new(
            agents,
            from_step,
            from_step.saturating_add(window_len),
        ));
        let plan = spec.plan();
        prop_assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
    }

    /// Configuration rotation is a bijection that preserves the multiset of
    /// states and composes additively.
    #[test]
    fn configuration_rotation_composes(
        states in proptest::collection::vec(0u32..1000, 2..50),
        a in 0usize..50,
        b in 0usize..50,
    ) {
        let n = states.len();
        let config = Configuration::from_states(states.clone());
        let double = config.rotated(a % n).rotated(b % n);
        let direct = config.rotated((a + b) % n);
        prop_assert_eq!(double.states(), direct.states());
        let mut sorted = states;
        sorted.sort_unstable();
        let mut rotated_sorted = config.rotated(a % n).into_states();
        rotated_sorted.sort_unstable();
        prop_assert_eq!(sorted, rotated_sorted);
    }
}
