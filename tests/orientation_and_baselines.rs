//! Integration tests for the Section 5 stack (two-hop colouring + ring
//! orientation) and cross-checks between the baselines and `P_PL`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ring_ssle::prelude::*;
use ring_ssle::ssle_baselines::yokota_linear::{is_safe as yokota_safe, YokotaState};
use ring_ssle::ssle_core::coloring::{
    is_two_hop_coloring, neighbors_distinguishable, oracle_two_hop_coloring, ColoringState,
    TwoHopColoring,
};
use ring_ssle::ssle_core::orientation::{
    is_oriented, oriented_config, random_orientation_config, Por,
};

#[test]
fn orientation_then_election_pipeline() {
    // The Section 5 composition: orient the undirected ring, then elect a
    // leader on the induced directed ring.  Both phases run through the
    // Scenario layer — the orientation protocol has no leader output, so it
    // uses the `for_protocol` erasure.
    let n = 20;
    let colors = oracle_two_hop_coloring(n);
    assert!(is_two_hop_coloring(&colors));
    assert!(neighbors_distinguishable(&colors));

    let orientation = ScenarioBuilder::for_protocol("p-or", |_pt: &SweepPoint| Por::new())
        .graph(GraphFamily::UndirectedRing)
        .init(|_p, pt| random_orientation_config(pt.n, pt.seed))
        .stop_when("oriented", |_p: &Por, c| is_oriented(c))
        .check_every(|pt| (pt.n * pt.n / 4) as u64)
        .step_budget(|_pt| 200_000_000)
        .build()
        .unwrap();
    let report = orientation.run(&SweepPoint::new(n, 3));
    assert!(report.converged(), "P_OR must orient the ring");
    assert_eq!(report.criterion, "oriented");

    let election = ScenarioBuilder::new("p-pl", |pt: &SweepPoint| Ppl::new(Params::for_ring(pt.n)))
        .init(|p: &Ppl, pt| {
            ring_ssle::ssle_core::init::generate(
                InitialCondition::UniformRandom,
                pt.n,
                p.params(),
                pt.seed,
            )
        })
        .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
        .check_every(|pt| (pt.n * pt.n / 4) as u64)
        .step_budget(|_pt| 1_000_000_000)
        .build()
        .unwrap();
    let run = election.run_full(&SweepPoint::new(n, 4));
    assert!(run.report.converged());
    assert_eq!(run.sim.count_leaders(), 1);
}

#[test]
fn orientation_safe_configurations_are_closed_in_both_directions() {
    for clockwise in [true, false] {
        let n = 18;
        let config = oriented_config(n, clockwise);
        assert!(is_oriented(&config));
        let reference: Vec<u8> = config.states().iter().map(|s| s.dir).collect();
        let mut sim = Simulation::new(Por::new(), UndirectedRing::new(n).unwrap(), config, 8);
        sim.run_steps(150_000);
        let now: Vec<u8> = sim.config().states().iter().map(|s| s.dir).collect();
        assert_eq!(now, reference, "clockwise = {clockwise}");
    }
}

#[test]
fn handshake_coloring_feeds_the_orientation_protocol() {
    // End-to-end over the self-stabilizing colouring stand-in: first reach a
    // colouring where each agent's neighbours are distinguishable, then check
    // that colouring is a legal input for P_OR (every agent can name "the
    // other neighbour").
    let n = 15;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    use rand::Rng;
    let config = Configuration::from_fn(n, |_| ColoringState::new(rng.gen_range(0..4)));
    let mut sim = Simulation::new(
        TwoHopColoring::default(),
        UndirectedRing::new(n).unwrap(),
        config,
        6,
    );
    let report = sim.run_until(
        |_p, c: &Configuration<ColoringState>| {
            let colors: Vec<u8> = c.states().iter().map(|s| s.color).collect();
            neighbors_distinguishable(&colors)
        },
        (n * n) as u64,
        100_000_000,
    );
    assert!(report.converged(), "colouring stand-in did not stabilize");
    let colors: Vec<u8> = sim.config().states().iter().map(|s| s.color).collect();
    for i in 0..n {
        let left = colors[(i + n - 1) % n];
        let right = colors[(i + 1) % n];
        assert_ne!(left, right, "agent {i} cannot tell its neighbours apart");
    }
}

#[test]
fn ppl_and_yokota_agree_on_what_a_converged_ring_looks_like() {
    // Both protocols end with exactly one leader and stable outputs; their
    // structural safe sets are different, but the externally visible outcome
    // (one leader forever) is the same.
    let n = 16;

    let params = Params::for_ring(n);
    let config = ring_ssle::ssle_core::init::generate(InitialCondition::AllLeaders, n, &params, 5);
    let mut ppl = Simulation::new(Ppl::new(params), DirectedRing::new(n).unwrap(), config, 5);
    ppl.run_until(
        |_p, c| in_s_pl(c, &params),
        (n * n / 4) as u64,
        1_000_000_000,
    );

    let baseline = YokotaLinear::for_ring(n);
    let cap = baseline.cap();
    let config = Configuration::uniform(n, YokotaState::leader());
    let mut yok = Simulation::new(baseline, DirectedRing::new(n).unwrap(), config, 5);
    yok.run_until(
        |_p, c: &Configuration<YokotaState>| yokota_safe(c, cap),
        (n * n / 4) as u64,
        1_000_000_000,
    );

    assert_eq!(ppl.count_leaders(), 1);
    assert_eq!(yok.count_leaders(), 1);

    // Both stay at one leader over a long closure window.
    ppl.run_steps(100_000);
    yok.run_steps(100_000);
    assert_eq!(ppl.count_leaders(), 1);
    assert_eq!(yok.count_leaders(), 1);
}

#[test]
fn state_count_accounting_matches_the_claimed_classes() {
    // P_PL: polylog — squaring n multiplies the count by far less than n.
    let p1 = Params::for_ring(1 << 10).states_per_agent();
    let p2 = Params::for_ring(1 << 20).states_per_agent();
    assert!(p2 / p1 < 1 << 10);
    // [28]: linear — squaring n multiplies the count by about n.
    let y1 = YokotaLinear::for_ring(1 << 10).states_per_agent();
    let y2 = YokotaLinear::for_ring(1 << 20).states_per_agent();
    assert!(y2 / y1 > 1 << 9);
    // [15], [5]: constant.
    assert_eq!(
        FischerJiang::new().states_per_agent(),
        FischerJiang::new().states_per_agent()
    );
    assert_eq!(AngluinModK::new(2).states_per_agent(), 4);
}
