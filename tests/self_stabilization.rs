//! Integration tests: the self-stabilization contract of `P_PL`
//! (Definition 2.1) end to end — convergence from every adversarial
//! initial-condition family, followed by closure.

use ring_ssle::prelude::*;

fn converge(
    n: usize,
    condition: InitialCondition,
    seed: u64,
) -> (Simulation<Ppl, DirectedRing>, u64) {
    let params = Params::for_ring(n);
    let config = ring_ssle::ssle_core::init::generate(condition, n, &params, seed);
    let mut sim = Simulation::new(
        Ppl::new(params),
        DirectedRing::new(n).expect("n >= 2"),
        config,
        seed,
    );
    let report = sim.run_until(
        |_p, c| in_s_pl(c, &params),
        (n * n / 4).max(16) as u64,
        2_000_000_000,
    );
    let step = report
        .converged_at
        .unwrap_or_else(|| panic!("no convergence from {} at n = {n}", condition.name()));
    (sim, step)
}

#[test]
fn converges_from_every_initial_condition_family() {
    let n = 16;
    for condition in InitialCondition::ALL {
        let (sim, _) = converge(n, condition, 7);
        assert_eq!(
            sim.count_leaders(),
            1,
            "family {} must end with one leader",
            condition.name()
        );
    }
}

#[test]
fn closure_holds_after_convergence() {
    let n = 20;
    let (mut sim, _) = converge(n, InitialCondition::UniformRandom, 3);
    let params = *sim.protocol().params();
    let leader = sim.protocol().leader_indices(sim.config().states());
    // Check at many later checkpoints: still in S_PL, same unique leader.
    for _ in 0..50 {
        sim.run_steps(10_000);
        assert!(in_s_pl(sim.config(), &params));
        assert_eq!(
            sim.protocol().leader_indices(sim.config().states()),
            leader,
            "leader changed after reaching a safe configuration"
        );
    }
}

#[test]
fn convergence_from_the_leaderless_worst_case_is_within_the_theorem_budget() {
    // Theorem 3.1: O(n^2 log n).  With the simulation constants the measured
    // time stays below 40 · n² log₂ n even from the worst-case family.
    for n in [12usize, 16, 24] {
        let (_, step) = converge(n, InitialCondition::LeaderlessConsistent, 11);
        let budget = 40.0 * (n * n) as f64 * (n as f64).log2();
        assert!(
            (step as f64) < budget,
            "n = {n}: converged at {step}, above {budget}"
        );
    }
}

#[test]
fn different_seeds_elect_possibly_different_but_always_unique_leaders() {
    let n = 16;
    let mut elected = std::collections::HashSet::new();
    for seed in 0..6u64 {
        let (sim, _) = converge(n, InitialCondition::UniformRandom, seed);
        let leaders = sim.protocol().leader_indices(sim.config().states());
        assert_eq!(leaders.len(), 1);
        elected.insert(leaders[0]);
    }
    // The elected position is configuration-dependent; over several seeds we
    // expect more than one distinct winner (not a hard-coded agent).
    assert!(
        elected.len() > 1,
        "every seed elected the same agent: {elected:?}"
    );
}

#[test]
fn recovery_after_runtime_faults() {
    let n = 24;
    let params = Params::for_ring(n);
    let mut sim = Simulation::new(
        Ppl::new(params),
        DirectedRing::new(n).unwrap(),
        perfect_configuration(n, &params, 5, 2),
        9,
    );
    assert!(in_s_pl(sim.config(), &params));
    // Corrupt a third of the ring.
    let mut injector = FaultInjector::new(13);
    injector.inject(
        sim.config_mut(),
        FaultKind::CorruptRandomAgents { count: n / 3 },
        |rng, _| PplState::sample_uniform(rng, &params),
    );
    let report = sim.run_until(
        |_p, c| in_s_pl(c, &params),
        (n * n / 4) as u64,
        2_000_000_000,
    );
    assert!(report.converged(), "must recover from a transient fault");
    assert_eq!(sim.count_leaders(), 1);
}

#[test]
fn the_paper_constants_also_converge() {
    // κ_max = 32ψ (the value assumed by the analysis) — slower but correct.
    let n = 12;
    let params = Params::paper_constants(n);
    let config =
        ring_ssle::ssle_core::init::generate(InitialCondition::AllFollowers, n, &params, 2);
    let mut sim = Simulation::new(Ppl::new(params), DirectedRing::new(n).unwrap(), config, 2);
    let report = sim.run_until(|_p, c| in_s_pl(c, &params), (n * n) as u64, 2_000_000_000);
    assert!(report.converged());
}
