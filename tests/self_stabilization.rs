//! Integration tests: the self-stabilization contract of `P_PL`
//! (Definition 2.1) end to end — convergence from every adversarial
//! initial-condition family, followed by closure — driven through the
//! type-erased `Scenario` layer (the same run path the experiment binaries
//! use).

use ring_ssle::population::downcast_config;
use ring_ssle::prelude::*;
use ring_ssle::ssle_core::init;

fn ppl_scenario(condition: InitialCondition) -> Scenario {
    ScenarioBuilder::new(format!("ppl/{}", condition.name()), |pt: &SweepPoint| {
        Ppl::new(Params::for_ring(pt.n))
    })
    .init(move |p: &Ppl, pt| init::generate(condition, pt.n, p.params(), pt.seed))
    .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
    .check_every(|pt| ((pt.n * pt.n / 4).max(16)) as u64)
    .step_budget(|_pt| 2_000_000_000)
    .build()
    .expect("complete scenario")
}

fn converge(n: usize, condition: InitialCondition, seed: u64) -> (ScenarioRun, u64) {
    let run = ppl_scenario(condition).run_full(&SweepPoint::new(n, seed));
    let step = run
        .report
        .converged_at
        .unwrap_or_else(|| panic!("no convergence from {} at n = {n}", condition.name()));
    (run, step)
}

#[test]
fn converges_from_every_initial_condition_family() {
    let n = 16;
    for condition in InitialCondition::ALL {
        let (run, _) = converge(n, condition, 7);
        assert_eq!(
            run.sim.count_leaders(),
            1,
            "family {} must end with one leader",
            condition.name()
        );
        assert_eq!(run.report.criterion, "s-pl");
    }
}

#[test]
fn closure_holds_after_convergence() {
    let n = 20;
    let (mut run, _) = converge(n, InitialCondition::UniformRandom, 3);
    let params = Params::for_ring(n);
    let leader_indices = |sim: &Simulation<DynProtocol, AnyGraph>| {
        sim.protocol().leader_indices(sim.config().states())
    };
    let leader = leader_indices(&run.sim);
    // Check at many later checkpoints: still in S_PL, same unique leader.
    // The erased simulation keeps running; the typed view is recovered by
    // downcasting the configuration.
    for _ in 0..50 {
        run.sim.run_steps(10_000);
        let typed = downcast_config::<PplState>(run.sim.config()).expect("PplState states");
        assert!(in_s_pl(&typed, &params));
        assert_eq!(
            leader_indices(&run.sim),
            leader,
            "leader changed after reaching a safe configuration"
        );
    }
}

#[test]
fn convergence_from_the_leaderless_worst_case_is_within_the_theorem_budget() {
    // Theorem 3.1: O(n^2 log n).  With the simulation constants the measured
    // time stays below 40 · n² log₂ n even from the worst-case family.
    for n in [12usize, 16, 24] {
        let (_, step) = converge(n, InitialCondition::LeaderlessConsistent, 11);
        let budget = 40.0 * (n * n) as f64 * (n as f64).log2();
        assert!(
            (step as f64) < budget,
            "n = {n}: converged at {step}, above {budget}"
        );
    }
}

#[test]
fn different_seeds_elect_possibly_different_but_always_unique_leaders() {
    let n = 16;
    let scenario = ppl_scenario(InitialCondition::UniformRandom);
    let mut elected = std::collections::HashSet::new();
    for seed in 0..6u64 {
        let run = scenario.run_full(&SweepPoint::new(n, seed));
        assert!(run.report.converged());
        let leaders = run.sim.protocol().leader_indices(run.sim.config().states());
        assert_eq!(leaders.len(), 1);
        elected.insert(leaders[0]);
    }
    // The elected position is configuration-dependent; over several seeds we
    // expect more than one distinct winner (not a hard-coded agent).
    assert!(
        elected.len() > 1,
        "every seed elected the same agent: {elected:?}"
    );
}

#[test]
fn recovery_after_runtime_faults() {
    // A fault plan corrupting a third of the ring at step 0 of an otherwise
    // safe configuration: the scenario must re-converge to S_PL.
    let n = 24;
    let scenario = ScenarioBuilder::new("ppl/recovery", |pt: &SweepPoint| {
        Ppl::new(Params::for_ring(pt.n))
    })
    .init(|p: &Ppl, pt| perfect_configuration(pt.n, p.params(), 5, 2))
    .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
    .check_every(|pt| ((pt.n * pt.n / 4) as u64).max(1))
    .step_budget(|_pt| 2_000_000_000)
    .faults(
        |pt| FaultPlan::new().at(0, FaultKind::CorruptRandomAgents { count: pt.n / 3 }),
        |p: &Ppl, rng, _i| PplState::sample_uniform(rng, p.params()),
    )
    .fault_seed(|_pt| 13)
    .build()
    .expect("complete scenario");
    let run = scenario.run_full(&SweepPoint::new(n, 9));
    assert!(
        run.report.converged(),
        "must recover from a transient fault"
    );
    assert_eq!(run.sim.count_leaders(), 1);
}

mod epoch_partition_stabilization {
    //! Satellite of the adversary engine (PR 4): stabilization under the
    //! *epoch-partition* scheduler.  The zoo member confines each epoch of
    //! steps to one group of an arc partition — locally starved, globally
    //! fair — and the [`ssle_adversary::FairnessAuditor`] certifies the
    //! fairness premise empirically per run.
    //!
    //! The property domain keeps epochs short relative to the group size
    //! (`blocks ∈ [2, 3]`, `epoch_len ∈ [1, 8]`, `n ∈ [8, 14]`): arcs then
    //! frequently miss an epoch, preserving the scheduling asynchrony the
    //! token-collision protocols need.  Long epochs drive token movement
    //! into deterministic lockstep — a genuine livelock the worst-case
    //! search exploits (see DESIGN.md "adversary engine"); they are
    //! deliberately outside this property.

    use population::{GraphFamily, Scheduler, SchedulerFamily, SweepPoint};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ssle_adversary::{EpochPartitionScheduler, FairnessAuditor};
    use ssle_bench::ProtocolKind;

    /// Cases per property: capped so the heavyweight convergence runs stay
    /// inside the tier-1 time budget even under CI's `PROPTEST_CASES=512`.
    fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(12)
            .min(24)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(cases()))]

        /// Every Table 1 protocol stabilizes under the epoch-partition
        /// scheduler across the short-epoch domain, and the fairness
        /// auditor certifies that every arc fired.
        #[test]
        fn every_table1_protocol_stabilizes_under_epoch_partition(
            n in 8usize..=14,
            blocks in 2usize..=3,
            epoch_len in 1u64..=8,
            seed in 0u64..1_000,
        ) {
            for kind in ProtocolKind::ALL {
                let auditor = FairnessAuditor::new();
                let handle = auditor.clone();
                let scenario = kind.scenario().with_scheduler(SchedulerFamily::custom(
                    "epoch-partition",
                    move |_pt, g| {
                        Box::new(
                            EpochPartitionScheduler::new(g, blocks, epoch_len)
                                .expect("ring has arcs")
                                .with_auditor(handle.clone()),
                        )
                    },
                ));
                let report = scenario
                    .try_run(&SweepPoint::new(n, seed))
                    .expect("zoo schedulers never exhaust");
                prop_assert!(
                    report.converged(),
                    "{} must stabilize under epoch-partition(blocks={blocks}, epoch={epoch_len}) \
                     at n = {n}, seed = {seed}",
                    kind.name()
                );
                // A run can converge before every arc had a chance to fire
                // (the auditor then honestly reports partial coverage), so
                // certify fairness over an extended window: keep driving the
                // same audited schedule standalone for 2 000 full rotations
                // — the window over which "every arc fires" holds with
                // overwhelming probability for every (blocks, epoch_len) in
                // the domain.
                let graph = GraphFamily::DirectedRing.build(n).expect("n >= 2");
                let mut schedule = EpochPartitionScheduler::new(&graph, blocks, epoch_len)
                    .expect("ring has arcs")
                    .with_auditor(auditor.clone());
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA1);
                for _ in 0..(2_000 * blocks as u64 * epoch_len) {
                    schedule.next_interaction(&graph, &mut rng).expect("never exhausts");
                }
                let cert = auditor.certificate();
                prop_assert_eq!(cert.arcs, n, "one arc per directed-ring agent");
                prop_assert!(
                    cert.is_fair(),
                    "fairness audit must certify every arc fired: {:?}",
                    cert
                );
                prop_assert!(cert.min_fires > 0);
                prop_assert!(cert.rotations >= 2_000);
            }
        }
    }
}

#[test]
fn the_paper_constants_also_converge() {
    // κ_max = 32ψ (the value assumed by the analysis) — slower but correct.
    let n = 12;
    let scenario = ScenarioBuilder::new("ppl/paper-constants", |pt: &SweepPoint| {
        Ppl::new(Params::paper_constants(pt.n))
    })
    .init(|p: &Ppl, pt| init::generate(InitialCondition::AllFollowers, pt.n, p.params(), pt.seed))
    .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
    .check_every(|pt| (pt.n * pt.n) as u64)
    .step_budget(|_pt| 2_000_000_000)
    .build()
    .expect("complete scenario");
    let report = scenario.run(&SweepPoint::new(n, 2));
    assert!(report.converged());
}
