//! Integration tests that replay the deterministic interaction schedules used
//! in the paper's proofs and check the claimed post-conditions.

use ring_ssle::population::InteractionSeq;
use ring_ssle::prelude::*;
use ring_ssle::ssle_core::segments::{dist_consistent, segment_id, segments};

/// Section 3.2: after `seq_R(i, n) · seq_L(i, n)` with a unique leader `u_i`
/// and all agents in construction mode, condition (1) holds and the `last`
/// flags mark exactly the last segment.
#[test]
fn full_ring_sweep_repairs_dist_and_last() {
    let n = 20;
    let params = Params::for_ring(n);
    // Start from a configuration whose dist/last are garbage but which has a
    // single clean leader at u3 and whose clocks are all zero (construction
    // mode).
    let mut config = Configuration::uniform(n, PplState::follower());
    config.map_in_place(|i, s| {
        s.dist = (i as u32 * 5 + 3) % params.two_psi();
        s.last = i % 3 == 0;
    });
    config[3] = PplState::leader();
    let mut sim = Simulation::new(Ppl::new(params), DirectedRing::new(n).unwrap(), config, 0);
    sim.apply_sequence(&InteractionSeq::full_ring_sweep(3, n));
    assert!(
        dist_consistent(sim.config(), &params),
        "condition (1) must hold after seq_R · seq_L from the leader"
    );
    // The last flags mark the last segment (relative to the leader at u3).
    let zeta = params.num_segments(n);
    let psi = params.psi() as usize;
    for i in 0..n {
        let k = (i + n - 3) % n;
        assert_eq!(
            sim.config()[i].last,
            k >= psi * (zeta - 1),
            "agent {i} (distance {k})"
        );
    }
}

/// Lemma 3.5 / Section 3.2: the token schedule across one segment pair
/// rewrites the second segment's ID to the first's plus one.
#[test]
fn token_schedule_rebuilds_the_segment_id_chain() {
    let psi = 4u32;
    let params = Params::new(psi, 8 * psi);
    let n = 16;
    for scramble in 0..4u64 {
        let mut config = perfect_configuration(n, &params, 0, 9);
        config.map_in_place(|i, s| {
            s.token_b = None;
            s.token_w = None;
            if (psi as usize..2 * psi as usize).contains(&i) {
                s.b = (i as u64 + scramble).is_multiple_of(2);
            }
        });
        let mut sim = Simulation::new(
            Ppl::new(params),
            DirectedRing::new(n).unwrap(),
            config,
            scramble,
        );
        sim.apply_sequence(&InteractionSeq::token_trajectory_schedule(
            0,
            psi as usize,
            n,
        ));
        let segs = segments(sim.config(), &params);
        let id0 = segment_id(sim.config(), &segs[0]);
        let id1 = segment_id(sim.config(), &segs[1]);
        assert_eq!(
            id1,
            (id0 + 1) % params.id_modulus(),
            "scramble {scramble}: segment chain not rebuilt"
        );
    }
}

/// Section 3.2 (detection): in detection mode with no leader, a distance
/// inconsistency is turned into a new leader as soon as the offending arc
/// fires.
#[test]
fn detection_mode_turns_a_dist_violation_into_a_leader() {
    let n = 12;
    let params = Params::for_ring(n);
    let mut config = Configuration::uniform(n, PplState::follower());
    // Leaderless, everyone in detection mode, consistent distances except
    // between u5 and u6.
    config.map_in_place(|i, s| {
        s.dist = (i as u32) % params.two_psi();
        s.clock = params.kappa_max();
        s.mode = Mode::Detect;
    });
    config[6].dist = (config[6].dist + 3) % params.two_psi();
    let mut sim = Simulation::new(Ppl::new(params), DirectedRing::new(n).unwrap(), config, 0);
    assert_eq!(sim.count_leaders(), 0);
    sim.apply(population::Interaction::new(5, 6));
    assert_eq!(
        sim.count_leaders(),
        1,
        "the violation at u6 must create a leader"
    );
    assert!(sim.config()[6].leader);
    assert!(
        sim.config()[6].shield,
        "a new leader is born shielded (Line 6)"
    );
}

/// Lemma 2.3 sanity check: a fixed interaction sequence of length ℓ occurs
/// within about nℓ random steps on average.
#[test]
fn random_scheduler_realises_sequences_at_the_expected_rate() {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ring_ssle::population::{RandomScheduler, Scheduler};

    let n = 16;
    let ring = DirectedRing::new(n).unwrap();
    let target = InteractionSeq::seq_r(0, n, n);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut sched = RandomScheduler::new();
    let trials = 40;
    let mut total_steps = 0u64;
    for _ in 0..trials {
        let mut cursor = 0usize;
        let mut steps = 0u64;
        while cursor < target.len() {
            let e = sched.next_interaction(&ring, &mut rng).unwrap();
            steps += 1;
            if e == target.interactions()[cursor] {
                cursor += 1;
            }
        }
        total_steps += steps;
    }
    let mean = total_steps as f64 / trials as f64;
    let expected = (n * n) as f64; // n · ℓ with ℓ = n
    assert!(
        mean > expected * 0.6 && mean < expected * 1.6,
        "mean steps {mean} too far from the nℓ = {expected} expectation"
    );
}

/// The elimination war never kills the last leader: from a two-leader
/// configuration the population reaches exactly one leader, never zero,
/// across many seeds.
#[test]
fn elimination_never_reaches_zero_leaders() {
    let n = 14;
    let params = Params::for_ring(n);
    for seed in 0..10u64 {
        let mut config = perfect_configuration(n, &params, 0, 1);
        // Plant a second clean leader halfway round.
        config[n / 2].become_leader();
        let mut sim = Simulation::new(
            Ppl::new(params),
            DirectedRing::new(n).unwrap(),
            config,
            seed,
        );
        for _ in 0..200 {
            sim.run_steps(500);
            assert!(
                sim.count_leaders() >= 1,
                "seed {seed}: all leaders were killed"
            );
        }
        assert_eq!(
            sim.count_leaders(),
            1,
            "seed {seed}: elimination did not finish"
        );
    }
}
