//! Removing the orientation assumption (Section 5): on an *undirected* ring,
//! first run the ring-orientation protocol `P_OR` (on top of a two-hop
//! colouring) until every agent agrees on a direction, then run `P_PL` on the
//! directed ring that the orientation defines.
//!
//! The paper composes the two protocols by self-stabilizing hierarchy; this
//! example runs them in two phases — each phase a `Scenario` (note that
//! `P_OR` has no leader output, so its scenario uses
//! `ScenarioBuilder::for_protocol`) — to make each phase observable.
//!
//! ```text
//! cargo run --release --example undirected_ring [n]
//! ```

use ring_ssle::prelude::*;
use ring_ssle::ssle_core::coloring::{is_two_hop_coloring, oracle_two_hop_coloring};
use ring_ssle::ssle_core::init;
use ring_ssle::ssle_core::orientation::{
    facing_fronts, is_oriented, random_orientation_config, OrState, Por,
};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);

    // Phase 0: the two-hop colouring substrate (assumed correct by the paper,
    // provided here by the oracle assignment; see DESIGN.md for the
    // self-stabilizing stand-in).
    let colors = oracle_two_hop_coloring(n);
    assert!(is_two_hop_coloring(&colors));
    println!(
        "two-hop colouring of the {n}-ring uses {} colours",
        colors.iter().max().unwrap() + 1
    );

    // Phase 1: ring orientation with P_OR on the undirected ring.
    let orientation = ScenarioBuilder::for_protocol("p-or", |_pt: &SweepPoint| Por::new())
        .graph(GraphFamily::UndirectedRing)
        .init(|_p, pt| random_orientation_config(pt.n, pt.seed))
        .stop_when("oriented", |_p: &Por, c| is_oriented(c))
        .check_every(|pt| ((pt.n * pt.n / 4) as u64).max(1))
        .step_budget(|_pt| 200_000_000)
        .build()
        .expect("complete scenario");
    let run = orientation.run_full(&SweepPoint::new(n, 5));
    let oriented = ring_ssle::population::downcast_config::<OrState>(run.sim.config())
        .expect("orientation states");
    println!(
        "initial orientation had {} battle fronts (pairs of neighbours pointing at each other)",
        facing_fronts(&random_orientation_config(n, 5))
    );
    let step = run.report.converged_at.expect("P_OR converges w.p. 1");
    println!(
        "orientation complete after {step} steps ({:.2} × n² log₂ n) — Theorem 5.2 promises O(n² log n)",
        step as f64 / ((n * n) as f64 * (n as f64).log2())
    );

    // The common direction the agents agreed on: clockwise if everyone points
    // at their clockwise neighbour.
    let clockwise = (0..n).all(|i| oriented[i].dir == oriented.right_of(i).color);
    println!(
        "agreed direction: {}",
        if clockwise {
            "clockwise"
        } else {
            "counter-clockwise"
        }
    );

    // Phase 2: leader election on the ring, directed according to the agreed
    // orientation.
    let election = ScenarioBuilder::new("p-pl", |pt: &SweepPoint| Ppl::new(Params::for_ring(pt.n)))
        .init(|p: &Ppl, pt| {
            init::generate(InitialCondition::UniformRandom, pt.n, p.params(), pt.seed)
        })
        .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
        .check_every(|pt| ((pt.n * pt.n / 4) as u64).max(1))
        .step_budget(|_pt| 1_000_000_000)
        .build()
        .expect("complete scenario");
    let run = election.run_full(&SweepPoint::new(n, 11));
    println!(
        "leader elected after {} further steps; leader = u{}",
        run.report.convergence_step(),
        run.sim.protocol().leader_indices(run.sim.config().states())[0]
    );
}
