//! Removing the orientation assumption (Section 5): on an *undirected* ring,
//! first run the ring-orientation protocol `P_OR` (on top of a two-hop
//! colouring) until every agent agrees on a direction, then run `P_PL` on the
//! directed ring that the orientation defines.
//!
//! The paper composes the two protocols by self-stabilizing hierarchy; this
//! example runs them in two phases to make each phase observable.
//!
//! ```text
//! cargo run --release --example undirected_ring [n]
//! ```

use ring_ssle::prelude::*;
use ring_ssle::ssle_core::coloring::{is_two_hop_coloring, oracle_two_hop_coloring};
use ring_ssle::ssle_core::orientation::{
    facing_fronts, is_oriented, random_orientation_config, Por,
};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);

    // Phase 0: the two-hop colouring substrate (assumed correct by the paper,
    // provided here by the oracle assignment; see DESIGN.md for the
    // self-stabilizing stand-in).
    let colors = oracle_two_hop_coloring(n);
    assert!(is_two_hop_coloring(&colors));
    println!(
        "two-hop colouring of the {n}-ring uses {} colours",
        colors.iter().max().unwrap() + 1
    );

    // Phase 1: ring orientation with P_OR on the undirected ring.
    let mut sim = Simulation::new(
        Por::new(),
        UndirectedRing::new(n).expect("n >= 2"),
        random_orientation_config(n, 5),
        5,
    );
    println!(
        "initial orientation: {} battle fronts (pairs of neighbours pointing at each other)",
        facing_fronts(sim.config())
    );
    let report = sim.run_until(|_p, c| is_oriented(c), (n * n / 4) as u64, 200_000_000);
    let step = report.converged_at.expect("P_OR converges w.p. 1");
    println!(
        "orientation complete after {step} steps ({:.2} × n² log₂ n) — Theorem 5.2 promises O(n² log n)",
        step as f64 / ((n * n) as f64 * (n as f64).log2())
    );

    // The common direction the agents agreed on: clockwise if everyone points
    // at their clockwise neighbour.
    let oriented = sim.config();
    let clockwise = (0..n).all(|i| oriented[i].dir == oriented.right_of(i).color);
    println!(
        "agreed direction: {}",
        if clockwise {
            "clockwise"
        } else {
            "counter-clockwise"
        }
    );

    // Phase 2: leader election on the ring, directed according to the agreed
    // orientation.
    let params = Params::for_ring(n);
    let config =
        ring_ssle::ssle_core::init::generate(InitialCondition::UniformRandom, n, &params, 11);
    let mut le = Simulation::new(
        Ppl::new(params),
        DirectedRing::new(n).expect("n >= 2"),
        config,
        11,
    );
    let report = le.run_until(
        |_p, c| in_s_pl(c, &params),
        (n * n / 4) as u64,
        1_000_000_000,
    );
    println!(
        "leader elected after {} further steps; leader = u{}",
        report.convergence_step(),
        le.protocol().leader_indices(le.config().states())[0]
    );
}
