//! Token trace: a small, fully deterministic demonstration of the segment-ID
//! machinery of Section 3.2 — the black token of the pair `(S_0, S_1)` is
//! driven along its Figure 2 zig-zag with the `seq_R`/`seq_L` schedules of
//! Lemma 3.5 and rebuilds `ι(S_1) = ι(S_0) + 1`.
//!
//! ```text
//! cargo run --release --example token_trace
//! ```

use ring_ssle::population::InteractionSeq;
use ring_ssle::prelude::*;
use ring_ssle::ssle_core::segments::{segment_id, segments};
use ring_ssle::ssle_core::tokens::trajectory_positions;

fn main() {
    let psi = 4u32;
    let params = Params::new(psi, 8 * psi);
    let n = 16;

    println!(
        "ψ = {psi}: a token's full trajectory has {} moves (2ψ² − 2ψ + 1)",
        params.trajectory_length()
    );
    println!(
        "analytic zig-zag over the segment pair: {:?}\n",
        trajectory_positions(&params)
    );

    // A perfect configuration with the leader at u0, but scramble the second
    // segment's bits so the construction machinery has work to do.
    let mut config = perfect_configuration(n, &params, 0, 5);
    config.map_in_place(|i, s| {
        s.token_b = None;
        s.token_w = None;
        if (psi as usize..2 * psi as usize).contains(&i) {
            s.b = i % 3 == 0;
        }
    });
    let segs = segments(&config, &params);
    println!(
        "before: ι(S_0) = {}, ι(S_1) = {} (target: {})",
        segment_id(&config, &segs[0]),
        segment_id(&config, &segs[1]),
        (segment_id(&config, &segs[0]) + 1) % params.id_modulus()
    );

    let mut sim = Simulation::new(
        Ppl::new(params),
        DirectedRing::new(n).expect("n >= 2"),
        config,
        0,
    );

    // The deterministic schedule of Lemma 3.5, with a printout of the token's
    // position and payload after each full sweep.
    let right = InteractionSeq::seq_r(0, 2 * psi as usize - 1, n);
    let left = InteractionSeq::seq_l(2 * psi as usize - 1, 2 * psi as usize - 1, n);
    for round in 0..2 * psi {
        sim.apply_sequence(&right);
        sim.apply_sequence(&left);
        let tokens: Vec<String> = sim
            .config()
            .iter()
            .filter_map(|(id, s)| {
                s.token_b
                    .filter(|_| id.index() < 2 * psi as usize)
                    .map(|t| {
                        format!(
                            "{}: offset {:+}, value {}, carry {}",
                            id, t.target_offset, t.value as u8, t.carry as u8
                        )
                    })
            })
            .collect();
        println!("after sweep {round:2}: black tokens in (S_0, S_1): {tokens:?}");
    }

    let final_config = sim.config();
    let segs = segments(final_config, &params);
    let id0 = segment_id(final_config, &segs[0]);
    let id1 = segment_id(final_config, &segs[1]);
    println!("\nafter: ι(S_0) = {id0}, ι(S_1) = {id1}");
    assert_eq!(id1, (id0 + 1) % params.id_modulus());
    println!("ι(S_1) = ι(S_0) + 1 (mod 2^ψ) — the tokens rebuilt the segment-ID chain.");
}
