//! Quickstart: elect a leader on a directed ring with `P_PL`, starting from
//! an arbitrary (uniformly random) configuration, and watch it reach the safe
//! set `S_PL` — declared as a `Scenario` in a handful of lines.
//!
//! ```text
//! cargo run --release --example quickstart [n] [seed]
//! ```

use ring_ssle::prelude::*;
use ring_ssle::ssle_core::init;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let params = Params::for_ring(n);
    println!(
        "ring of n = {n} agents, knowledge psi = {}, kappa_max = {}, {} states per agent",
        params.psi(),
        params.kappa_max(),
        params.states_per_agent()
    );

    // The whole experiment, declaratively: P_PL on a directed ring, from an
    // arbitrary (uniformly random) initial configuration — the
    // self-stabilization setting — until the configuration is in S_PL
    // (Definition 4.6: exactly one leader, a perfect segment-ID embedding,
    // and only valid, correct tokens).  S_PL is closed, so from that point
    // the leader can never change.
    let scenario = ScenarioBuilder::new("quickstart", |pt: &SweepPoint| {
        Ppl::new(Params::for_ring(pt.n))
    })
    .init(|p: &Ppl, pt| init::generate(InitialCondition::UniformRandom, pt.n, p.params(), pt.seed))
    .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
    .check_every(|pt| ((pt.n * pt.n / 4) as u64).max(1))
    .step_budget(|_pt| 1_000_000_000)
    .build()
    .expect("complete scenario");

    let mut run = scenario.run_full(&SweepPoint::new(n, seed));
    match run.report.converged_at {
        Some(step) => {
            println!(
                "reached a safe configuration after {step} steps ({:.1} parallel time, {:.2} × n² log₂ n)",
                step as f64 / n as f64,
                step as f64 / ((n * n) as f64 * (n as f64).log2()),
            );
        }
        None => {
            println!("did not converge within the step budget — try a larger budget");
            return;
        }
    }

    let leader = run.sim.protocol().leader_indices(run.sim.config().states());
    println!("elected leader: agent u{}", leader[0]);

    // Closure: keep running the returned simulation and verify nothing
    // changes.
    run.sim.run_steps(500_000);
    let later = run.sim.protocol().leader_indices(run.sim.config().states());
    assert_eq!(
        leader, later,
        "the leader must never change after convergence"
    );
    println!(
        "after 500000 more steps the leader is still u{} — closure holds",
        later[0]
    );
}
