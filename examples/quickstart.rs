//! Quickstart: elect a leader on a directed ring with `P_PL`, starting from
//! an arbitrary (uniformly random) configuration, and watch it reach the safe
//! set `S_PL`.
//!
//! ```text
//! cargo run --release --example quickstart [n] [seed]
//! ```

use ring_ssle::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let params = Params::for_ring(n);
    println!(
        "ring of n = {n} agents, knowledge psi = {}, kappa_max = {}, {} states per agent",
        params.psi(),
        params.kappa_max(),
        params.states_per_agent()
    );

    // An arbitrary initial configuration: every variable of every agent is
    // sampled uniformly from its domain — the self-stabilization setting.
    let config =
        ring_ssle::ssle_core::init::generate(InitialCondition::UniformRandom, n, &params, seed);
    let initial_leaders = config.count_where(|s| s.leader);
    println!("initial configuration: {initial_leaders} agents already call themselves leader");

    let mut sim = Simulation::new(
        Ppl::new(params),
        DirectedRing::new(n).expect("n >= 2"),
        config,
        seed,
    );

    // Run until the configuration is in S_PL (Definition 4.6): exactly one
    // leader, a perfect segment-ID embedding, and only valid, correct tokens.
    // S_PL is closed, so from that point the leader can never change.
    let report = sim.run_until(
        |_p, c| in_s_pl(c, &params),
        (n * n / 4) as u64,
        1_000_000_000,
    );

    match report.converged_at {
        Some(step) => {
            println!(
                "reached a safe configuration after {step} steps ({:.1} parallel time, {:.2} × n² log₂ n)",
                step as f64 / n as f64,
                step as f64 / ((n * n) as f64 * (n as f64).log2()),
            );
        }
        None => {
            println!("did not converge within the step budget — try a larger budget");
            return;
        }
    }

    let leader = sim.protocol().leader_indices(sim.config().states());
    println!("elected leader: agent u{}", leader[0]);

    // Closure: keep running and verify nothing changes.
    sim.run_steps(500_000);
    let later = sim.protocol().leader_indices(sim.config().states());
    assert_eq!(
        leader, later,
        "the leader must never change after convergence"
    );
    println!(
        "after 500000 more steps the leader is still u{} — closure holds",
        later[0]
    );
}
