//! Protocol comparison: run `P_PL` and the Table 1 baselines side by side on
//! the same ring sizes and print a miniature version of Table 1 (convergence
//! steps and state counts).
//!
//! ```text
//! cargo run --release --example protocol_comparison [max_n]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ring_ssle::prelude::*;
use ring_ssle::ssle_baselines::angluin_mod_k::{has_unique_defect, ModKState};
use ring_ssle::ssle_baselines::fischer_jiang::{has_stable_unique_leader, FjState};
use ring_ssle::ssle_baselines::yokota_linear::{is_safe as yokota_safe, YokotaState};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let sizes: Vec<usize> = [16usize, 32, 64, 128]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let trials = 5u64;

    let mut table = Table::new(
        "Mean convergence steps from uniformly random configurations",
        &[
            "n",
            "P_PL (this work)",
            "[28] O(n)-state",
            "[15] oracle",
            "[5] mod-k",
        ],
    );

    for &n in &sizes {
        let mut row = vec![n.to_string()];

        // P_PL.
        let params = Params::for_ring(n);
        let mut steps = Vec::new();
        for seed in 0..trials {
            let config = ring_ssle::ssle_core::init::generate(
                InitialCondition::UniformRandom,
                n,
                &params,
                seed,
            );
            let mut sim = Simulation::new(
                Ppl::new(params),
                DirectedRing::new(n).unwrap(),
                config,
                seed,
            );
            let r = sim.run_until(
                |_p, c| in_s_pl(c, &params),
                (n * n / 4) as u64,
                1_000_000_000,
            );
            steps.push(r.convergence_step() as f64);
        }
        row.push(format!("{:.2e}", Summary::of(&steps).unwrap().mean));

        // [28] Yokota.
        let protocol = YokotaLinear::for_ring(n);
        let cap = protocol.cap();
        let mut steps = Vec::new();
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let config = Configuration::from_fn(n, |_| YokotaState::sample_uniform(&mut rng, cap));
            let mut sim = Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, seed);
            let r = sim.run_until(
                |_p, c: &Configuration<YokotaState>| yokota_safe(c, cap),
                (n * n / 4) as u64,
                1_000_000_000,
            );
            steps.push(r.convergence_step() as f64);
        }
        row.push(format!("{:.2e}", Summary::of(&steps).unwrap().mean));

        // [15] Fischer-Jiang with the ideal oracle.
        let protocol = FischerJiang::new();
        let mut steps = Vec::new();
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let config = Configuration::from_fn(n, |_| FjState::sample_uniform(&mut rng));
            let mut sim = Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, seed);
            let r = sim.run_until(
                |_p, c: &Configuration<FjState>| has_stable_unique_leader(c),
                (n * n / 4) as u64,
                1_000_000_000,
            );
            steps.push(r.convergence_step() as f64);
        }
        row.push(format!("{:.2e}", Summary::of(&steps).unwrap().mean));

        // [5] Angluin et al. with the smallest k not dividing n.
        let k = (2u8..=64).find(|&k| n % k as usize != 0).unwrap();
        let protocol = AngluinModK::new(k);
        let mut steps = Vec::new();
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let config = Configuration::from_fn(n, |_| ModKState::sample_uniform(&mut rng, k));
            let mut sim = Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, seed);
            let r = sim.run_until(
                |_p, c: &Configuration<ModKState>| has_unique_defect(c, k),
                (n * n / 4) as u64,
                2_000_000_000,
            );
            steps.push(r.convergence_step() as f64);
        }
        row.push(format!("{:.2e}", Summary::of(&steps).unwrap().mean));

        table.push_row(row);
    }

    println!("{}", table.to_text());
    println!("State counts at n = 64:");
    println!(
        "  P_PL            : {}",
        Params::for_ring(64).states_per_agent()
    );
    println!(
        "  [28] O(n)-state : {}",
        YokotaLinear::for_ring(64).states_per_agent()
    );
    println!(
        "  [15] oracle     : {}",
        FischerJiang::new().states_per_agent()
    );
    println!(
        "  [5]  mod-k      : {}",
        AngluinModK::new(3).states_per_agent()
    );
    println!(
        "\nFor the full Table 1 reproduction run: cargo run --release -p ssle-bench --bin table1"
    );
}
