//! Protocol comparison: run `P_PL` and the Table 1 baselines side by side on
//! the same ring sizes and print a miniature version of Table 1 (convergence
//! steps and state counts).
//!
//! Before the Scenario layer this example hand-rolled one simulation loop per
//! protocol; now every protocol is a `Scenario` and the comparison is a
//! single loop over a heterogeneous list — the point of the protocol-erased
//! run path.
//!
//! The scenarios are built inline on purpose, as an end-to-end tour of the
//! `ScenarioBuilder` API over four different protocols; harness code should
//! use the canonical builders in `ssle_bench` (`ppl_builder`,
//! `yokota_builder`, …, or `ProtocolKind::scenario()`) instead of copying
//! these definitions.
//!
//! ```text
//! cargo run --release --example protocol_comparison [max_n]
//! ```

use ring_ssle::prelude::*;
use ring_ssle::ssle_baselines::angluin_mod_k::{has_unique_defect, ModKState};
use ring_ssle::ssle_baselines::fischer_jiang::{has_stable_unique_leader, FjState};
use ring_ssle::ssle_baselines::yokota_linear::{is_safe as yokota_safe, YokotaState};
use ring_ssle::ssle_core::init;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let sizes: Vec<usize> = [16usize, 32, 64, 128]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let trials = 5;
    let budget = |_pt: &SweepPoint| 2_000_000_000u64;
    let check = |pt: &SweepPoint| ((pt.n * pt.n / 4) as u64).max(1);

    // One heterogeneous list of scenarios, one run path.
    let scenarios: Vec<Scenario> = vec![
        ScenarioBuilder::new("P_PL (this work)", |pt: &SweepPoint| {
            Ppl::new(Params::for_ring(pt.n))
        })
        .init(|p: &Ppl, pt| {
            init::generate(InitialCondition::UniformRandom, pt.n, p.params(), pt.seed)
        })
        .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
        .check_every(check)
        .step_budget(budget)
        .build()
        .expect("complete scenario"),
        ScenarioBuilder::new("[28] O(n)-state", |pt: &SweepPoint| {
            YokotaLinear::for_ring(pt.n)
        })
        .init(|p: &YokotaLinear, pt| {
            let cap = p.cap();
            let mut rng = ChaCha8Rng::seed_from_u64(pt.seed);
            Configuration::from_fn(pt.n, |_| YokotaState::sample_uniform(&mut rng, cap))
        })
        .stop_when("yokota-safe", |p: &YokotaLinear, c| yokota_safe(c, p.cap()))
        .check_every(check)
        .step_budget(budget)
        .build()
        .expect("complete scenario"),
        ScenarioBuilder::new("[15] oracle", |_pt: &SweepPoint| FischerJiang::new())
            .init(|_p: &FischerJiang, pt| {
                let mut rng = ChaCha8Rng::seed_from_u64(pt.seed);
                Configuration::from_fn(pt.n, |_| FjState::sample_uniform(&mut rng))
            })
            .stop_when("fj-stable-unique-leader", |_p: &FischerJiang, c| {
                has_stable_unique_leader(c)
            })
            .check_every(check)
            .step_budget(budget)
            .build()
            .expect("complete scenario"),
        ScenarioBuilder::new("[5] mod-k", |pt: &SweepPoint| {
            let k = (2u8..=64)
                .find(|&k| !pt.n.is_multiple_of(k as usize))
                .unwrap();
            AngluinModK::new(k)
        })
        .init(|p: &AngluinModK, pt| {
            let k = p.k();
            let mut rng = ChaCha8Rng::seed_from_u64(pt.seed);
            Configuration::from_fn(pt.n, |_| ModKState::sample_uniform(&mut rng, k))
        })
        .stop_when("mod-k-unique-defect", |p: &AngluinModK, c| {
            has_unique_defect(c, p.k())
        })
        .check_every(check)
        .step_budget(budget)
        .build()
        .expect("complete scenario"),
    ];

    let mut table = Table::new(
        "Mean convergence steps from uniformly random configurations",
        &[
            "n",
            "P_PL (this work)",
            "[28] O(n)-state",
            "[15] oracle",
            "[5] mod-k",
        ],
    );

    let runner = BatchRunner::new();
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for scenario in &scenarios {
            let grid = SweepGrid::new().sizes(&[n]).trials(trials, 0);
            let summaries = scenario.sweep_summaries(&grid, &runner);
            let steps = summaries[0].convergence_steps();
            row.push(format!("{:.2e}", Summary::of(&steps).unwrap().mean));
        }
        table.push_row(row);
    }

    println!("{}", table.to_text());
    println!("State counts at n = 64:");
    println!(
        "  P_PL            : {}",
        Params::for_ring(64).states_per_agent()
    );
    println!(
        "  [28] O(n)-state : {}",
        YokotaLinear::for_ring(64).states_per_agent()
    );
    println!(
        "  [15] oracle     : {}",
        FischerJiang::new().states_per_agent()
    );
    println!(
        "  [5]  mod-k      : {}",
        AngluinModK::new(3).states_per_agent()
    );
    println!(
        "\nFor the full Table 1 reproduction run: cargo run --release -p ssle-bench --bin table1"
    );
}
