//! Worst-case stabilization search, end to end, on one scenario.
//!
//! The walkthrough: take baseline \[28\] (Yokota et al. 2021) on a directed
//! ring of n = 32, measure its mean stabilization time under the uniformly
//! random scheduler, then let the adversary engine attack the same scenario
//! — annealing over seeds and scheduler-zoo parameters (weighted arc
//! distributions, epoch partitions, a greedy adversary driven by a
//! protocol-supplied potential) — and finish by replaying the emitted
//! worst-case certificate to show it reproduces exactly.
//!
//! ```text
//! cargo run --release --example adversarial_schedule
//! ```

use std::sync::Arc;

use ring_ssle::prelude::*;
use ring_ssle::ssle_baselines::yokota_linear::{is_safe, YokotaState};
use ssle_adversary::{
    worst_case_search, ArcScorer, Candidate, ChurnDomain, Evaluation, FaultDomain, GraphDomain,
    SchedulerSpec, SearchConfig, SearchSpace, SpecDomain,
};

const N: usize = 32;
const BUDGET: u64 = 400 * (N as u64) * (N as u64);

/// The scenario under attack: uniformly random initial configurations of
/// baseline \[28\], converging to its structural safe set.
fn yokota_scenario() -> Scenario {
    use rand::SeedableRng;
    ScenarioBuilder::new("yokota/worst-case", |pt: &SweepPoint| {
        YokotaLinear::for_ring(pt.n)
    })
    .init(|p: &YokotaLinear, pt| {
        let cap = p.cap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(pt.seed);
        Configuration::from_fn(pt.n, |_| YokotaState::sample_uniform(&mut rng, cap))
    })
    .stop_when("yokota-safe", |p: &YokotaLinear, c| is_safe(c, p.cap()))
    .check_every(|pt| ((pt.n * pt.n / 4) as u64).max(64))
    .step_budget(|_pt| BUDGET)
    .build()
    .expect("complete scenario")
}

/// The protocol-supplied potential for the greedy adversary: apply the
/// transition to clones of the two endpoint states and score the
/// leader-count delta — the adversary prefers interactions that preserve
/// surplus leaders, starving elimination progress.
///
/// (Written out in full here to show how a potential is built; it mirrors
/// `ssle_bench::stabilization::leader_delta_scorer`, the canonical scorer
/// the tracked report grid uses.)
fn hostile_potential() -> ArcScorer {
    let protocol = DynProtocol::erase(YokotaLinear::for_ring(N));
    Arc::new(move |states, arc| {
        let mut a = states[arc.initiator().index()].clone();
        let mut b = states[arc.responder().index()].clone();
        let before = protocol.is_leader(&a) as i32 + protocol.is_leader(&b) as i32;
        protocol.interact(&mut a, &mut b);
        let after = protocol.is_leader(&a) as i32 + protocol.is_leader(&b) as i32;
        (after - before) as f64
    })
}

/// Deterministic candidate evaluation: stabilization steps, censored at the
/// budget when the run does not converge.  Same candidate, same result —
/// that is what makes the certificate below reproducible.
fn evaluate(candidate: &Candidate) -> Evaluation {
    let scorer = matches!(candidate.spec, SchedulerSpec::Greedy { .. }).then(hostile_potential);
    let scenario = yokota_scenario().with_scheduler(candidate.spec.family(scorer));
    match scenario.try_run(&SweepPoint::new(N, candidate.seed)) {
        Ok(report) => Evaluation {
            steps: report.converged_at.unwrap_or(BUDGET),
            converged: report.converged(),
        },
        Err(_) => Evaluation {
            steps: BUDGET,
            converged: false,
        },
    }
}

fn main() {
    // 1. The benign picture: a pool of uniformly random scheduler trials.
    let pool: Vec<(Candidate, Evaluation)> = (0..4u64)
        .map(|seed| {
            let candidate = Candidate::baseline(seed);
            let eval = evaluate(&candidate);
            (candidate, eval)
        })
        .collect();
    let mean = pool.iter().map(|(_, e)| e.steps as f64).sum::<f64>() / pool.len() as f64;
    println!("random-scheduler pool (n = {N}, budget = {BUDGET}):");
    for (c, e) in &pool {
        println!(
            "  seed {:2}: {:>8} steps (converged: {})",
            c.seed, e.steps, e.converged
        );
    }
    println!("  mean: {mean:.0} steps\n");

    // 2. The attack: annealing over seeds and scheduler-zoo parameters,
    //    seeded with the pool so worst-found >= max(pool) by construction.
    let space = SearchSpace {
        variants: 1, // one init family: uniform-random YokotaState
        specs: SpecDomain::all(),
        // This walkthrough keeps the search two-axis (seed x scheduler);
        // the tracked report grid also mutates crash schedules.
        faults: FaultDomain::disabled(),
        churn: ChurnDomain::disabled(),
        graph: GraphDomain::disabled(),
    };
    let config = SearchConfig {
        iterations: 12,
        seed: 0xBAD5EED,
        cooling: 0.85,
    };
    let outcome = worst_case_search(&space, &pool, evaluate, &config);
    let worst = &outcome.best;
    println!(
        "worst case after {} search evaluations:\n  scheduler: {}\n  seed:      {}\n  steps:     {} ({}x the random mean{})",
        outcome.evaluations,
        worst.candidate.spec.key(),
        worst.candidate.seed,
        worst.steps,
        (worst.steps as f64 / mean.max(1.0)).round(),
        if worst.converged { "" } else { "; censored at the budget" },
    );

    // 3. The certificate reproduces: replaying (seed + scheduler spec)
    //    yields the identical step count.
    let replay = evaluate(&worst.candidate);
    assert_eq!(replay.steps, worst.steps, "certificates must reproduce");
    assert_eq!(replay.converged, worst.converged);
    println!(
        "\nreplayed the certificate: {} steps — identical, QED.",
        replay.steps
    );
}
