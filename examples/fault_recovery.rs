//! Fault recovery: take a converged (safe) population, corrupt part of it
//! with a declarative `FaultPlan`, and watch `P_PL` re-stabilize — the
//! practical payoff of self-stabilization.
//!
//! ```text
//! cargo run --release --example fault_recovery [n] [corrupted_agents]
//! ```

use ring_ssle::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let faults: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(n / 3);

    let params = Params::for_ring(n);
    println!("safe configuration with leader u0; corrupting {faults} of {n} agents at step 0 ...");

    // The whole experiment as one scenario: start from a safe configuration
    // (leader at u0), corrupt a contiguous block of agents with arbitrary
    // states at step 0 (a burst fault hitting a stretch of the ring), and
    // measure the steps until the population is back in S_PL.
    let scenario = ScenarioBuilder::new("fault-recovery", |pt: &SweepPoint| {
        Ppl::new(Params::for_ring(pt.n))
    })
    .init(|p: &Ppl, pt| perfect_configuration(pt.n, p.params(), 0, 1))
    .stop_when("s-pl", |p: &Ppl, c| in_s_pl(c, p.params()))
    .check_every(|pt| ((pt.n * pt.n / 4) as u64).max(1))
    .step_budget(|_pt| 500_000_000)
    .faults(
        move |pt| {
            FaultPlan::new().at(
                0,
                FaultKind::CorruptBlock {
                    start: pt.n / 2,
                    count: faults,
                },
            )
        },
        |p: &Ppl, rng, _i| PplState::sample_uniform(rng, p.params()),
    )
    .fault_seed(|_pt| 7)
    .build()
    .expect("complete scenario");

    let run = scenario.run_full(&SweepPoint::new(n, 1));
    let step = run
        .report
        .converged_at
        .expect("self-stabilization guarantees recovery");
    // The uncorrupted configuration is already in S_PL, so a convergence step
    // greater than zero proves the step-0 fault was visible to the very first
    // safety check — the population really had to recover.
    assert!(step > 0, "the burst fault must knock the ring out of S_PL");
    println!(
        "re-converged to a safe configuration after {step} steps ({:.2} × n² log₂ n)",
        step as f64 / ((n * n) as f64 * (n as f64).log2())
    );
    assert!(in_s_pl(
        &ring_ssle::population::downcast_config::<PplState>(run.sim.config()).unwrap(),
        &params
    ));
    assert_eq!(run.sim.count_leaders(), 1);
    let leader = run.sim.protocol().leader_indices(run.sim.config().states());
    println!("leader after recovery: u{}", leader[0]);
    println!(
        "note: the post-recovery leader need not be the original one — self-stabilization\n\
         only promises that *some* unique leader is restored and then kept forever."
    );
}
