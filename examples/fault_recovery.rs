//! Fault recovery: take a converged (safe) population, corrupt part of it at
//! run time, and watch `P_PL` re-stabilize — the practical payoff of
//! self-stabilization.
//!
//! ```text
//! cargo run --release --example fault_recovery [n] [corrupted_agents]
//! ```

use ring_ssle::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let faults: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(n / 3);

    let params = Params::for_ring(n);
    // Start directly from a safe configuration with the leader at u0.
    let config = perfect_configuration(n, &params, 0, 1);
    let mut sim = Simulation::new(
        Ppl::new(params),
        DirectedRing::new(n).expect("n >= 2"),
        config,
        1,
    );
    assert!(in_s_pl(sim.config(), &params));
    println!("safe configuration with leader u0; corrupting {faults} of {n} agents ...");

    // Corrupt a contiguous block of agents with arbitrary states (a burst
    // fault hitting a stretch of the ring).
    let mut injector = FaultInjector::new(7);
    let corrupted = injector.inject(
        sim.config_mut(),
        FaultKind::CorruptBlock {
            start: n / 2,
            count: faults,
        },
        |rng, _| PplState::sample_uniform(rng, &params),
    );
    println!("corrupted agents: {corrupted:?}");
    println!(
        "after the fault: {} leaders, safe = {}",
        sim.count_leaders(),
        in_s_pl(sim.config(), &params)
    );

    let report = sim.run_until(|_p, c| in_s_pl(c, &params), (n * n / 4) as u64, 500_000_000);
    let step = report
        .converged_at
        .expect("self-stabilization guarantees recovery");
    println!(
        "re-converged to a safe configuration after {step} more steps ({:.2} × n² log₂ n)",
        step as f64 / ((n * n) as f64 * (n as f64).log2())
    );
    let leader = sim.protocol().leader_indices(sim.config().states());
    println!("leader after recovery: u{}", leader[0]);
    println!(
        "note: the post-recovery leader need not be the original one — self-stabilization\n\
         only promises that *some* unique leader is restored and then kept forever."
    );
}
