//! Structured events and the per-run context scope.
//!
//! An [`Event`] is one NDJSON line under construction: an event kind, a
//! list of deterministic fields, and an optional wall-clock section.  The
//! sink assigns the stream-wide `seq` number and stamps the thread's
//! active [`RunScope`] (scenario name, population size, seed) onto every
//! event, so traces from multi-threaded sweeps remain attributable even
//! though runs interleave in the file.
//!
//! Encoding rules (schema `ssle-telemetry/v1`):
//!
//! * u64 quantities that can be large (steps, seeds, counters) travel as
//!   **exact decimal strings** ([`Event::count`]) — the house style, since
//!   a JSON number would round above 2⁵³;
//! * structurally small integers (population size, island/worker ids) are
//!   plain numbers;
//! * anything wall-clock lives under the event's `"wall"` object
//!   ([`Event::wall_micros`]) and nowhere else, so a diff that ignores
//!   `"wall"` keys checks determinism.

use std::cell::RefCell;

use analysis::json::JsonValue;

/// One telemetry event under construction (builder-style).
#[derive(Debug)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, JsonValue)>,
    wall: Vec<(&'static str, JsonValue)>,
}

impl Event {
    /// Starts an event of the given kind (a snake_case name from the
    /// taxonomy in [`crate::validate`]).
    pub fn new(kind: &'static str) -> Self {
        Event {
            kind,
            fields: Vec::new(),
            wall: Vec::new(),
        }
    }

    /// The event kind.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Adds a deterministic field.
    pub fn field(mut self, key: &'static str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Adds a u64 quantity as an exact decimal string (steps, seeds,
    /// counts — anything that may exceed 2⁵³).
    pub fn count(self, key: &'static str, value: u64) -> Self {
        self.field(key, value.to_string())
    }

    /// Adds a wall-clock duration (microseconds, exact decimal string) to
    /// the event's nondeterministic `"wall"` section.
    pub fn wall_micros(mut self, key: &'static str, micros: u64) -> Self {
        self.wall.push((key, JsonValue::String(micros.to_string())));
        self
    }

    /// Serializes the event as one NDJSON line with an explicit sequence
    /// number.  Normal streams go through the global sink ([`crate::emit`]),
    /// which assigns `seq` itself; this entry point exists for sidecar
    /// streams that own their own sequence counter (the fabric run
    /// journal).
    pub fn to_line(self, seq: u64) -> String {
        self.into_json(seq).to_json()
    }

    /// Finalizes into the JSON object of one NDJSON line: kind, sink-
    /// assigned `seq`, the thread's run scope (if any), the deterministic
    /// fields, then the `"wall"` section last (only when non-empty).
    pub(crate) fn into_json(self, seq: u64) -> JsonValue {
        let mut out = JsonValue::object()
            .with("event", self.kind)
            .with("seq", seq.to_string());
        out = with_scope(out);
        for (key, value) in self.fields {
            out = out.with(key, value);
        }
        if !self.wall.is_empty() {
            let mut wall = JsonValue::object();
            for (key, value) in self.wall {
                wall = wall.with(key, value);
            }
            out = out.with("wall", wall);
        }
        out
    }
}

/// The per-thread run-context stack.
#[derive(Debug, Clone)]
struct ScopeData {
    scenario: String,
    n: u64,
    seed: u64,
}

thread_local! {
    static SCOPE: RefCell<Vec<ScopeData>> = const { RefCell::new(Vec::new()) };
}

/// Stamps the innermost active scope onto an event object.
fn with_scope(out: JsonValue) -> JsonValue {
    SCOPE.with(|stack| match stack.borrow().last() {
        Some(scope) => out
            .with("scenario", scope.scenario.clone())
            .with("n", scope.n as usize)
            .with("seed", scope.seed.to_string()),
        None => out,
    })
}

/// Guard of one active run scope; pops the context on drop.
#[derive(Debug)]
pub struct RunScope {
    pushed: bool,
}

/// Enters a run scope: until the returned guard drops, every event this
/// thread emits is stamped with `scenario`/`n`/`seed`.  When telemetry is
/// disabled this is a no-op (one relaxed load, no allocation).
///
/// Scopes nest; the innermost wins.  Events within one scope are ordered
/// by the deterministic step clock; *across* threads the stream order is
/// scheduling-dependent, which is why the scope fields (not file order)
/// are the attribution key.
pub fn run_scope(scenario: &str, n: u64, seed: u64) -> RunScope {
    if !crate::enabled() {
        return RunScope { pushed: false };
    }
    SCOPE.with(|stack| {
        stack.borrow_mut().push(ScopeData {
            scenario: scenario.to_string(),
            n,
            seed,
        });
    });
    RunScope { pushed: true }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        if self.pushed {
            SCOPE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_seq_fields_and_wall_section() {
        let json = Event::new("fault_fired")
            .count("step", u64::MAX)
            .field("kind", "corrupt_all")
            .wall_micros("elapsed", 17)
            .into_json(3);
        assert_eq!(
            json.get("event").and_then(JsonValue::as_str),
            Some("fault_fired")
        );
        assert_eq!(json.get("seq").and_then(JsonValue::as_str), Some("3"));
        assert_eq!(
            json.get("step").and_then(JsonValue::as_str),
            Some(&u64::MAX.to_string()[..]),
            "large u64s travel as exact decimal strings"
        );
        assert_eq!(
            json.get("wall")
                .and_then(|w| w.get("elapsed"))
                .and_then(JsonValue::as_str),
            Some("17")
        );
        let no_wall = Event::new("converged").count("step", 5).into_json(0);
        assert!(
            no_wall.get("wall").is_none(),
            "empty wall sections are omitted"
        );
    }

    #[test]
    fn run_scope_stamps_and_nests() {
        let _lock = crate::test_support::serialize();
        crate::set_enabled(true);
        let outer = run_scope("outer", 8, 42);
        {
            let _inner = run_scope("inner", 16, 7);
            let json = Event::new("converged").into_json(0);
            assert_eq!(
                json.get("scenario").and_then(JsonValue::as_str),
                Some("inner")
            );
            assert_eq!(json.get("n").and_then(JsonValue::as_f64), Some(16.0));
            assert_eq!(json.get("seed").and_then(JsonValue::as_str), Some("7"));
        }
        let json = Event::new("converged").into_json(1);
        assert_eq!(
            json.get("scenario").and_then(JsonValue::as_str),
            Some("outer")
        );
        drop(outer);
        let json = Event::new("converged").into_json(2);
        assert!(json.get("scenario").is_none());
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _lock = crate::test_support::serialize();
        crate::set_enabled(false);
        let _scope = run_scope("ghost", 4, 1);
        let json = Event::new("converged").into_json(0);
        assert!(json.get("scenario").is_none());
    }
}
