//! Atomic metric handles and the global registry.
//!
//! Handles are `const`-constructible statics: a layer declares
//! `static STEPS: Counter = Counter::new("steps");` once and mutates it
//! from any thread.  Every mutation hides behind the single relaxed
//! [`crate::enabled`] branch, so a disabled build pays one predicted
//! branch per *burst* (instrumentation sites record at burst boundaries,
//! never per step) and zero atomics.
//!
//! The well-known handles of the workspace live in [`well_known`] and are
//! what [`registry`] snapshots into the `metrics` event at stream finish.
//! Counter and gauge values are exact u64s and are emitted as decimal
//! strings (the house style — an `f64` cast would round above 2⁵³);
//! histograms are log₂-bucketed, so a snapshot is a handful of
//! `[2^(k-1), 2^k)` rows rather than an unbounded reservoir.

use std::sync::atomic::{AtomicU64, Ordering};

use analysis::json::JsonValue;

use crate::enabled;

/// Number of histogram buckets: one for zero plus one per power of two of
/// the u64 range.
const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter handle (usable as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `k` when telemetry is enabled; a no-op otherwise.
    #[inline(always)]
    pub fn add(&self, k: u64) {
        if enabled() {
            self.value.fetch_add(k, Ordering::Relaxed);
        }
    }

    /// Adds one when telemetry is enabled; a no-op otherwise.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (between benchmark phases and tests).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge (e.g. the current worker-pool size).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A new gauge handle (usable as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stores `v` when telemetry is enabled; a no-op otherwise.
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (between benchmark phases and tests).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log₂-bucketed value/latency histogram.
///
/// Bucket 0 counts zeros; bucket `k ≥ 1` counts values in
/// `[2^(k-1), 2^k)`.  Alongside the buckets the histogram tracks exact
/// count/sum/min/max, so a snapshot supports both "how many were slow"
/// and "what was the mean" questions without storing samples.
///
/// Histograms recording **wall-clock** quantities (latencies) are
/// constructed with [`Histogram::new_wall`]; their snapshots land in the
/// nondeterministic `"wall"` section of the `metrics` event, keeping the
/// deterministic section diffable across runs.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    wall: bool,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A new histogram of deterministic values (usable as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self::with_wall(name, false)
    }

    /// A new histogram of wall-clock values: its snapshot is quarantined
    /// in the `"wall"` section of the `metrics` event.
    pub const fn new_wall(name: &'static str) -> Self {
        Self::with_wall(name, true)
    }

    const fn with_wall(name: &'static str, wall: bool) -> Self {
        Histogram {
            name,
            wall,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `true` if this histogram records wall-clock quantities.
    pub fn is_wall(&self) -> bool {
        self.wall
    }

    /// The bucket index of a value: 0 for zero, `floor(log2(v)) + 1`
    /// otherwise.
    fn bucket(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one value when telemetry is enabled; a no-op otherwise.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping beyond u64::MAX, which no
    /// workspace quantity reaches).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Resets every cell (between benchmark phases and tests).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// The snapshot as a JSON object: exact `count`/`sum`/`min`/`max`
    /// decimal strings plus the non-empty buckets as `{lo, hi, count}`
    /// rows (`hi` exclusive; both decimal strings).
    pub fn snapshot(&self) -> JsonValue {
        let count = self.count();
        let mut rows = Vec::new();
        for (k, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let lo: u64 = if k == 0 { 0 } else { 1u64 << (k - 1) };
            let hi: u64 = if k == 0 {
                1
            } else if k == BUCKETS - 1 {
                u64::MAX
            } else {
                1u64 << k
            };
            rows.push(
                JsonValue::object()
                    .with("lo", lo.to_string())
                    .with("hi", hi.to_string())
                    .with("count", c.to_string()),
            );
        }
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        JsonValue::object()
            .with("count", count.to_string())
            .with("sum", self.sum().to_string())
            .with("min", min.to_string())
            .with("max", self.max.load(Ordering::Relaxed).to_string())
            .with("buckets", JsonValue::Array(rows))
    }
}

/// The well-known metric handles of the workspace, one static per
/// instrumented quantity.  Layers reference these directly; the
/// [`registry`] snapshot enumerates them.
pub mod well_known {
    use super::{Counter, Histogram};

    /// Steps executed by the uniform-sampler burst loop
    /// (`Simulation::run_steps`), counted once per burst.
    pub static HOT_STEPS: Counter = Counter::new("hot_steps");
    /// Steps executed under explicit per-step scheduler dispatch.
    pub static SCHEDULED_STEPS: Counter = Counter::new("scheduled_steps");
    /// Erased scenario runs started.
    pub static RUNS: Counter = Counter::new("runs");
    /// Runs that satisfied their stop predicate within budget.
    pub static CONVERGED_RUNS: Counter = Counter::new("converged_runs");
    /// Fault events fired (step-scheduled and triggered).
    pub static FAULTS_FIRED: Counter = Counter::new("faults_fired");
    /// Trigger predicates that fired their coupled fault.
    pub static TRIGGERS_FIRED: Counter = Counter::new("triggers_fired");
    /// Byzantine windows opened (first adversarial step executed).
    pub static BYZANTINE_WINDOWS: Counter = Counter::new("byzantine_windows");
    /// Confirmed configuration recurrences.
    pub static RECURRENCES: Counter = Counter::new("recurrences");
    /// Annealing candidate evaluations.
    pub static SEARCH_EVALUATIONS: Counter = Counter::new("search_evaluations");
    /// Annealing moves accepted (Metropolis).
    pub static SEARCH_ACCEPTS: Counter = Counter::new("search_accepts");
    /// Annealing moves rejected.
    pub static SEARCH_REJECTS: Counter = Counter::new("search_rejects");
    /// Fabric units executed by worker subprocesses.
    pub static FABRIC_EXECUTED: Counter = Counter::new("fabric_executed");
    /// Fabric units answered from the content-addressed cache.
    pub static FABRIC_CACHE_HITS: Counter = Counter::new("fabric_cache_hits");
    /// Fabric cache lookups that missed.
    pub static FABRIC_CACHE_MISSES: Counter = Counter::new("fabric_cache_misses");
    /// Fabric workers respawned after a crash or timeout.
    pub static FABRIC_RESPAWNS: Counter = Counter::new("fabric_respawns");
    /// Wall-clock microseconds one fabric unit spent executing on a worker.
    pub static FABRIC_UNIT_MICROS: Histogram = Histogram::new_wall("fabric_unit_micros");
    /// Wall-clock microseconds between a unit entering the queue and its
    /// dispatch to a worker.
    pub static FABRIC_QUEUE_MICROS: Histogram = Histogram::new_wall("fabric_queue_micros");
}

/// The fixed set of well-known handles, snapshot-able as one JSON object.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    counters: &'static [&'static Counter],
    histograms: &'static [&'static Histogram],
}

/// The global registry over [`well_known`].
pub fn registry() -> Registry {
    use well_known as w;
    static COUNTERS: &[&Counter] = &[
        &w::HOT_STEPS,
        &w::SCHEDULED_STEPS,
        &w::RUNS,
        &w::CONVERGED_RUNS,
        &w::FAULTS_FIRED,
        &w::TRIGGERS_FIRED,
        &w::BYZANTINE_WINDOWS,
        &w::RECURRENCES,
        &w::SEARCH_EVALUATIONS,
        &w::SEARCH_ACCEPTS,
        &w::SEARCH_REJECTS,
        &w::FABRIC_EXECUTED,
        &w::FABRIC_CACHE_HITS,
        &w::FABRIC_CACHE_MISSES,
        &w::FABRIC_RESPAWNS,
    ];
    static HISTOGRAMS: &[&Histogram] = &[&w::FABRIC_UNIT_MICROS, &w::FABRIC_QUEUE_MICROS];
    Registry {
        counters: COUNTERS,
        histograms: HISTOGRAMS,
    }
}

impl Registry {
    /// Snapshots every non-zero metric: counters as exact decimal strings
    /// under `"counters"`, deterministic histograms under `"histograms"`,
    /// wall-clock histograms under `"wall"` (the nondeterministic
    /// section).
    pub fn snapshot(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for c in self.counters {
            if c.get() > 0 {
                counters = counters.with(c.name(), c.get().to_string());
            }
        }
        let mut histograms = JsonValue::object();
        let mut wall = JsonValue::object();
        for h in self.histograms {
            if h.count() == 0 {
                continue;
            }
            if h.is_wall() {
                wall = wall.with(h.name(), h.snapshot());
            } else {
                histograms = histograms.with(h.name(), h.snapshot());
            }
        }
        JsonValue::object()
            .with("counters", counters)
            .with("histograms", histograms)
            .with("wall", wall)
    }

    /// Resets every handle (between benchmark phases and tests).
    pub fn reset(&self) {
        for c in self.counters {
            c.reset();
        }
        for h in self.histograms {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn disabled_handles_are_no_ops() {
        let _lock = crate::test_support::serialize();
        static C: Counter = Counter::new("test_disabled_counter");
        static H: Histogram = Histogram::new("test_disabled_histogram");
        static G: Gauge = Gauge::new("test_disabled_gauge");
        set_enabled(false);
        C.add(5);
        C.incr();
        H.record(7);
        G.set(3);
        assert_eq!(C.get(), 0);
        assert_eq!(H.count(), 0);
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn enabled_handles_accumulate_exactly() {
        let _lock = crate::test_support::serialize();
        static C: Counter = Counter::new("test_counter");
        static G: Gauge = Gauge::new("test_gauge");
        set_enabled(true);
        C.add(5);
        C.incr();
        G.set(7);
        G.set(2);
        set_enabled(false);
        assert_eq!(C.get(), 6);
        assert_eq!(G.get(), 2);
        C.reset();
        G.reset();
        assert_eq!(C.get(), 0);
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_is_exact_strings() {
        let _lock = crate::test_support::serialize();
        static H: Histogram = Histogram::new("test_hist");
        H.reset();
        set_enabled(true);
        H.record(0);
        H.record(3);
        H.record(3);
        H.record(u64::MAX);
        set_enabled(false);
        let snap = H.snapshot();
        assert_eq!(snap.get("count").and_then(JsonValue::as_str), Some("4"));
        // The sum wraps at u64 (documented): MAX + 6 ≡ 5.
        assert_eq!(snap.get("sum").and_then(JsonValue::as_str), Some("5"));
        assert_eq!(snap.get("min").and_then(JsonValue::as_str), Some("0"));
        assert_eq!(
            snap.get("max").and_then(JsonValue::as_str),
            Some(&u64::MAX.to_string()[..])
        );
        let buckets = snap.get("buckets").and_then(JsonValue::as_array).unwrap();
        assert_eq!(buckets.len(), 3, "zero, [2,4), top bucket");
        assert_eq!(
            buckets[1].get("lo").and_then(JsonValue::as_str),
            Some("2"),
            "3 lands in [2, 4)"
        );
        assert_eq!(buckets[1].get("hi").and_then(JsonValue::as_str), Some("4"));
        assert_eq!(
            buckets[1].get("count").and_then(JsonValue::as_str),
            Some("2")
        );
        H.reset();
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn registry_snapshot_skips_zero_metrics_and_resets() {
        let _lock = crate::test_support::serialize();
        let reg = registry();
        reg.reset();
        set_enabled(true);
        well_known::HOT_STEPS.add(41);
        well_known::HOT_STEPS.add(1);
        well_known::FABRIC_UNIT_MICROS.record(100);
        set_enabled(false);
        let snap = reg.snapshot();
        let counters = snap.get("counters").unwrap();
        assert_eq!(
            counters.get("hot_steps").and_then(JsonValue::as_str),
            Some("42")
        );
        assert!(counters.get("runs").is_none(), "zero metrics are omitted");
        assert!(
            snap.get("wall")
                .unwrap()
                .get("fabric_unit_micros")
                .is_some(),
            "wall histograms are quarantined under \"wall\""
        );
        reg.reset();
        let empty = reg.snapshot();
        assert!(empty.get("counters").unwrap().get("hot_steps").is_none());
    }
}
