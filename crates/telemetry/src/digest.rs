//! Folding a validated trace into a human-sized digest.
//!
//! [`TraceDigest`] reads a full `ssle-telemetry/v1` stream once and keeps
//! only the aggregate story: how many runs ran and converged, what the
//! adversary did, how the search and the fabric behaved, and the final
//! metrics snapshot.  It powers the `telemetry_summary` binary, which
//! renders the digest as markdown for humans or as a
//! `telemetry-digest/v1` JSON document for scripts.

use analysis::json::JsonValue;

use crate::validate::{validate_stream, StreamStats};

/// Schema identifier of the digest document produced by
/// [`TraceDigest::to_json_value`].
pub const DIGEST_SCHEMA: &str = "telemetry-digest/v1";

/// One island's search trajectory summary (from a `search_island` event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IslandDigest {
    /// Island index.
    pub island: u64,
    /// Accepted proposals.
    pub accepted: u64,
    /// Rejected proposals.
    pub rejected: u64,
    /// Best (longest) stabilization found by this island.
    pub best_steps: u64,
}

/// Aggregate view of one telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDigest {
    /// Raw per-kind statistics from validation.
    pub stats: StreamStats,
    /// The producer recorded in `stream_start`.
    pub producer: String,
    /// Runs started / ended / ended-converged.
    pub runs_started: u64,
    /// Runs that emitted `run_end`.
    pub runs_ended: u64,
    /// Runs whose `run_end` reported convergence.
    pub runs_converged: u64,
    /// Fault events fired by the adversary layer.
    pub faults_fired: u64,
    /// Trigger activations.
    pub triggers_fired: u64,
    /// Byzantine windows opened.
    pub byzantine_windows: u64,
    /// Recurrence (livelock) candidates reported.
    pub recurrences: u64,
    /// Per-island search summaries, in stream order.
    pub islands: Vec<IslandDigest>,
    /// Best stabilization across all `search_summary` events, if any.
    pub search_best_steps: Option<u64>,
    /// The last `fabric_summary` seen: (executed, cached, worker_restarts).
    pub fabric: Option<(u64, u64, u64)>,
    /// Worker-respawn causes with counts, sorted by cause.
    pub respawn_causes: Vec<(String, u64)>,
    /// The final `metrics` registry snapshot, if the stream has one.
    pub metrics: Option<JsonValue>,
}

fn u64_field(value: &JsonValue, key: &str) -> u64 {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
}

fn num_field(value: &JsonValue, key: &str) -> u64 {
    value.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64
}

impl TraceDigest {
    /// Validates `text` as an `ssle-telemetry/v1` stream and folds it.
    ///
    /// # Errors
    ///
    /// Propagates the first validation error; a digest is only ever built
    /// over a schema-valid stream.
    pub fn from_stream(text: &str) -> Result<TraceDigest, String> {
        let stats = validate_stream(text)?;
        let mut digest = TraceDigest {
            stats,
            producer: String::new(),
            runs_started: 0,
            runs_ended: 0,
            runs_converged: 0,
            faults_fired: 0,
            triggers_fired: 0,
            byzantine_windows: 0,
            recurrences: 0,
            islands: Vec::new(),
            search_best_steps: None,
            fabric: None,
            respawn_causes: Vec::new(),
            metrics: None,
        };
        for line in text.lines() {
            // Validation already proved every line parses into an object
            // with a known kind.
            let value = JsonValue::parse(line).expect("validated line parses");
            let kind = value
                .get("event")
                .and_then(JsonValue::as_str)
                .expect("validated line has an event kind");
            match kind {
                "stream_start" => {
                    digest.producer = value
                        .get("producer")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string();
                }
                "run_start" => digest.runs_started += 1,
                "run_end" => {
                    digest.runs_ended += 1;
                    if value.get("converged").and_then(JsonValue::as_bool) == Some(true) {
                        digest.runs_converged += 1;
                    }
                }
                "fault_fired" => digest.faults_fired += 1,
                "trigger_fired" => digest.triggers_fired += 1,
                "byzantine_open" => digest.byzantine_windows += 1,
                "recurrence_candidate" => digest.recurrences += 1,
                "search_island" => digest.islands.push(IslandDigest {
                    island: num_field(&value, "island"),
                    accepted: u64_field(&value, "accepted"),
                    rejected: u64_field(&value, "rejected"),
                    best_steps: u64_field(&value, "best_steps"),
                }),
                "search_summary" => {
                    let best = u64_field(&value, "best_steps");
                    digest.search_best_steps =
                        Some(digest.search_best_steps.map_or(best, |b| b.max(best)));
                }
                "fabric_summary" => {
                    digest.fabric = Some((
                        u64_field(&value, "executed"),
                        u64_field(&value, "cached"),
                        u64_field(&value, "worker_restarts"),
                    ));
                }
                "worker_respawn" => {
                    let cause = value
                        .get("cause")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    match digest.respawn_causes.iter_mut().find(|(c, _)| *c == cause) {
                        Some((_, n)) => *n += 1,
                        None => digest.respawn_causes.push((cause, 1)),
                    }
                }
                "metrics" => digest.metrics = value.get("registry").cloned(),
                _ => {}
            }
        }
        digest.respawn_causes.sort();
        Ok(digest)
    }

    /// Renders the digest as a `telemetry-digest/v1` JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        let mut by_kind = JsonValue::object();
        for (kind, count) in &self.stats.by_kind {
            by_kind = by_kind.with(kind.clone(), count.to_string());
        }
        let mut out = JsonValue::object()
            .with("schema", DIGEST_SCHEMA)
            .with("producer", self.producer.clone())
            .with("events", self.stats.events.to_string())
            .with("complete", self.stats.complete)
            .with("by_kind", by_kind)
            .with(
                "runs",
                JsonValue::object()
                    .with("started", self.runs_started.to_string())
                    .with("ended", self.runs_ended.to_string())
                    .with("converged", self.runs_converged.to_string()),
            )
            .with(
                "adversary",
                JsonValue::object()
                    .with("faults_fired", self.faults_fired.to_string())
                    .with("triggers_fired", self.triggers_fired.to_string())
                    .with("byzantine_windows", self.byzantine_windows.to_string())
                    .with("recurrences", self.recurrences.to_string()),
            );
        if !self.islands.is_empty() || self.search_best_steps.is_some() {
            let islands: Vec<JsonValue> = self
                .islands
                .iter()
                .map(|i| {
                    JsonValue::object()
                        .with("island", i.island as usize)
                        .with("accepted", i.accepted.to_string())
                        .with("rejected", i.rejected.to_string())
                        .with("best_steps", i.best_steps.to_string())
                })
                .collect();
            let mut search = JsonValue::object().with("islands", JsonValue::Array(islands));
            if let Some(best) = self.search_best_steps {
                search = search.with("best_steps", best.to_string());
            }
            out = out.with("search", search);
        }
        if let Some((executed, cached, restarts)) = self.fabric {
            let mut causes = JsonValue::object();
            for (cause, count) in &self.respawn_causes {
                causes = causes.with(cause.clone(), count.to_string());
            }
            out = out.with(
                "fabric",
                JsonValue::object()
                    .with("executed", executed.to_string())
                    .with("cached", cached.to_string())
                    .with("worker_restarts", restarts.to_string())
                    .with("respawn_causes", causes),
            );
        }
        if let Some(metrics) = &self.metrics {
            out = out.with("metrics", metrics.clone());
        }
        out
    }

    /// Renders the digest as markdown (the `telemetry_summary` default).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Telemetry digest\n\n");
        out.push_str(&format!(
            "- producer: `{}`\n- events: {}\n- stream complete: {}\n",
            self.producer, self.stats.events, self.stats.complete
        ));
        out.push_str(&format!(
            "- runs: {} started, {} ended, {} converged\n",
            self.runs_started, self.runs_ended, self.runs_converged
        ));
        out.push_str(&format!(
            "- adversary: {} faults, {} triggers, {} byzantine windows, {} recurrence candidates\n",
            self.faults_fired, self.triggers_fired, self.byzantine_windows, self.recurrences
        ));
        if let Some((executed, cached, restarts)) = self.fabric {
            out.push_str(&format!(
                "- fabric: executed={executed} cached={cached} worker_restarts={restarts}\n"
            ));
            for (cause, count) in &self.respawn_causes {
                out.push_str(&format!("  - respawn cause `{cause}`: {count}\n"));
            }
        }
        out.push_str("\n## Events by kind\n\n| kind | count |\n|---|---|\n");
        for (kind, count) in &self.stats.by_kind {
            out.push_str(&format!("| {kind} | {count} |\n"));
        }
        if !self.islands.is_empty() {
            out.push_str(
                "\n## Search islands\n\n| island | accepted | rejected | best steps |\n|---|---|---|---|\n",
            );
            for island in &self.islands {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    island.island, island.accepted, island.rejected, island.best_steps
                ));
            }
            if let Some(best) = self.search_best_steps {
                out.push_str(&format!(
                    "\nBest stabilization across islands: {best} steps.\n"
                ));
            }
        }
        if let Some(metrics) = &self.metrics {
            out.push_str("\n## Final metrics snapshot\n\n```json\n");
            out.push_str(&metrics.to_json());
            out.push_str("\n```\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::sink::{finish, install_memory};

    fn sample_stream() -> String {
        let trace = install_memory("digest-test").unwrap();
        {
            let _scope = crate::run_scope("demo", 8, 42);
            crate::emit(
                Event::new("run_start")
                    .field("scenario", "demo")
                    .field("n", 8usize)
                    .count("seed", 42),
            );
            crate::emit(
                Event::new("fault_fired")
                    .count("step", 10)
                    .field("kind", "corrupt_all"),
            );
            crate::emit(Event::new("byzantine_open").count("step", 20));
            crate::emit(Event::new("byzantine_close").count("step", 30));
            crate::emit(
                Event::new("run_end")
                    .count("steps", 99)
                    .field("converged", true),
            );
        }
        crate::emit(
            Event::new("search_island")
                .field("island", 0usize)
                .count("accepted", 5)
                .count("rejected", 7)
                .count("best_steps", 1200),
        );
        crate::emit(
            Event::new("search_summary")
                .field("islands", 1usize)
                .count("evaluations", 12)
                .count("best_steps", 1200),
        );
        crate::emit(
            Event::new("fabric_summary")
                .count("executed", 3)
                .count("cached", 2)
                .count("worker_restarts", 1),
        );
        crate::emit(
            Event::new("worker_respawn")
                .field("worker", 1usize)
                .field("cause", "crash"),
        );
        finish().unwrap();
        trace.contents()
    }

    #[test]
    fn digest_folds_runs_search_and_fabric() {
        let _lock = crate::test_support::serialize();
        let text = sample_stream();
        let digest = TraceDigest::from_stream(&text).expect("stream validates");
        assert_eq!(digest.producer, "digest-test");
        assert_eq!(digest.runs_started, 1);
        assert_eq!(digest.runs_ended, 1);
        assert_eq!(digest.runs_converged, 1);
        assert_eq!(digest.faults_fired, 1);
        assert_eq!(digest.byzantine_windows, 1);
        assert_eq!(digest.islands.len(), 1);
        assert_eq!(digest.islands[0].best_steps, 1200);
        assert_eq!(digest.search_best_steps, Some(1200));
        assert_eq!(digest.fabric, Some((3, 2, 1)));
        assert_eq!(digest.respawn_causes, vec![("crash".to_string(), 1)]);
        assert!(digest.metrics.is_some());
        assert!(digest.stats.complete);
    }

    #[test]
    fn digest_round_trips_to_json_and_markdown() {
        let _lock = crate::test_support::serialize();
        let text = sample_stream();
        let digest = TraceDigest::from_stream(&text).expect("stream validates");
        let json = digest.to_json_value();
        assert_eq!(
            json.get("schema").and_then(JsonValue::as_str),
            Some(DIGEST_SCHEMA)
        );
        assert_eq!(
            json.get("runs")
                .and_then(|r| r.get("converged"))
                .and_then(JsonValue::as_str),
            Some("1")
        );
        // The JSON document itself re-parses.
        let reparsed = JsonValue::parse(&json.to_json()).expect("digest JSON parses");
        assert_eq!(
            reparsed
                .get("fabric")
                .and_then(|f| f.get("respawn_causes"))
                .and_then(|c| c.get("crash"))
                .and_then(JsonValue::as_str),
            Some("1")
        );
        let md = digest.to_markdown();
        assert!(md.contains("# Telemetry digest"));
        assert!(md.contains("| fault_fired | 1 |"));
        assert!(md.contains("Best stabilization across islands: 1200 steps."));
    }

    #[test]
    fn digest_rejects_invalid_streams() {
        assert!(TraceDigest::from_stream("garbage\n").is_err());
    }
}
