//! Full schema validation of an `ssle-telemetry/v1` NDJSON stream.
//!
//! The validator is strict where determinism lives and lenient where
//! extension lives: every line must parse, carry a known event kind, a
//! contiguous `seq`, and the kind's required fields with the right
//! encodings (decimal-string u64s actually parse as u64s); extra fields
//! are allowed (they are how events grow), but wall-clock data outside a
//! `"wall"` section is not expressible — the only place a wall value can
//! legally appear is the quarantined object this module checks.

use analysis::json::JsonValue;

use crate::SCHEMA;

/// The required encoding of one taxonomy field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldType {
    /// A JSON string.
    Str,
    /// A JSON string that parses as a u64 (the exact-decimal house style).
    U64Str,
    /// A plain JSON number (structurally small integers).
    Num,
    /// A JSON boolean.
    Bool,
    /// A JSON object.
    Obj,
}

use FieldType::{Bool, Num, Obj, Str, U64Str};

/// The event taxonomy: kind → required fields.  Extra fields are always
/// permitted; kinds outside this table are rejected (schema growth means
/// extending the table — and bumping the schema version when semantics
/// change).
const TAXONOMY: &[(&str, &[(&str, FieldType)])] = &[
    ("stream_start", &[("schema", Str), ("producer", Str)]),
    ("stream_end", &[("events", U64Str)]),
    (
        "run_start",
        &[("scenario", Str), ("n", Num), ("seed", U64Str)],
    ),
    ("run_end", &[("steps", U64Str), ("converged", Bool)]),
    ("converged", &[("step", U64Str)]),
    ("fault_fired", &[("step", U64Str), ("kind", Str)]),
    ("churn_fired", &[("step", U64Str), ("kind", Str)]),
    ("partition_open", &[("step", U64Str), ("blocks", U64Str)]),
    ("partition_heal", &[("step", U64Str)]),
    ("trigger_fired", &[("step", U64Str), ("trigger", Str)]),
    ("byzantine_open", &[("step", U64Str)]),
    ("byzantine_close", &[("step", U64Str)]),
    (
        "recurrence_candidate",
        &[("step", U64Str), ("period", U64Str)],
    ),
    (
        "search_island",
        &[
            ("island", Num),
            ("accepted", U64Str),
            ("rejected", U64Str),
            ("best_steps", U64Str),
        ],
    ),
    (
        "search_summary",
        &[
            ("islands", Num),
            ("evaluations", U64Str),
            ("best_steps", U64Str),
        ],
    ),
    ("fabric_unit", &[("unit", Num), ("status", Str)]),
    ("worker_respawn", &[("worker", Num), ("cause", Str)]),
    ("fabric_worker", &[("worker", Num), ("units", U64Str)]),
    (
        "fabric_summary",
        &[
            ("executed", U64Str),
            ("cached", U64Str),
            ("worker_restarts", U64Str),
        ],
    ),
    ("journal_start", &[("units", U64Str), ("workers", Num)]),
    ("journal_unit", &[("key", Str), ("status", Str)]),
    ("metrics", &[("registry", Obj)]),
    ("annotation", &[("text", Str)]),
];

/// Summary statistics of a validated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Total events (lines).
    pub events: u64,
    /// Per-kind event counts, sorted by kind.
    pub by_kind: Vec<(String, u64)>,
    /// `true` if the stream ends with a consistent `stream_end` marker
    /// (a crashed producer leaves a truncated — but still valid — prefix).
    pub complete: bool,
}

impl StreamStats {
    /// The count of one event kind (0 when absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind
            .iter()
            .find(|(k, _)| k == kind)
            .map_or(0, |(_, c)| *c)
    }
}

fn field_ok(value: &JsonValue, ty: FieldType) -> bool {
    match ty {
        Str => value.as_str().is_some(),
        U64Str => value
            .as_str()
            .is_some_and(|s| !s.is_empty() && s.parse::<u64>().is_ok()),
        Num => value.as_f64().is_some(),
        Bool => value.as_bool().is_some(),
        Obj => matches!(value, JsonValue::Object(_)),
    }
}

/// Validates one stream of NDJSON text.
///
/// # Errors
///
/// Returns a message naming the first offending line and what is wrong
/// with it.
pub fn validate_stream(text: &str) -> Result<StreamStats, String> {
    let mut by_kind: Vec<(String, u64)> = Vec::new();
    let mut events = 0u64;
    let mut ended = false;
    let mut end_consistent = false;
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line inside the stream"));
        }
        if ended {
            return Err(format!("line {lineno}: events after stream_end"));
        }
        let value = JsonValue::parse(line)
            .map_err(|e| format!("line {lineno}: does not parse as JSON: {e}"))?;
        if !matches!(value, JsonValue::Object(_)) {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let kind = value
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {lineno}: missing \"event\" string"))?;
        let required = TAXONOMY
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, fields)| *fields)
            .ok_or_else(|| format!("line {lineno}: unknown event kind {kind:?}"))?;
        let seq = value
            .get("seq")
            .and_then(JsonValue::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| format!("line {lineno}: missing or malformed \"seq\""))?;
        if seq != events {
            return Err(format!(
                "line {lineno}: seq {seq} out of order (expected {events})"
            ));
        }
        for (field, ty) in required {
            let present = value.get(field).is_some_and(|v| field_ok(v, *ty));
            if !present {
                return Err(format!(
                    "line {lineno}: event {kind:?} requires field {field:?} as {ty:?}"
                ));
            }
        }
        // Scope stamps, when present, use the fixed encodings.
        for (field, ty) in [("scenario", Str), ("n", Num), ("seed", U64Str)] {
            if let Some(v) = value.get(field) {
                if !field_ok(v, ty) && required.iter().all(|(f, _)| *f != field) {
                    return Err(format!("line {lineno}: scope field {field:?} malformed"));
                }
            }
        }
        // The wall section: an object of decimal-string durations (or, in
        // the metrics registry, nested objects — checked one level deep).
        if let Some(wall) = value.get("wall") {
            let JsonValue::Object(entries) = wall else {
                return Err(format!("line {lineno}: \"wall\" is not an object"));
            };
            for (key, v) in entries {
                let ok = field_ok(v, U64Str) || matches!(v, JsonValue::Object(_));
                if !ok {
                    return Err(format!(
                        "line {lineno}: wall entry {key:?} is neither a decimal \
                         string nor an object"
                    ));
                }
            }
        }
        match kind {
            "stream_start" => {
                if index != 0 {
                    return Err(format!("line {lineno}: stream_start after line 1"));
                }
                let schema = value.get("schema").and_then(JsonValue::as_str);
                if schema != Some(SCHEMA) {
                    return Err(format!(
                        "line {lineno}: schema {schema:?}, expected {SCHEMA:?}"
                    ));
                }
            }
            "stream_end" => {
                ended = true;
                let declared = value
                    .get("events")
                    .and_then(JsonValue::as_str)
                    .and_then(|s| s.parse::<u64>().ok());
                end_consistent = declared == Some(events + 1);
                if !end_consistent {
                    return Err(format!(
                        "line {lineno}: stream_end declares {declared:?} events, \
                         {} were seen",
                        events + 1
                    ));
                }
            }
            _ if index == 0 => {
                return Err("line 1: stream must start with stream_start".to_string());
            }
            _ => {}
        }
        match by_kind.iter_mut().find(|(k, _)| k == kind) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((kind.to_string(), 1)),
        }
        events += 1;
    }
    if events == 0 {
        return Err("empty stream (no events)".to_string());
    }
    by_kind.sort();
    Ok(StreamStats {
        events,
        by_kind,
        complete: ended && end_consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::sink::{finish, install_memory};

    #[test]
    fn a_real_stream_validates_as_complete() {
        let _lock = crate::test_support::serialize();
        let trace = install_memory("validate-test").unwrap();
        {
            let _scope = crate::run_scope("demo", 8, 42);
            crate::emit(
                Event::new("run_start")
                    .field("scenario", "demo")
                    .field("n", 8usize)
                    .count("seed", 42),
            );
            crate::emit(
                Event::new("fault_fired")
                    .count("step", 100)
                    .field("kind", "corrupt_all"),
            );
            crate::emit(
                Event::new("churn_fired")
                    .count("step", 120)
                    .field("kind", "rewire"),
            );
            crate::emit(
                Event::new("partition_open")
                    .count("step", 130)
                    .count("blocks", 2),
            );
            crate::emit(Event::new("partition_heal").count("step", 140));
            crate::emit(
                Event::new("converged")
                    .count("step", 250)
                    .wall_micros("elapsed", 12),
            );
            crate::emit(
                Event::new("run_end")
                    .count("steps", 250)
                    .field("converged", true),
            );
        }
        finish().unwrap();
        let stats = validate_stream(&trace.contents()).expect("stream validates");
        assert_eq!(stats.events, 10);
        assert!(stats.complete);
        assert_eq!(stats.count("fault_fired"), 1);
        assert_eq!(stats.count("churn_fired"), 1);
        assert_eq!(stats.count("partition_open"), 1);
        assert_eq!(stats.count("partition_heal"), 1);
        assert_eq!(stats.count("metrics"), 1);
        assert_eq!(stats.count("nonexistent"), 0);
    }

    #[test]
    fn truncated_streams_validate_but_are_incomplete() {
        let _lock = crate::test_support::serialize();
        let trace = install_memory("truncate-test").unwrap();
        crate::emit(Event::new("converged").count("step", 1));
        finish().unwrap();
        let text = trace.contents();
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        let stats = validate_stream(&truncated).expect("a prefix is still valid");
        assert!(!stats.complete);
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn malformed_streams_are_rejected_with_line_numbers() {
        let start = Event::new("stream_start")
            .field("schema", SCHEMA)
            .field("producer", "t")
            .into_json(0)
            .to_string();
        // Not JSON.
        assert!(validate_stream("not json\n")
            .unwrap_err()
            .contains("line 1"));
        // Wrong first event.
        let bad_first = format!(
            "{}\n",
            Event::new("converged").count("step", 1).into_json(0)
        );
        assert!(validate_stream(&bad_first)
            .unwrap_err()
            .contains("stream_start"));
        // Unknown kind.
        let unknown = format!("{start}\n{}\n", Event::new("mystery_event").into_json(1));
        assert!(validate_stream(&unknown)
            .unwrap_err()
            .contains("unknown event kind"));
        // Out-of-order seq.
        let skipped = format!(
            "{start}\n{}\n",
            Event::new("converged").count("step", 1).into_json(5)
        );
        assert!(validate_stream(&skipped)
            .unwrap_err()
            .contains("out of order"));
        // Missing required field.
        let missing = format!("{start}\n{}\n", Event::new("fault_fired").into_json(1));
        assert!(validate_stream(&missing)
            .unwrap_err()
            .contains("requires field"));
        // A u64 field that is a plain number violates the house style.
        let number_step = format!(
            "{start}\n{}\n",
            Event::new("converged").field("step", 3usize).into_json(1)
        );
        assert!(validate_stream(&number_step)
            .unwrap_err()
            .contains("requires field"));
        // Wall section with a non-duration payload.
        let bad_wall = format!(
            "{start}\n{{\"event\":\"converged\",\"seq\":\"1\",\"step\":\"3\",\"wall\":{{\"x\":1.5}}}}\n"
        );
        assert!(validate_stream(&bad_wall).unwrap_err().contains("wall"));
        // Empty input.
        assert!(validate_stream("").is_err());
    }
}
