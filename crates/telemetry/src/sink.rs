//! The global event sink.
//!
//! One process writes at most one NDJSON stream at a time: a binary
//! installs a sink ([`install_file`] for `--telemetry-out`,
//! [`install_memory`] for tests), every layer [`emit`]s events through the
//! global handle, and [`finish`] appends the metrics snapshot plus the
//! `stream_end` marker and tears the sink down.  Installing a sink enables
//! telemetry globally; finishing disables it, so instrumented code needs
//! no knowledge of the sink lifecycle.
//!
//! Each line is serialized and written under one mutex acquisition, so
//! events from concurrent runner threads interleave *between* lines, never
//! within one.  A write error poisons the sink silently (telemetry must
//! never take down the run it observes): the failure is reported once on
//! stderr and subsequent events are dropped.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::metrics::registry;
use crate::{set_enabled, SCHEMA};

/// The installed sink, if any.
struct SinkState {
    writer: Box<dyn Write + Send>,
    seq: u64,
    dead: bool,
}

impl std::fmt::Debug for SinkState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkState")
            .field("seq", &self.seq)
            .field("dead", &self.dead)
            .finish_non_exhaustive()
    }
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

impl SinkState {
    fn write_event(&mut self, event: Event) {
        if self.dead {
            return;
        }
        let line = event.into_json(self.seq).to_json();
        self.seq += 1;
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.dead = true;
            eprintln!("ssle-telemetry: sink write failed, dropping further events: {e}");
        }
    }
}

/// Installs the sink and writes the `stream_start` line.
fn install(writer: Box<dyn Write + Send>, producer: &str) -> io::Result<()> {
    let mut guard = SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if guard.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "a telemetry sink is already installed",
        ));
    }
    let mut state = SinkState {
        writer,
        seq: 0,
        dead: false,
    };
    state.write_event(
        Event::new("stream_start")
            .field("schema", SCHEMA)
            .field("producer", producer),
    );
    *guard = Some(state);
    drop(guard);
    set_enabled(true);
    Ok(())
}

/// Installs a file sink at `path` (truncating), enabling telemetry
/// globally.
///
/// # Errors
///
/// Fails if the file cannot be created or a sink is already installed.
pub fn install_file(path: impl AsRef<Path>, producer: &str) -> io::Result<()> {
    let file = File::create(path)?;
    install(Box::new(BufWriter::new(file)), producer)
}

/// Handle onto an in-memory trace installed by [`install_memory`]; the
/// buffer keeps accumulating until [`finish`] and stays readable after.
#[derive(Debug, Clone)]
pub struct MemoryTrace {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl MemoryTrace {
    /// The NDJSON text written so far.
    pub fn contents(&self) -> String {
        let bytes = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// A `Write` adapter over the shared buffer.
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Installs an in-memory sink (tests and the equivalence pins), enabling
/// telemetry globally.
///
/// # Errors
///
/// Fails if a sink is already installed.
pub fn install_memory(producer: &str) -> io::Result<MemoryTrace> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    install(Box::new(SharedBuffer(Arc::clone(&buffer))), producer)?;
    Ok(MemoryTrace { buffer })
}

/// Emits one event through the installed sink.
///
/// A no-op (one relaxed load) when telemetry is disabled; with telemetry
/// enabled but no sink installed (the overhead benchmark's
/// enabled-but-unsampled mode) the event is built and dropped.
pub fn emit(event: Event) {
    if !crate::enabled() {
        return;
    }
    let mut guard = SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(state) = guard.as_mut() {
        state.write_event(event);
    }
}

/// Finalizes the stream: appends the `metrics` registry snapshot and the
/// `stream_end` marker, flushes and uninstalls the sink, disables
/// telemetry globally and resets the registry (so successive runs in one
/// process start from zero).  Returns the number of events written, or
/// `None` if no sink was installed.
pub fn finish() -> Option<u64> {
    let state = {
        let mut guard = SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.take()
    };
    let mut state = match state {
        Some(state) => state,
        None => {
            set_enabled(false);
            return None;
        }
    };
    state.write_event(Event::new("metrics").field("registry", registry().snapshot()));
    // events = total lines including stream_end itself.
    state.write_event(Event::new("stream_end").count("events", state.seq + 1));
    if let Err(e) = state.writer.flush() {
        eprintln!("ssle-telemetry: sink flush failed: {e}");
    }
    set_enabled(false);
    registry().reset();
    Some(state.seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::json::JsonValue;

    #[test]
    fn memory_stream_starts_counts_and_ends() {
        let _lock = crate::test_support::serialize();
        let trace = install_memory("unit-test").expect("no sink installed");
        assert!(crate::enabled());
        crate::metrics::well_known::RUNS.incr();
        emit(Event::new("converged").count("step", 12));
        let written = finish().expect("sink was installed");
        assert!(!crate::enabled());
        assert_eq!(written, 4, "start + converged + metrics + end");

        let text = trace.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let first = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(JsonValue::as_str),
            Some("stream_start")
        );
        assert_eq!(
            first.get("schema").and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
        let metrics = JsonValue::parse(lines[2]).unwrap();
        assert_eq!(
            metrics
                .get("registry")
                .and_then(|r| r.get("counters"))
                .and_then(|c| c.get("runs"))
                .and_then(JsonValue::as_str),
            Some("1")
        );
        let last = JsonValue::parse(lines[3]).unwrap();
        assert_eq!(
            last.get("event").and_then(JsonValue::as_str),
            Some("stream_end")
        );
        assert_eq!(last.get("events").and_then(JsonValue::as_str), Some("4"));
        // The registry was reset at finish.
        assert_eq!(crate::metrics::well_known::RUNS.get(), 0);
    }

    #[test]
    fn double_install_is_rejected_and_finish_without_sink_is_none() {
        let _lock = crate::test_support::serialize();
        assert!(finish().is_none());
        let _trace = install_memory("first").expect("no sink installed");
        assert!(install_memory("second").is_err());
        finish().expect("first sink still installed");
    }

    #[test]
    fn emit_without_sink_is_silently_dropped() {
        let _lock = crate::test_support::serialize();
        crate::set_enabled(true);
        emit(Event::new("converged"));
        crate::set_enabled(false);
        assert!(finish().is_none());
    }
}
