//! # ssle-telemetry
//!
//! Observability for the ring-ssle workspace: zero-cost metrics, a
//! structured NDJSON event stream, and the schema machinery that keeps both
//! honest.  Offline and dependency-free (only `analysis::json` for the
//! encoding), like the rest of the workspace.
//!
//! The crate is **off by default** and deterministic by construction:
//!
//! * every handle ([`Counter`], [`Gauge`], [`Histogram`]) and every
//!   [`emit`] checks one relaxed [`enabled`] load and returns immediately
//!   when telemetry is off — no locks, no allocation, no I/O.  Telemetry
//!   never draws from a simulation RNG and never mutates run state, so a
//!   telemetry-off run is *bit-identical* to a build without the crate,
//!   and a telemetry-on run produces the same results as a telemetry-off
//!   one (pinned by `scenario_equivalence` in `ssle-bench`);
//! * instrumented layers record at **burst boundaries**, never per step,
//!   so the enabled-but-unsampled hot loop stays within noise of the
//!   uninstrumented one (tracked by `BENCH_telemetry.json`, schema
//!   [`BENCH_SCHEMA`]);
//! * events are stamped with the **deterministic step clock** (steps,
//!   seeds, counts as exact decimal strings — the house style for u64s).
//!   Wall-clock durations exist only inside each event's clearly-marked
//!   `"wall"` section ([`Event::wall_micros`]), so a trace diff that
//!   ignores `"wall"` is a determinism check.
//!
//! The NDJSON stream (schema [`SCHEMA`]) starts with a `stream_start`
//! event and ends with a `metrics` snapshot plus `stream_end`; see
//! [`validate`] for the full event taxonomy and [`digest`] for the
//! fold-into-a-report summarizer behind the `telemetry_summary` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicBool, Ordering};

pub mod digest;
pub mod event;
pub mod metrics;
pub mod sink;
pub mod validate;

pub use digest::TraceDigest;
pub use event::{run_scope, Event, RunScope};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use sink::{emit, finish, install_file, install_memory, MemoryTrace};
pub use validate::{validate_stream, StreamStats};

/// Schema identifier of the NDJSON event stream.
pub const SCHEMA: &str = "ssle-telemetry/v1";

/// Schema identifier of the tracked overhead benchmark artifact
/// (`BENCH_telemetry.json`, written by the `telemetry_bench` binary).
pub const BENCH_SCHEMA: &str = "telemetry-bench/v1";

/// The one global switch.  Relaxed ordering is deliberate: flipping it is
/// a coarse operator action (start of a run), not a synchronization point,
/// and the hot loop pays exactly one uncontended load per burst.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` if telemetry is globally enabled.
///
/// This is the single branch every instrumentation site hides behind; when
/// it returns `false` every handle method and [`emit`] is a no-op.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables telemetry.
///
/// Normally managed by [`install_file`] / [`install_memory`] / [`finish`];
/// exposed for the overhead benchmark, which measures the
/// enabled-but-unsampled hot loop without installing a sink.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
pub(crate) mod test_support {
    //! The enable flag, the well-known handles and the global sink are
    //! process-wide; tests that touch them serialize on this lock so the
    //! parallel test runner cannot interleave their flips.
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Takes the global telemetry test lock.
    pub fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_default() {
        let _lock = test_support::serialize();
        // Other tests toggle the global flag, so only assert the
        // flip-observe contract, not the initial state.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
