//! Integration coverage of the observation layer: execution traces toggling
//! mid-run, agreement between [`population::Trace`] and the incremental
//! [`population::LeaderCounter`], observer hook ordering through
//! [`population::Recorded`], and — the case the unit tests cannot reach —
//! the **fault-boundary resync** of the scenario trajectory loop: a
//! [`population::FaultKind::CorruptTargets`] strike rewrites states behind
//! the incremental counter's back, and only the boundary resync keeps the
//! sampled leader counts truthful afterwards.

use population::prelude::*;

/// Classic pairwise leader elimination: when two leaders meet, the
/// responder is demoted.  Leadership is never created, which makes every
/// post-fault leader count below deterministic.
#[derive(Clone, Debug)]
struct Fratricide;

impl Protocol for Fratricide {
    type State = bool;
    fn interact(&self, initiator: &mut bool, responder: &mut bool) {
        if *initiator && *responder {
            *responder = false;
        }
    }
}

impl LeaderElection for Fratricide {
    fn is_leader(&self, state: &bool) -> bool {
        *state
    }
}

#[test]
fn tracing_toggles_mid_run_and_records_convergence() {
    // Disabled by default: running records nothing.
    let config = Configuration::uniform(8, true);
    let mut sim = Simulation::new(Fratricide, CompleteGraph::new(8), config, 7);
    assert!(!sim.trace().is_enabled());
    sim.run_steps(100);
    assert!(sim.trace().is_empty());

    // Enabled on a fresh run (8 leaders, so the stop predicate cannot pass
    // before any step executes): every interaction lands in the trace, and
    // the first passing stop check appends a convergence event at the
    // reported step.
    let config = Configuration::uniform(8, true);
    let mut sim = Simulation::new(Fratricide, CompleteGraph::new(8), config, 7);
    sim.set_tracing(true);
    let report = sim.run_until(|p, c| p.has_unique_leader(c.states()), 16, 100_000);
    let converged_at = report.converged_at.expect("fratricide converges");
    let interactions = sim
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Interaction { .. }))
        .count() as u64;
    assert_eq!(interactions, sim.steps());
    assert_eq!(
        sim.trace().first_convergence(),
        Some((converged_at, "predicate"))
    );

    // Disabled again: further steps leave the trace untouched.
    sim.set_tracing(false);
    let len = sim.trace().len();
    sim.run_steps(50);
    assert_eq!(sim.trace().len(), len);
}

#[test]
fn trace_and_incremental_counter_agree_on_leader_changes() {
    // `run_tracking_leader_changes` detects changes through the O(1)
    // LeaderCounter observer and mirrors them into the trace; the two views
    // must be the same sequence of steps.
    let config = Configuration::uniform(8, true);
    let mut sim = Simulation::new(Fratricide, CompleteGraph::new(8), config, 11);
    sim.set_tracing(true);
    let changes = sim.run_tracking_leader_changes(500);
    assert!(
        !changes.is_empty(),
        "8 leaders on a complete graph must collide within 500 steps"
    );
    assert_eq!(sim.trace().leader_change_steps(), changes);
    // The final recorded leader set matches a fresh full recount.
    let last = sim
        .trace()
        .events()
        .iter()
        .rev()
        .find_map(|e| match e {
            Event::LeaderSetChanged { leaders, .. } => Some(leaders.clone()),
            _ => None,
        })
        .expect("changes were recorded");
    assert_eq!(last, sim.protocol().leader_indices(sim.config().states()));
}

/// An observer that logs each hook invocation with the states it saw.
#[derive(Debug, Default)]
struct Probe {
    calls: Vec<(&'static str, bool, bool)>,
}

impl StepObserver<Fratricide> for Probe {
    fn pre_interaction(&mut self, _: &Fratricide, _: Interaction, a: &bool, b: &bool) {
        self.calls.push(("pre", *a, *b));
    }
    fn post_interaction(&mut self, _: &Fratricide, _: Interaction, a: &bool, b: &bool) {
        self.calls.push(("post", *a, *b));
    }
}

#[test]
fn observer_hooks_fire_pre_then_post_around_the_transition() {
    // Two leaders meet: pre must see the original pair, post the demoted
    // responder — and the Recorded wrapper forwards both hooks while
    // capturing which interaction ran.
    let config = Configuration::uniform(2, true);
    let mut sim = Simulation::new(Fratricide, CompleteGraph::new(2), config, 0);
    let mut rec = Recorded::new(Probe::default());
    assert_eq!(rec.last_interaction(), None);
    sim.apply_observed(Interaction::new(0, 1), &mut rec);
    assert_eq!(rec.last_interaction(), Some(Interaction::new(0, 1)));
    assert_eq!(
        rec.inner().calls,
        vec![("pre", true, true), ("post", true, false)]
    );
    assert_eq!(sim.config().states(), &[true, false]);
}

/// Builds the strike scenario: a single pre-elected leader (nothing ever
/// changes under fratricide) and a `CorruptTargets { limit: 1 }` event that
/// demotes the current leader at `strike_at`.
fn strike_scenario(strike_at: u64) -> Scenario {
    ScenarioBuilder::new("strike", |_pt: &SweepPoint| Fratricide)
        .graph(GraphFamily::Complete)
        .init(|_p, pt| Configuration::from_fn(pt.n, |i| i == 0))
        .stop_when("unique-leader", |p: &Fratricide, c| {
            p.has_unique_leader(c.states())
        })
        .step_budget(|_pt| 10_000)
        .fault_targets(|p: &Fratricide, s, _agent| p.is_leader(s))
        .faults(
            move |_pt| FaultPlan::new().at(strike_at, FaultKind::CorruptTargets { limit: 1 }),
            |_p, _rng, _i| false,
        )
        .build()
        .expect("complete strike scenario")
}

#[test]
fn leader_trajectory_resyncs_the_counter_at_the_fault_boundary() {
    // The trajectory loop counts leaders through the incremental
    // LeaderCounter, which a targeted strike silently desynchronizes: the
    // fault rewrites the leader's state out-of-band, so every sample after
    // the strike would still read 1 without the boundary resync.  The
    // strike lands at step 30 — *between* the 25-step sample boundaries —
    // so this also pins the burst-splitting path that fires (and resyncs)
    // at a non-sample boundary.
    let traj = strike_scenario(30).leader_trajectory(&SweepPoint::new(8, 3), 100, 25);
    assert_eq!(traj.first(), Some(&(0, 1)));
    assert_eq!(traj.last(), Some(&(100, 0)));
    for &(step, leaders) in &traj {
        let expected = if step < 30 { 1 } else { 0 };
        assert_eq!(
            leaders, expected,
            "sample at step {step}: a demoted leader must be seen immediately"
        );
    }
    // Both regimes were actually sampled.
    assert!(traj.iter().any(|&(step, _)| step < 30));
    assert!(traj.iter().any(|&(step, _)| step >= 30));
}

#[test]
fn step_zero_strikes_fire_before_the_initial_stop_check() {
    // The run path fires due faults at step 0 *before* the initial stop
    // check, so a pre-elected leader struck at step 0 never yields a
    // trivial converged-at-0 report: the decapitated population can never
    // re-elect under fratricide and the run must exhaust its budget with
    // zero leaders.
    let run = strike_scenario(0).run_full(&SweepPoint::new(8, 3));
    assert!(!run.report.converged());
    assert_eq!(run.sim.count_leaders(), 0);
}
