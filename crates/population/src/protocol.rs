//! The protocol abstraction.
//!
//! A population protocol `P(Q, Y, T, π_out)` (Section 2 of the paper) is a
//! finite set of states `Q`, an output alphabet `Y`, a deterministic
//! transition function `T : Q × Q → Q × Q` applied to (initiator, responder)
//! pairs, and an output function `π_out : Q → Y`.
//!
//! [`Protocol`] captures `Q` (the associated `State` type) and `T`
//! ([`Protocol::interact`]).  The output function is modelled by the
//! refinement traits: [`LeaderElection`] for protocols whose output alphabet
//! is `{L, F}` and, for other problems (ring orientation, colouring), by
//! protocol-specific inspection functions in their own crates.

use crate::config::Configuration;

/// Output alphabet of a leader-election protocol: `L` (leader) or `F`
/// (follower).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LeaderOutput {
    /// The agent outputs `L`.
    Leader,
    /// The agent outputs `F`.
    Follower,
}

impl std::fmt::Display for LeaderOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaderOutput::Leader => write!(f, "L"),
            LeaderOutput::Follower => write!(f, "F"),
        }
    }
}

/// A population protocol: a deterministic pairwise transition function over a
/// finite state space.
///
/// Protocols must be deterministic — all randomness in the model comes from
/// the uniformly random scheduler, exactly as in the paper.  The transition
/// is expressed as an in-place update of the `(initiator, responder)` pair,
/// which is both allocation-free for large state structs and a natural
/// transliteration of the paper's pseudocode (which mutates `l` and `r`).
///
/// Implementations should be cheap to clone; the batch runner clones the
/// protocol into worker threads.
pub trait Protocol: Clone + Send + Sync {
    /// The per-agent state type (the finite set `Q`).
    type State: Clone + PartialEq + std::fmt::Debug + Send + Sync;

    /// `true` iff this protocol type may override [`Protocol::environment`].
    ///
    /// The simulation's hot loop calls the environment hook once per step;
    /// for the overwhelmingly common pure protocols that call is a wasted
    /// virtual dispatch under type erasure.  This associated constant lets
    /// [`crate::simulation::Simulation`] compile the call out entirely for
    /// pure protocol types and gate it behind one cached boolean for erased
    /// ones.
    ///
    /// Any protocol that overrides [`Protocol::environment`] **must** set
    /// this to `true` (and override [`Protocol::uses_oracle`]); otherwise
    /// its oracle is silently never invoked.
    const HAS_ENVIRONMENT: bool = false;

    /// The transition function `T`.
    ///
    /// `initiator` is the paper's `l` (the left agent of a directed-ring arc)
    /// and `responder` is `r` (the right agent).  On non-ring graphs the
    /// roles are simply the arc's tail and head.
    fn interact(&self, initiator: &mut Self::State, responder: &mut Self::State);

    /// An environment hook invoked by the simulation once per step *before*
    /// the scheduled interaction, with mutable access to the whole
    /// configuration.
    ///
    /// The default implementation does nothing.  This hook exists solely to
    /// model *oracles* such as Fischer–Jiang's `Ω?` eventual leader detector:
    /// the oracle observes the global configuration and feeds a flag back
    /// into agent states.  Protocols that do not use an oracle (including the
    /// paper's `P_PL`) must leave this as the no-op default so that the
    /// simulated model is the plain population-protocol model.
    ///
    /// Overriding this hook requires also setting
    /// [`Protocol::HAS_ENVIRONMENT`] to `true` and overriding
    /// [`Protocol::uses_oracle`]; the simulation only invokes the hook when
    /// both report an oracle.
    fn environment(&self, _states: &mut [Self::State]) {}

    /// Returns `true` if this protocol overrides [`Protocol::environment`]
    /// with a non-trivial oracle.
    ///
    /// Any protocol that overrides [`Protocol::environment`] **must** also
    /// override this to return `true`: reporting code uses it to label
    /// oracle assumptions in generated tables, and the simulation skips the
    /// per-step environment hook entirely when it returns `false`
    /// (see [`Protocol::HAS_ENVIRONMENT`]), so an inconsistent
    /// implementation would silently lose its oracle.
    ///
    /// Unlike the compile-time [`Protocol::HAS_ENVIRONMENT`], this is a
    /// runtime property: the erased [`crate::scenario::DynProtocol`] must
    /// conservatively set the constant to `true` and reports the wrapped
    /// protocol's actual answer here, which the simulation caches once per
    /// run.
    fn uses_oracle(&self) -> bool {
        false
    }

    /// A short human-readable protocol name used in generated tables.
    fn name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }
}

/// A protocol solving leader election: its output function maps every state
/// to `L` or `F`.
pub trait LeaderElection: Protocol {
    /// The output function restricted to the leader bit: returns `true` iff
    /// the state outputs `L`.
    fn is_leader(&self, state: &Self::State) -> bool;

    /// The output `π_out(q)` of a state.
    fn output(&self, state: &Self::State) -> LeaderOutput {
        if self.is_leader(state) {
            LeaderOutput::Leader
        } else {
            LeaderOutput::Follower
        }
    }

    /// Counts the number of agents outputting `L` in a slice of states.
    fn count_leaders(&self, states: &[Self::State]) -> usize {
        states.iter().filter(|s| self.is_leader(s)).count()
    }

    /// Returns the indices of the agents outputting `L`.
    fn leader_indices(&self, states: &[Self::State]) -> Vec<usize> {
        states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| if self.is_leader(s) { Some(i) } else { None })
            .collect()
    }

    /// Returns `true` iff exactly one agent outputs `L`.
    fn has_unique_leader(&self, states: &[Self::State]) -> bool {
        let mut seen = false;
        for s in states {
            if self.is_leader(s) {
                if seen {
                    return false;
                }
                seen = true;
            }
        }
        seen
    }

    /// Counts leaders in a full configuration.
    fn count_leaders_in(&self, config: &Configuration<Self::State>) -> usize {
        self.count_leaders(config.states())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal protocol used to exercise the default trait methods.
    #[derive(Clone, Debug)]
    struct Toggle;

    impl Protocol for Toggle {
        type State = bool;
        fn interact(&self, initiator: &mut bool, responder: &mut bool) {
            // The initiator absorbs the responder's leadership.
            if *responder {
                *responder = false;
                *initiator = true;
            }
        }
        fn name(&self) -> &'static str {
            "toggle"
        }
    }

    impl LeaderElection for Toggle {
        fn is_leader(&self, state: &bool) -> bool {
            *state
        }
    }

    #[test]
    fn leader_output_display() {
        assert_eq!(LeaderOutput::Leader.to_string(), "L");
        assert_eq!(LeaderOutput::Follower.to_string(), "F");
        assert!(
            LeaderOutput::Leader < LeaderOutput::Follower
                || LeaderOutput::Leader != LeaderOutput::Follower
        );
    }

    #[test]
    fn default_output_follows_is_leader() {
        let p = Toggle;
        assert_eq!(p.output(&true), LeaderOutput::Leader);
        assert_eq!(p.output(&false), LeaderOutput::Follower);
    }

    #[test]
    fn counting_helpers() {
        let p = Toggle;
        let states = vec![true, false, true, false, false];
        assert_eq!(p.count_leaders(&states), 2);
        assert_eq!(p.leader_indices(&states), vec![0, 2]);
        assert!(!p.has_unique_leader(&states));
        assert!(p.has_unique_leader(&[false, true, false]));
        assert!(!p.has_unique_leader(&[false, false]));
    }

    #[test]
    fn default_environment_is_noop_and_reports_no_oracle() {
        let p = Toggle;
        let mut states = vec![true, false];
        p.environment(&mut states);
        assert_eq!(states, vec![true, false]);
        assert!(!p.uses_oracle());
        assert_eq!(p.name(), "toggle");
    }

    #[test]
    fn count_leaders_in_configuration() {
        let p = Toggle;
        let config = Configuration::from_states(vec![true, true, false]);
        assert_eq!(p.count_leaders_in(&config), 2);
    }

    #[test]
    fn transition_moves_leadership_to_initiator() {
        let p = Toggle;
        let mut a = false;
        let mut b = true;
        p.interact(&mut a, &mut b);
        assert!(a);
        assert!(!b);
    }
}
