//! Multi-axis sweep grids.
//!
//! Convergence experiments historically swept the hard-coded pair
//! `(population size, seed)` ([`crate::batch::Trial`]).  Real experiment
//! matrices also vary protocol constants (the `κ_max = c₁ψ` ablation), fault
//! rates, graph families and so on.  [`SweepGrid`] generalizes the grid to an
//! arbitrary cartesian product of axes and yields [`SweepPoint`]s: a size, a
//! derived seed, and any number of named parameter values that scenario
//! factories can read back with [`SweepPoint::value`].

use crate::batch::Trial;

/// One axis of a sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepAxis {
    /// Population sizes (the `n` of each point).
    Sizes(Vec<usize>),
    /// Independent repetitions per grid cell; each repetition gets its own
    /// derived seed.
    Trials {
        /// Repetitions per cell.
        per_cell: usize,
        /// Seed the per-point seeds are derived from.
        base_seed: u64,
    },
    /// A named free parameter (κ factor, fault rate, …), retrievable from
    /// each point via [`SweepPoint::value`].
    Values {
        /// The parameter name.
        name: String,
        /// The values the axis takes.
        values: Vec<f64>,
    },
}

/// A point of a sweep grid: the population size, a deterministically derived
/// seed, and the values of any extra named axes.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Population size.
    pub n: usize,
    /// RNG seed for this point (drives the initial configuration, the
    /// scheduler and fault injection unless a scenario overrides them).
    pub seed: u64,
    values: Vec<(String, f64)>,
}

impl SweepPoint {
    /// Creates a bare point with no extra axis values.
    pub fn new(n: usize, seed: u64) -> Self {
        SweepPoint {
            n,
            seed,
            values: Vec::new(),
        }
    }

    /// Attaches a named axis value (builder-style).
    pub fn with_value(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.push((name.into(), value));
        self
    }

    /// The value of the named axis at this point, if the grid has that axis.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// All named axis values of this point.
    pub fn values(&self) -> &[(String, f64)] {
        &self.values
    }

    /// The classic `(n, seed)` pair of this point.
    pub fn trial(&self) -> Trial {
        Trial::new(self.n, self.seed)
    }
}

impl From<Trial> for SweepPoint {
    fn from(t: Trial) -> Self {
        SweepPoint::new(t.n, t.seed)
    }
}

/// A cartesian product of sweep axes.
///
/// Seeds are derived exactly like [`Trial::grid`] — `base_seed` XOR the size
/// index shifted into bits 32.., XOR the repetition index — with the combined
/// index of any extra [`SweepAxis::Values`] axes shifted into bits 40.., so a
/// grid with only sizes and trials produces byte-identical seeds to the
/// historical `Trial::grid`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepGrid {
    sizes: Vec<usize>,
    trials_per_cell: usize,
    base_seed: u64,
    axes: Vec<(String, Vec<f64>)>,
}

impl SweepGrid {
    /// Creates an empty grid (no sizes, one trial per cell, seed 0).
    pub fn new() -> Self {
        SweepGrid {
            sizes: Vec::new(),
            trials_per_cell: 1,
            base_seed: 0,
            axes: Vec::new(),
        }
    }

    /// Sets the population sizes.
    pub fn sizes(mut self, sizes: &[usize]) -> Self {
        self.sizes = sizes.to_vec();
        self
    }

    /// Sets the number of repetitions per grid cell and the base seed they
    /// are derived from.
    pub fn trials(mut self, per_cell: usize, base_seed: u64) -> Self {
        self.trials_per_cell = per_cell;
        self.base_seed = base_seed;
        self
    }

    /// Adds a named free-parameter axis.
    pub fn axis(mut self, name: impl Into<String>, values: &[f64]) -> Self {
        self.axes.push((name.into(), values.to_vec()));
        self
    }

    /// Adds an axis from the given [`SweepAxis`] description.
    pub fn with_axis(self, axis: SweepAxis) -> Self {
        match axis {
            SweepAxis::Sizes(sizes) => self.sizes(&sizes),
            SweepAxis::Trials {
                per_cell,
                base_seed,
            } => self.trials(per_cell, base_seed),
            SweepAxis::Values { name, values } => self.axis(name, &values),
        }
    }

    /// Number of points in the grid.
    pub fn num_points(&self) -> usize {
        self.sizes.len()
            * self.trials_per_cell
            * self.axes.iter().map(|(_, v)| v.len()).product::<usize>()
    }

    /// Returns `true` if the grid contains no points (no sizes, zero trials
    /// per cell, or an empty value axis).
    pub fn is_empty(&self) -> bool {
        self.num_points() == 0
    }

    /// Materializes every point of the grid, sizes outermost (matching the
    /// ordering of [`Trial::grid`]), then value-axis combinations, then
    /// repetitions innermost.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut out = Vec::with_capacity(self.num_points());
        let combos = self.value_combinations();
        for (si, &n) in self.sizes.iter().enumerate() {
            for (ci, combo) in combos.iter().enumerate() {
                for t in 0..self.trials_per_cell {
                    let seed =
                        self.base_seed ^ ((si as u64) << 32) ^ ((ci as u64) << 40) ^ t as u64;
                    out.push(SweepPoint {
                        n,
                        seed,
                        values: combo.clone(),
                    });
                }
            }
        }
        out
    }

    /// Cartesian product of the value axes (a single empty combination when
    /// there are none).
    fn value_combinations(&self) -> Vec<Vec<(String, f64)>> {
        let mut combos: Vec<Vec<(String, f64)>> = vec![Vec::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(combos.len() * values.len());
            for combo in &combos {
                for &v in values {
                    let mut c = combo.clone();
                    c.push((name.clone(), v));
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_trial_grid_matches_the_classic_trial_grid() {
        let grid = SweepGrid::new().sizes(&[8, 16, 32]).trials(5, 42);
        let points = grid.points();
        let trials = Trial::grid(&[8, 16, 32], 5, 42);
        assert_eq!(points.len(), trials.len());
        for (p, t) in points.iter().zip(&trials) {
            assert_eq!(p.trial(), *t);
            assert!(p.values().is_empty());
        }
    }

    #[test]
    fn empty_grids_have_no_points() {
        assert!(SweepGrid::new().is_empty());
        assert!(SweepGrid::new().sizes(&[]).trials(5, 0).is_empty());
        assert!(SweepGrid::new().sizes(&[8]).trials(0, 0).is_empty());
        assert!(SweepGrid::new()
            .sizes(&[8])
            .trials(2, 0)
            .axis("rate", &[])
            .is_empty());
        assert!(SweepGrid::new().points().is_empty());
    }

    #[test]
    fn value_axes_form_a_cartesian_product_with_distinct_seeds() {
        let grid = SweepGrid::new()
            .sizes(&[8, 16])
            .trials(3, 7)
            .axis("c1", &[2.0, 4.0])
            .axis("rate", &[0.1, 0.2, 0.3]);
        assert_eq!(grid.num_points(), 2 * 3 * 2 * 3);
        let points = grid.points();
        assert_eq!(points.len(), grid.num_points());
        let mut seeds: Vec<(usize, u64)> = points.iter().map(|p| (p.n, p.seed)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), points.len(), "seeds must be distinct per n");
        // Every point carries both axis values.
        for p in &points {
            assert!([2.0, 4.0].contains(&p.value("c1").unwrap()));
            assert!([0.1, 0.2, 0.3].contains(&p.value("rate").unwrap()));
            assert_eq!(p.value("missing"), None);
        }
        // Every combination appears for every (n, repetition).
        let count_c1_2 = points.iter().filter(|p| p.value("c1") == Some(2.0)).count();
        assert_eq!(count_c1_2, points.len() / 2);
    }

    #[test]
    fn with_axis_builds_the_same_grid_as_the_named_methods() {
        let a = SweepGrid::new()
            .with_axis(SweepAxis::Sizes(vec![8]))
            .with_axis(SweepAxis::Trials {
                per_cell: 2,
                base_seed: 9,
            })
            .with_axis(SweepAxis::Values {
                name: "x".into(),
                values: vec![1.0],
            });
        let b = SweepGrid::new().sizes(&[8]).trials(2, 9).axis("x", &[1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn points_can_be_built_by_hand() {
        let p = SweepPoint::new(8, 3).with_value("rate", 0.5);
        assert_eq!(p.n, 8);
        assert_eq!(p.seed, 3);
        assert_eq!(p.value("rate"), Some(0.5));
        let from_trial = SweepPoint::from(Trial::new(4, 1));
        assert_eq!(from_trial.trial(), Trial::new(4, 1));
    }
}
