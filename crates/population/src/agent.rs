//! Agent identity.
//!
//! Agents in the population-protocol model are *anonymous*: the protocol
//! itself can never observe an identifier.  The simulator, however, needs a
//! way to index agents in configurations, interaction graphs and traces.
//! [`AgentId`] is that index.  It is deliberately a thin newtype around
//! `usize` so it can never leak into protocol state by accident (protocol
//! states are defined in protocol crates and have no access to it).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of an agent within a population.
///
/// On a directed ring of `n` agents the paper names the agents
/// `u_0, u_1, ..., u_{n-1}` with arcs `(u_i, u_{i+1 mod n})`.  `AgentId(i)`
/// corresponds to `u_i`.  The identity is only visible to the simulator and
/// to analysis code, never to the protocol transition function.
///
/// # Examples
///
/// ```
/// use population::agent::AgentId;
///
/// let a = AgentId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.clockwise_neighbor(8).index(), 4);
/// assert_eq!(AgentId::new(7).clockwise_neighbor(8).index(), 0);
/// assert_eq!(AgentId::new(0).counter_clockwise_neighbor(8).index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(usize);

impl AgentId {
    /// Creates an agent id from a raw index.
    pub const fn new(index: usize) -> Self {
        AgentId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The agent `u_{i+1 mod n}`: the *right* (clockwise) neighbour on a ring
    /// of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn clockwise_neighbor(self, n: usize) -> Self {
        assert!(n > 0, "ring size must be positive");
        AgentId((self.0 + 1) % n)
    }

    /// The agent `u_{i-1 mod n}`: the *left* (counter-clockwise) neighbour on
    /// a ring of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn counter_clockwise_neighbor(self, n: usize) -> Self {
        assert!(n > 0, "ring size must be positive");
        AgentId((self.0 + n - 1) % n)
    }

    /// Clockwise distance from `self` to `other` on a ring of `n` agents
    /// (the number of clockwise hops needed to reach `other`).
    ///
    /// # Examples
    ///
    /// ```
    /// use population::agent::AgentId;
    /// assert_eq!(AgentId::new(2).clockwise_distance_to(AgentId::new(5), 8), 3);
    /// assert_eq!(AgentId::new(5).clockwise_distance_to(AgentId::new(2), 8), 5);
    /// assert_eq!(AgentId::new(5).clockwise_distance_to(AgentId::new(5), 8), 0);
    /// ```
    pub fn clockwise_distance_to(self, other: AgentId, n: usize) -> usize {
        assert!(n > 0, "ring size must be positive");
        (other.0 + n - self.0 % n) % n
    }
}

impl From<usize> for AgentId {
    fn from(index: usize) -> Self {
        AgentId(index)
    }
}

impl From<AgentId> for usize {
    fn from(id: AgentId) -> usize {
        id.0
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_index_round_trip() {
        for i in 0..100 {
            assert_eq!(AgentId::new(i).index(), i);
            assert_eq!(usize::from(AgentId::from(i)), i);
        }
    }

    #[test]
    fn clockwise_neighbor_wraps() {
        let n = 5;
        assert_eq!(AgentId::new(0).clockwise_neighbor(n), AgentId::new(1));
        assert_eq!(AgentId::new(4).clockwise_neighbor(n), AgentId::new(0));
    }

    #[test]
    fn counter_clockwise_neighbor_wraps() {
        let n = 5;
        assert_eq!(
            AgentId::new(0).counter_clockwise_neighbor(n),
            AgentId::new(4)
        );
        assert_eq!(
            AgentId::new(3).counter_clockwise_neighbor(n),
            AgentId::new(2)
        );
    }

    #[test]
    fn neighbors_are_inverse_of_each_other() {
        let n = 17;
        for i in 0..n {
            let a = AgentId::new(i);
            assert_eq!(a.clockwise_neighbor(n).counter_clockwise_neighbor(n), a);
            assert_eq!(a.counter_clockwise_neighbor(n).clockwise_neighbor(n), a);
        }
    }

    #[test]
    fn clockwise_distance_properties() {
        let n = 9;
        for i in 0..n {
            for j in 0..n {
                let a = AgentId::new(i);
                let b = AgentId::new(j);
                let d = a.clockwise_distance_to(b, n);
                assert!(d < n);
                // Walking d clockwise hops from a reaches b.
                let mut cur = a;
                for _ in 0..d {
                    cur = cur.clockwise_neighbor(n);
                }
                assert_eq!(cur, b);
                // Distances there and back sum to 0 or n.
                let back = b.clockwise_distance_to(a, n);
                assert!(d + back == 0 || d + back == n);
            }
        }
    }

    #[test]
    fn display_and_debug_match_paper_notation() {
        assert_eq!(format!("{}", AgentId::new(7)), "u7");
        assert_eq!(format!("{:?}", AgentId::new(7)), "u7");
    }

    #[test]
    #[should_panic(expected = "ring size must be positive")]
    fn neighbor_of_empty_ring_panics() {
        AgentId::new(0).clockwise_neighbor(0);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(AgentId::new(1) < AgentId::new(2));
        assert_eq!(AgentId::new(3).max(AgentId::new(5)), AgentId::new(5));
    }
}
