//! Error types for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PopulationError>;

/// Errors produced by the simulation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PopulationError {
    /// The population is too small for the requested operation.  The paper
    /// assumes `n >= 2` throughout (Section 2).
    PopulationTooSmall {
        /// The requested number of agents.
        requested: usize,
        /// The minimum number of agents required.
        minimum: usize,
    },
    /// A configuration's length does not match the interaction graph's number
    /// of agents.
    ConfigurationSizeMismatch {
        /// Number of states in the configuration.
        configuration: usize,
        /// Number of agents in the interaction graph.
        graph: usize,
    },
    /// An interaction referenced an agent index outside the population.
    AgentOutOfRange {
        /// The offending index.
        index: usize,
        /// The population size.
        population: usize,
    },
    /// An interaction was requested along a pair that is not an arc of the
    /// interaction graph.
    NotAnArc {
        /// Initiator index.
        initiator: usize,
        /// Responder index.
        responder: usize,
    },
    /// A deterministic scheduler ran out of scheduled interactions.
    ScheduleExhausted {
        /// The number of interactions that were available.
        available: u64,
    },
    /// An arbitrary graph was given an empty arc set, which cannot drive a
    /// random scheduler.
    EmptyArcSet,
    /// A scenario builder was finalized without one of its required pieces.
    ScenarioIncomplete {
        /// The name of the missing builder method.
        missing: &'static str,
    },
    /// A non-empty fault plan was attached to a scenario that has no
    /// corruption function, so its fault events could never be executed.
    MissingCorruption,
    /// The operation requires a pure protocol, but the protocol registers an
    /// environment (oracle) hook that mutates states between interactions.
    OracleUnsupported {
        /// The operation that cannot run under an oracle.
        operation: &'static str,
    },
    /// A fault event with extent zero (`count == 0` / `limit == 0`) was added
    /// to a plan.  Such an event can never corrupt anything, so a plan
    /// containing one is always a bug, not a boundary case.
    DegenerateFault {
        /// The step (or trigger name) the no-op event was scheduled at.
        at: String,
    },
    /// A plan contains a targeted fault (`FaultKind::CorruptTargets`) but the
    /// scenario registered no target predicate, so the event could never
    /// choose its victims.
    MissingTarget,
    /// A plan carries an active Byzantine window but the scenario registered
    /// no `byzantine` rewrite function, so the window could never act.
    MissingByzantine,
    /// A plan references a trigger name the scenario never registered, so
    /// the triggered event could never fire.
    UnknownTrigger {
        /// The unregistered trigger name.
        name: String,
    },
    /// An arc connects an agent to itself.  Population-protocol interactions
    /// are between *distinct* agents (Section 2); a self-loop would either be
    /// silently unreachable or corrupt the split-borrow interaction step, so
    /// it is rejected at graph construction time.
    SelfLoopArc {
        /// The agent carrying the self-loop.
        agent: usize,
    },
    /// A custom digraph is not weakly connected, so some agents can never
    /// influence the rest of the population and global stop predicates may be
    /// unreachable (the run would only end by budget exhaustion).
    DisconnectedGraph {
        /// The population size.
        agents: usize,
        /// How many agents are reachable from agent 0 in the underlying
        /// undirected graph.
        reached: usize,
    },
    /// A randomized graph generator exhausted its retry budget without
    /// producing a simple graph (only possible for adversarially tight
    /// parameter choices, e.g. random-regular with degree close to `n`).
    GraphGenerationFailed {
        /// The family whose generator gave up.
        family: &'static str,
    },
    /// A churn event with extent zero (`count == 0`, or a partition into
    /// fewer than two blocks) was added to a plan.  Such an event can never
    /// change the topology, so a plan containing one is always a bug.
    DegenerateChurn {
        /// The step the no-op event was scheduled at.
        at: u64,
    },
    /// A churn plan was combined with a scenario feature the churn machinery
    /// does not support (currently: an active Byzantine window, whose rewrite
    /// scratch buffers assume a fixed population).
    ChurnUnsupported {
        /// The unsupported combination.
        reason: &'static str,
    },
}

impl fmt::Display for PopulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopulationError::PopulationTooSmall { requested, minimum } => write!(
                f,
                "population of {requested} agents is too small (need at least {minimum})"
            ),
            PopulationError::ConfigurationSizeMismatch {
                configuration,
                graph,
            } => write!(
                f,
                "configuration has {configuration} states but the graph has {graph} agents"
            ),
            PopulationError::AgentOutOfRange { index, population } => write!(
                f,
                "agent index {index} is out of range for a population of {population}"
            ),
            PopulationError::NotAnArc {
                initiator,
                responder,
            } => write!(
                f,
                "pair ({initiator}, {responder}) is not an arc of the interaction graph"
            ),
            PopulationError::ScheduleExhausted { available } => write!(
                f,
                "deterministic schedule exhausted after {available} interactions"
            ),
            PopulationError::EmptyArcSet => write!(f, "interaction graph has no arcs"),
            PopulationError::ScenarioIncomplete { missing } => write!(
                f,
                "scenario builder is missing a required piece: call `{missing}` before `build`"
            ),
            PopulationError::MissingCorruption => write!(
                f,
                "scenario has a non-empty fault plan but no corruption function: \
                 call `ScenarioBuilder::corruption` (or `faults`) before running"
            ),
            PopulationError::OracleUnsupported { operation } => write!(
                f,
                "`{operation}` requires a pure protocol: the environment (oracle) hook \
                 mutates states between interactions"
            ),
            PopulationError::DegenerateFault { at } => write!(
                f,
                "fault event at {at} has extent 0 and can never corrupt anything: \
                 a no-op fault in a plan is always a bug"
            ),
            PopulationError::MissingTarget => write!(
                f,
                "plan contains a targeted fault but the scenario has no target predicate: \
                 call `ScenarioBuilder::fault_targets` before running"
            ),
            PopulationError::MissingByzantine => write!(
                f,
                "plan carries an active Byzantine window but the scenario has no rewrite \
                 function: call `ScenarioBuilder::byzantine` before running"
            ),
            PopulationError::UnknownTrigger { name } => write!(
                f,
                "plan references the trigger {name:?}, which the scenario never registered: \
                 call `ScenarioBuilder::trigger({name:?}, ..)` before running"
            ),
            PopulationError::SelfLoopArc { agent } => write!(
                f,
                "arc ({agent}, {agent}) is a self-loop: interactions are between distinct agents"
            ),
            PopulationError::DisconnectedGraph { agents, reached } => write!(
                f,
                "graph is not weakly connected: only {reached} of {agents} agents are reachable \
                 from agent 0, so a global stop predicate may be unreachable"
            ),
            PopulationError::GraphGenerationFailed { family } => write!(
                f,
                "the {family} generator exhausted its retry budget without producing a \
                 simple graph; relax the parameters (degree/edge count vs population size)"
            ),
            PopulationError::DegenerateChurn { at } => write!(
                f,
                "churn event at step {at} has extent 0 and can never change the topology: \
                 a no-op churn event in a plan is always a bug"
            ),
            PopulationError::ChurnUnsupported { reason } => write!(
                f,
                "churn plan cannot run under {reason}: drop the churn plan or the \
                 conflicting scenario feature"
            ),
        }
    }
}

impl Error for PopulationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(PopulationError, &str)> = vec![
            (
                PopulationError::PopulationTooSmall {
                    requested: 1,
                    minimum: 2,
                },
                "too small",
            ),
            (
                PopulationError::ConfigurationSizeMismatch {
                    configuration: 3,
                    graph: 4,
                },
                "3 states",
            ),
            (
                PopulationError::AgentOutOfRange {
                    index: 9,
                    population: 4,
                },
                "out of range",
            ),
            (
                PopulationError::NotAnArc {
                    initiator: 0,
                    responder: 2,
                },
                "not an arc",
            ),
            (
                PopulationError::ScheduleExhausted { available: 10 },
                "exhausted",
            ),
            (PopulationError::EmptyArcSet, "no arcs"),
            (
                PopulationError::ScenarioIncomplete { missing: "init" },
                "init",
            ),
            (PopulationError::MissingCorruption, "corruption"),
            (
                PopulationError::OracleUnsupported {
                    operation: "explore",
                },
                "oracle",
            ),
            (
                PopulationError::DegenerateFault {
                    at: "step 10".to_string(),
                },
                "extent 0",
            ),
            (PopulationError::MissingTarget, "fault_targets"),
            (PopulationError::MissingByzantine, "byzantine"),
            (
                PopulationError::UnknownTrigger {
                    name: "on-elect".to_string(),
                },
                "on-elect",
            ),
            (PopulationError::SelfLoopArc { agent: 3 }, "self-loop"),
            (
                PopulationError::DisconnectedGraph {
                    agents: 8,
                    reached: 5,
                },
                "weakly connected",
            ),
            (
                PopulationError::GraphGenerationFailed {
                    family: "random-regular",
                },
                "random-regular",
            ),
            (PopulationError::DegenerateChurn { at: 10 }, "extent 0"),
            (
                PopulationError::ChurnUnsupported {
                    reason: "a Byzantine window",
                },
                "Byzantine",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<PopulationError>();
    }
}
