//! Initial-configuration generators.
//!
//! A self-stabilizing protocol must converge from *every* configuration, so
//! experiments sample initial configurations adversarially.  An
//! [`Initializer`] produces configurations for a given population size from a
//! seed; protocol crates implement it for their state types (uniform random
//! over the reachable state space, "no leader with consistent distances",
//! "all agents are leaders", and so on).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::Configuration;

/// A family of initial configurations, parameterised by population size and
/// seed.
pub trait Initializer<S>: Send + Sync {
    /// A short name used in experiment reports.
    fn name(&self) -> &str;

    /// Produces an initial configuration of `n` agents.
    fn generate(&self, n: usize, seed: u64) -> Configuration<S>;
}

/// Initializer producing the same state for every agent.
#[derive(Clone, Debug)]
pub struct UniformInit<S> {
    name: String,
    state: S,
}

impl<S: Clone> UniformInit<S> {
    /// Creates a uniform initializer with the given per-agent state.
    pub fn new(name: impl Into<String>, state: S) -> Self {
        UniformInit {
            name: name.into(),
            state,
        }
    }
}

impl<S: Clone + Send + Sync> Initializer<S> for UniformInit<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, n: usize, _seed: u64) -> Configuration<S> {
        Configuration::uniform(n, self.state.clone())
    }
}

/// Initializer defined by a closure `(n, rng) -> Configuration`.
pub struct FnInit<S, F> {
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S, F> std::fmt::Debug for FnInit<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnInit").field("name", &self.name).finish()
    }
}

impl<S, F> FnInit<S, F>
where
    F: Fn(usize, &mut ChaCha8Rng) -> Configuration<S> + Send + Sync,
{
    /// Creates a closure-backed initializer.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnInit {
            name: name.into(),
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F> Initializer<S> for FnInit<S, F>
where
    S: Send + Sync,
    F: Fn(usize, &mut ChaCha8Rng) -> Configuration<S> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, n: usize, seed: u64) -> Configuration<S> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (self.f)(n, &mut rng)
    }
}

/// Samples each agent's state independently from a per-agent sampling
/// function.  This is the generic "arbitrary configuration" generator used by
/// self-stabilization experiments; protocol crates supply the per-state
/// sampler that covers their whole state space.
pub struct IndependentInit<S, F> {
    name: String,
    sample: F,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S, F> std::fmt::Debug for IndependentInit<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndependentInit")
            .field("name", &self.name)
            .finish()
    }
}

impl<S, F> IndependentInit<S, F>
where
    F: Fn(&mut ChaCha8Rng) -> S + Send + Sync,
{
    /// Creates an initializer that samples every agent state independently.
    pub fn new(name: impl Into<String>, sample: F) -> Self {
        IndependentInit {
            name: name.into(),
            sample,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F> Initializer<S> for IndependentInit<S, F>
where
    S: Send + Sync,
    F: Fn(&mut ChaCha8Rng) -> S + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, n: usize, seed: u64) -> Configuration<S> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Configuration::from_fn(n, |_| (self.sample)(&mut rng))
    }
}

/// Helper: sample a `usize` uniformly from `0..bound` (bound >= 1).
pub fn sample_below<R: Rng + ?Sized>(rng: &mut R, bound: usize) -> usize {
    assert!(bound >= 1, "bound must be positive");
    rng.gen_range(0..bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_init_produces_identical_states() {
        let init = UniformInit::new("all-7", 7u32);
        let c = init.generate(5, 123);
        assert_eq!(c.len(), 5);
        assert!(c.states().iter().all(|&x| x == 7));
        assert_eq!(init.name(), "all-7");
    }

    #[test]
    fn fn_init_uses_seeded_rng_deterministically() {
        let init = FnInit::new("random-bits", |n, rng: &mut ChaCha8Rng| {
            Configuration::from_fn(n, |_| rng.gen::<bool>())
        });
        let a = init.generate(64, 42);
        let b = init.generate(64, 42);
        let c = init.generate(64, 43);
        assert_eq!(a.states(), b.states());
        assert_ne!(a.states(), c.states());
        assert_eq!(init.name(), "random-bits");
        assert!(format!("{init:?}").contains("random-bits"));
    }

    #[test]
    fn independent_init_samples_every_agent() {
        let init = IndependentInit::new("uniform-u8", |rng: &mut ChaCha8Rng| rng.gen::<u8>());
        let c = init.generate(256, 7);
        assert_eq!(c.len(), 256);
        // With 256 samples of a u8 we expect many distinct values.
        let mut distinct: Vec<u8> = c.states().to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 50);
        assert!(format!("{init:?}").contains("uniform-u8"));
    }

    #[test]
    fn sample_below_is_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(sample_below(&mut rng, 7) < 7);
        }
        assert_eq!(sample_below(&mut rng, 1), 0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn sample_below_zero_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        sample_below(&mut rng, 0);
    }
}
