//! Declarative, protocol-erased experiment scenarios.
//!
//! Every convergence experiment in this workspace has the same shape: build a
//! protocol, a graph and an initial configuration for a sweep point, optionally
//! corrupt agents according to a fault plan, run under the uniformly random
//! scheduler until a stop criterion holds or a step budget runs out, and
//! report a [`ConvergenceReport`].  Historically each protocol needed its own
//! monomorphized copy of that plumbing; this module provides **one** run path
//! for all of them:
//!
//! * [`DynState`] / [`DynLeaderElection`] / [`DynProtocol`] — type erasure for
//!   protocols and their per-agent states, so heterogeneous protocols flow
//!   through a single `Simulation<DynProtocol, AnyGraph>`.  Erasure does not
//!   change the execution: the scheduler, RNG stream and transition function
//!   are exactly those of the typed path, so reports are bit-identical.
//!   Erased states live in fixed-size **inline slots** ([`crate::slot`]), so
//!   the erased configuration is one contiguous buffer and the per-step cost
//!   matches static dispatch — no per-agent heap boxes.
//! * [`GraphFamily`] / [`AnyGraph`] — graph topologies selectable per
//!   scenario and instantiated per sweep point.
//! * [`FaultPlan`] — hostile behaviour scheduled into the run: transient
//!   faults at explicit steps, predicate-coupled (triggered) faults, and
//!   bounded Byzantine windows.
//! * [`ScenarioBuilder`] → [`Scenario`] — the declarative layer tying a
//!   protocol factory, an initial-condition generator, a stop criterion, a
//!   step budget and an optional fault plan together, runnable on single
//!   [`SweepPoint`]s or whole [`SweepGrid`]s.
//!
//! # Example
//!
//! ```
//! use population::prelude::*;
//! use population::scenario::{GraphFamily, ScenarioBuilder};
//! use population::sweep::{SweepGrid, SweepPoint};
//!
//! /// Pairwise leader elimination: a leader meeting a leader demotes it.
//! #[derive(Clone, Debug)]
//! struct Fratricide;
//! impl Protocol for Fratricide {
//!     type State = bool;
//!     fn interact(&self, initiator: &mut bool, responder: &mut bool) {
//!         if *initiator && *responder {
//!             *responder = false;
//!         }
//!     }
//! }
//! impl LeaderElection for Fratricide {
//!     fn is_leader(&self, state: &bool) -> bool {
//!         *state
//!     }
//! }
//!
//! let scenario = ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
//!     .graph(GraphFamily::Complete)
//!     .init(|_p, pt| Configuration::uniform(pt.n, true))
//!     .stop_when("unique-leader", |p: &Fratricide, c| {
//!         p.has_unique_leader(c.states())
//!     })
//!     .check_every(|_pt| 1)
//!     .step_budget(|_pt| 100_000)
//!     .build()
//!     .unwrap();
//!
//! // One point …
//! let report = scenario.run(&SweepPoint::new(8, 42));
//! assert!(report.converged());
//!
//! // … or a whole grid, in parallel, grouped per population size.
//! let grid = SweepGrid::new().sizes(&[4, 8]).trials(3, 7);
//! let summaries = scenario.sweep_summaries(&grid, &BatchRunner::with_threads(2));
//! assert_eq!(summaries.len(), 2);
//! assert!(summaries.iter().all(|s| s.converged_fraction() == 1.0));
//! ```

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::batch::{group_by_size, BatchRunner, BatchSummary, Outcome, TrialOutcome};
use crate::config::Configuration;
use crate::convergence::ConvergenceReport;
use crate::error::{PopulationError, Result};
use crate::faults::{FaultInjector, FaultKind};
use crate::graph::{ArbitraryGraph, CompleteGraph, DirectedRing, InteractionGraph, UndirectedRing};
use crate::observer::{LeaderCounter, NoObserver, StepObserver};
use crate::protocol::{LeaderElection, Protocol};
use crate::recurrence::{ConfigDigest, RecurrenceCandidate, RecurrenceDetector};
use crate::schedule::Interaction;
use crate::scheduler::{RandomScheduler, Scheduler};
use crate::simulation::Simulation;
use crate::sweep::{SweepGrid, SweepPoint};

// ---------------------------------------------------------------------------
// State erasure
// ---------------------------------------------------------------------------

pub use crate::slot::{DynState, SlotState};

/// Rebuilds a typed configuration from an erased one, if every agent state
/// has type `S`.  Used by tests and examples that inspect final states after
/// a [`Scenario::run_full`].
pub fn downcast_config<S: SlotState>(config: &Configuration<DynState>) -> Option<Configuration<S>> {
    let mut states = Vec::with_capacity(config.len());
    for s in config.states() {
        states.push(s.downcast_ref::<S>()?.clone());
    }
    Some(Configuration::from_states(states))
}

// ---------------------------------------------------------------------------
// Protocol erasure
// ---------------------------------------------------------------------------

/// The object-safe face of a (leader-election) protocol: boxed states in,
/// boxed states out.
///
/// Implemented by the private wrappers behind [`DynProtocol::erase`] (for
/// [`LeaderElection`] protocols) and [`DynProtocol::erase_protocol`] (for
/// protocols without a leader output, whose `is_leader_dyn` is always
/// `false`).
pub trait DynLeaderElection: Send + Sync {
    /// The transition function on erased states.
    ///
    /// # Panics
    ///
    /// Panics if either state does not downcast to the protocol's state type
    /// (mixing states of different protocols in one configuration).
    fn interact_dyn(&self, initiator: &mut DynState, responder: &mut DynState);

    /// The environment (oracle) hook on erased states.
    fn environment_dyn(&self, states: &mut [DynState]);

    /// See [`Protocol::uses_oracle`].
    fn uses_oracle_dyn(&self) -> bool;

    /// The leader-output map; `false` for protocols without one.
    fn is_leader_dyn(&self, state: &DynState) -> bool;

    /// See [`Protocol::name`].
    fn protocol_name(&self) -> &'static str;
}

/// Erasure wrapper for protocols with a leader output.
struct ErasedLe<P>(P);

/// Erasure wrapper for protocols without a leader output.
struct ErasedPlain<P>(P);

fn downcast_pair<'a, S: SlotState>(
    initiator: &'a mut DynState,
    responder: &'a mut DynState,
    name: &str,
) -> (&'a mut S, &'a mut S) {
    let i = initiator
        .downcast_mut::<S>()
        .unwrap_or_else(|| panic!("initiator state does not belong to protocol {name}"));
    let r = responder
        .downcast_mut::<S>()
        .unwrap_or_else(|| panic!("responder state does not belong to protocol {name}"));
    (i, r)
}

/// Applies a typed environment hook to a slice of erased states by copying
/// the states out and back.  Only called for protocols that declare the hook
/// via [`Protocol::uses_oracle`] (which every `environment` override must —
/// see its contract), so pure population protocols pay nothing per step.
/// Oracle protocols pay one `Vec` allocation plus `n` clones per step under
/// erasure — a known constant-factor cost of keeping the hook's contiguous
/// `&mut [State]` signature; their states are `O(1)`-sized, and the typed
/// `Simulation` remains available where that overhead matters.
fn environment_via_copy<P>(protocol: &P, states: &mut [DynState])
where
    P: Protocol,
    P::State: Any,
{
    let mut typed: Vec<P::State> = states
        .iter()
        .map(|s| {
            s.downcast_ref::<P::State>()
                .unwrap_or_else(|| panic!("state does not belong to protocol {}", protocol.name()))
                .clone()
        })
        .collect();
    protocol.environment(&mut typed);
    for (slot, value) in states.iter_mut().zip(typed) {
        *slot.downcast_mut::<P::State>().expect("checked above") = value;
    }
}

impl<P> DynLeaderElection for ErasedLe<P>
where
    P: LeaderElection + 'static,
    P::State: Any,
{
    fn interact_dyn(&self, initiator: &mut DynState, responder: &mut DynState) {
        let (i, r) = downcast_pair::<P::State>(initiator, responder, self.0.name());
        self.0.interact(i, r);
    }

    fn environment_dyn(&self, states: &mut [DynState]) {
        if self.0.uses_oracle() {
            environment_via_copy(&self.0, states);
        }
    }

    fn uses_oracle_dyn(&self) -> bool {
        self.0.uses_oracle()
    }

    fn is_leader_dyn(&self, state: &DynState) -> bool {
        state
            .downcast_ref::<P::State>()
            .is_some_and(|s| self.0.is_leader(s))
    }

    fn protocol_name(&self) -> &'static str {
        self.0.name()
    }
}

impl<P> DynLeaderElection for ErasedPlain<P>
where
    P: Protocol + 'static,
    P::State: Any,
{
    fn interact_dyn(&self, initiator: &mut DynState, responder: &mut DynState) {
        let (i, r) = downcast_pair::<P::State>(initiator, responder, self.0.name());
        self.0.interact(i, r);
    }

    fn environment_dyn(&self, states: &mut [DynState]) {
        if self.0.uses_oracle() {
            environment_via_copy(&self.0, states);
        }
    }

    fn uses_oracle_dyn(&self) -> bool {
        self.0.uses_oracle()
    }

    fn is_leader_dyn(&self, _state: &DynState) -> bool {
        false
    }

    fn protocol_name(&self) -> &'static str {
        self.0.name()
    }
}

/// A type-erased protocol: implements [`Protocol`] (and [`LeaderElection`])
/// over [`DynState`], delegating to the erased inner protocol.
///
/// Cloning is cheap (`Arc`).
#[derive(Clone)]
pub struct DynProtocol {
    inner: Arc<dyn DynLeaderElection>,
}

impl DynProtocol {
    /// Erases a leader-election protocol.
    pub fn erase<P>(protocol: P) -> Self
    where
        P: LeaderElection + 'static,
        P::State: Any,
    {
        DynProtocol {
            inner: Arc::new(ErasedLe(protocol)),
        }
    }

    /// Erases a protocol without a leader output ([`LeaderElection::is_leader`]
    /// of the erased protocol is constantly `false`).
    pub fn erase_protocol<P>(protocol: P) -> Self
    where
        P: Protocol + 'static,
        P::State: Any,
    {
        DynProtocol {
            inner: Arc::new(ErasedPlain(protocol)),
        }
    }

    /// Wraps an already-erased implementation.
    pub fn from_dyn(inner: Arc<dyn DynLeaderElection>) -> Self {
        DynProtocol { inner }
    }
}

impl fmt::Debug for DynProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynProtocol")
            .field("name", &self.inner.protocol_name())
            .finish()
    }
}

impl Protocol for DynProtocol {
    type State = DynState;

    /// Conservatively `true`: whether the erased protocol actually has an
    /// oracle is a runtime property, reported by
    /// [`Protocol::uses_oracle`] and cached once per run by the simulation
    /// — pure protocols under erasure still skip the per-step hook.
    const HAS_ENVIRONMENT: bool = true;

    fn interact(&self, initiator: &mut DynState, responder: &mut DynState) {
        self.inner.interact_dyn(initiator, responder);
    }

    fn environment(&self, states: &mut [DynState]) {
        self.inner.environment_dyn(states);
    }

    fn uses_oracle(&self) -> bool {
        self.inner.uses_oracle_dyn()
    }

    fn name(&self) -> &'static str {
        self.inner.protocol_name()
    }
}

impl LeaderElection for DynProtocol {
    fn is_leader(&self, state: &DynState) -> bool {
        self.inner.is_leader_dyn(state)
    }
}

// ---------------------------------------------------------------------------
// Graph families
// ---------------------------------------------------------------------------

/// A family of interaction graphs, instantiated per population size.
///
/// The generated families (torus, small-world, preferential-attachment,
/// random-regular) are pure functions of `(their parameters, n)`: the
/// randomized ones derive a dedicated RNG via
/// [`crate::graph::graph_rng_seed`], so instantiation is bit-identical at any
/// thread count and in any evaluation order.
#[derive(Clone)]
pub enum GraphFamily {
    /// The paper's directed ring (the default).
    DirectedRing,
    /// The undirected ring of Section 5.
    UndirectedRing,
    /// The complete interaction graph.
    Complete,
    /// A 2-D wrapped grid dimensioned by [`crate::graph::torus_dims`]
    /// (deterministic, no seed).
    Torus,
    /// A Watts–Strogatz small-world graph (see [`crate::graph::small_world`]).
    SmallWorld {
        /// Nearest-neighbour links per agent on the ring lattice (`k/2` per
        /// side).
        k: u16,
        /// Rewiring probability in thousandths (0..=1000).
        rewire_per_mille: u16,
        /// Family seed; the per-size RNG stream is derived from it.
        seed: u64,
    },
    /// A Barabási–Albert preferential-attachment graph (see
    /// [`crate::graph::preferential_attachment`]).
    PreferentialAttachment {
        /// Edges attached per new agent.
        m: u16,
        /// Family seed; the per-size RNG stream is derived from it.
        seed: u64,
    },
    /// A random directed `d`-regular graph — a union of random Hamiltonian
    /// cycles, an expander with high probability (see
    /// [`crate::graph::random_regular`]).
    RandomRegular {
        /// Exact out- and in-degree of every agent.
        degree: u16,
        /// Family seed; the per-size RNG stream is derived from it.
        seed: u64,
    },
    /// An arbitrary graph built by a user closure.
    Custom(Arc<dyn Fn(usize) -> Result<ArbitraryGraph> + Send + Sync>),
}

impl GraphFamily {
    /// Builds the concrete graph for a population of `n` agents.
    ///
    /// # Errors
    ///
    /// Propagates the graph constructors' errors (e.g. `n < 2`,
    /// [`PopulationError::SelfLoopArc`] / [`PopulationError::EmptyArcSet`]
    /// from a custom closure), and rejects a [`GraphFamily::Custom`] graph
    /// that is not weakly connected with
    /// [`PopulationError::DisconnectedGraph`] — on a disconnected graph a
    /// global stop predicate can be unreachable, so the run would only ever
    /// end by budget exhaustion.  (The generated families are connected by
    /// construction and skip the check.)
    pub fn build(&self, n: usize) -> Result<AnyGraph> {
        Ok(match self {
            GraphFamily::DirectedRing => AnyGraph::DirectedRing(DirectedRing::new(n)?),
            GraphFamily::UndirectedRing => AnyGraph::UndirectedRing(UndirectedRing::new(n)?),
            GraphFamily::Complete => {
                if n < 2 {
                    return Err(PopulationError::PopulationTooSmall {
                        requested: n,
                        minimum: 2,
                    });
                }
                AnyGraph::Complete(CompleteGraph::new(n))
            }
            GraphFamily::Torus => AnyGraph::Arbitrary(crate::graph::torus(n)?),
            GraphFamily::SmallWorld {
                k,
                rewire_per_mille,
                seed,
            } => AnyGraph::Arbitrary(crate::graph::small_world(
                n,
                usize::from(*k),
                *rewire_per_mille,
                *seed,
            )?),
            GraphFamily::PreferentialAttachment { m, seed } => AnyGraph::Arbitrary(
                crate::graph::preferential_attachment(n, usize::from(*m), *seed)?,
            ),
            GraphFamily::RandomRegular { degree, seed } => AnyGraph::Arbitrary(
                crate::graph::random_regular(n, usize::from(*degree), *seed)?,
            ),
            GraphFamily::Custom(f) => {
                let g = f(n)?;
                let reached = crate::graph::weak_reach(g.num_agents(), &g.arcs());
                if reached != g.num_agents() {
                    return Err(PopulationError::DisconnectedGraph {
                        agents: g.num_agents(),
                        reached,
                    });
                }
                AnyGraph::Arbitrary(g)
            }
        })
    }
}

impl fmt::Debug for GraphFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphFamily::DirectedRing => write!(f, "GraphFamily::DirectedRing"),
            GraphFamily::UndirectedRing => write!(f, "GraphFamily::UndirectedRing"),
            GraphFamily::Complete => write!(f, "GraphFamily::Complete"),
            GraphFamily::Torus => write!(f, "GraphFamily::Torus"),
            GraphFamily::SmallWorld {
                k,
                rewire_per_mille,
                seed,
            } => write!(
                f,
                "GraphFamily::SmallWorld {{ k: {k}, rewire_per_mille: {rewire_per_mille}, \
                 seed: {seed} }}"
            ),
            GraphFamily::PreferentialAttachment { m, seed } => write!(
                f,
                "GraphFamily::PreferentialAttachment {{ m: {m}, seed: {seed} }}"
            ),
            GraphFamily::RandomRegular { degree, seed } => write!(
                f,
                "GraphFamily::RandomRegular {{ degree: {degree}, seed: {seed} }}"
            ),
            GraphFamily::Custom(_) => write!(f, "GraphFamily::Custom(..)"),
        }
    }
}

/// A concrete graph of any supported family; dispatches
/// [`InteractionGraph`] to the wrapped topology, so sampling consumes the
/// RNG exactly like the wrapped graph would.
#[derive(Clone, Debug)]
pub enum AnyGraph {
    /// A directed ring.
    DirectedRing(DirectedRing),
    /// An undirected ring.
    UndirectedRing(UndirectedRing),
    /// A complete graph.
    Complete(CompleteGraph),
    /// An arbitrary arc set.
    Arbitrary(ArbitraryGraph),
}

impl InteractionGraph for AnyGraph {
    fn num_agents(&self) -> usize {
        match self {
            AnyGraph::DirectedRing(g) => g.num_agents(),
            AnyGraph::UndirectedRing(g) => g.num_agents(),
            AnyGraph::Complete(g) => g.num_agents(),
            AnyGraph::Arbitrary(g) => g.num_agents(),
        }
    }

    fn num_arcs(&self) -> usize {
        match self {
            AnyGraph::DirectedRing(g) => g.num_arcs(),
            AnyGraph::UndirectedRing(g) => g.num_arcs(),
            AnyGraph::Complete(g) => g.num_arcs(),
            AnyGraph::Arbitrary(g) => g.num_arcs(),
        }
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        match self {
            AnyGraph::DirectedRing(g) => g.is_arc(initiator, responder),
            AnyGraph::UndirectedRing(g) => g.is_arc(initiator, responder),
            AnyGraph::Complete(g) => g.is_arc(initiator, responder),
            AnyGraph::Arbitrary(g) => g.is_arc(initiator, responder),
        }
    }

    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        match self {
            AnyGraph::DirectedRing(g) => g.sample(rng),
            AnyGraph::UndirectedRing(g) => g.sample(rng),
            AnyGraph::Complete(g) => g.sample(rng),
            AnyGraph::Arbitrary(g) => g.sample(rng),
        }
    }

    fn arcs(&self) -> Vec<Interaction> {
        match self {
            AnyGraph::DirectedRing(g) => g.arcs(),
            AnyGraph::UndirectedRing(g) => g.arcs(),
            AnyGraph::Complete(g) => g.arcs(),
            AnyGraph::Arbitrary(g) => g.arcs(),
        }
    }

    fn describe(&self) -> String {
        match self {
            AnyGraph::DirectedRing(g) => g.describe(),
            AnyGraph::UndirectedRing(g) => g.describe(),
            AnyGraph::Complete(g) => g.describe(),
            AnyGraph::Arbitrary(g) => g.describe(),
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler erasure
// ---------------------------------------------------------------------------

/// The object-safe face of a scheduler on the erased run path.
///
/// Unlike the typed [`Scheduler`] trait (generic over graph and RNG), a
/// `DynScheduler` works on the concrete erased types — [`AnyGraph`],
/// [`DynState`] slices and the simulation's `ChaCha8Rng` — and additionally
/// sees the **current configuration**, which is what lets adversarial
/// schedulers (e.g. a greedy adversary scoring candidate arcs against a
/// protocol potential) pick convergence-hostile interactions.
///
/// Every typed [`Scheduler<AnyGraph>`] is a `DynScheduler` for free through
/// the blanket impl below (it simply ignores the states).
///
/// # Example
///
/// A hand-rolled state-visible scheduler: always interact across the first
/// arc joining two leaders — the fastest-electing schedule for a
/// demote-on-collision protocol (a hostile scheduler would do the
/// opposite) — falling back to a uniform draw, wired into a scenario
/// through [`SchedulerFamily::custom`]:
///
/// ```
/// use population::prelude::*;
/// use rand_chacha::ChaCha8Rng;
///
/// #[derive(Clone, Debug)]
/// struct Fratricide; // every agent starts a leader; leaders demote leaders
/// impl Protocol for Fratricide {
///     type State = bool;
///     fn interact(&self, a: &mut bool, b: &mut bool) {
///         if *a && *b {
///             *b = false;
///         }
///     }
/// }
/// impl LeaderElection for Fratricide {
///     fn is_leader(&self, s: &bool) -> bool {
///         *s
///     }
/// }
///
/// struct LeaderCollider;
/// impl DynScheduler for LeaderCollider {
///     fn schedule(
///         &mut self,
///         graph: &AnyGraph,
///         states: &[DynState],
///         rng: &mut ChaCha8Rng,
///     ) -> population::Result<Interaction> {
///         let is_leader =
///             |i: population::AgentId| states[i.index()].downcast_ref::<bool>() == Some(&true);
///         let collision = graph
///             .arcs()
///             .into_iter()
///             .find(|arc| is_leader(arc.initiator()) && is_leader(arc.responder()));
///         Ok(collision.unwrap_or_else(|| graph.sample(rng)))
///     }
/// }
///
/// let scenario = ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
///     .graph(GraphFamily::Complete)
///     .init(|_p, pt| Configuration::uniform(pt.n, true))
///     .stop_when("unique-leader", |p: &Fratricide, c| {
///         p.has_unique_leader(c.states())
///     })
///     .step_budget(|_pt| 10_000)
///     .scheduler(SchedulerFamily::custom("leader-collider", |_pt, _graph| {
///         Box::new(LeaderCollider)
///     }))
///     .build()
///     .unwrap();
/// assert!(scenario.run(&SweepPoint::new(8, 1)).converged());
/// ```
pub trait DynScheduler: Send {
    /// Returns the interaction for the next step.
    ///
    /// (Named `schedule` rather than `next_interaction` so types
    /// implementing both this and the typed [`Scheduler`] trait — every
    /// `Scheduler<AnyGraph>`, via the blanket impl — keep an unambiguous
    /// method surface.)
    ///
    /// # Errors
    ///
    /// Deterministic schedulers return
    /// [`PopulationError::ScheduleExhausted`] once their sequence runs out;
    /// stochastic schedulers never fail.
    fn schedule(
        &mut self,
        graph: &AnyGraph,
        states: &[DynState],
        rng: &mut ChaCha8Rng,
    ) -> Result<Interaction>;

    /// The scheduler's deterministic phase, if it has one (see
    /// [`Scheduler::phase`]).  Periodic schedulers return their step counter
    /// modulo the period; memoryless schedulers (the default) return `None`.
    fn phase(&self) -> Option<u64> {
        None
    }
}

impl<S: Scheduler<AnyGraph>> DynScheduler for S {
    fn schedule(
        &mut self,
        graph: &AnyGraph,
        _states: &[DynState],
        rng: &mut ChaCha8Rng,
    ) -> Result<Interaction> {
        Scheduler::next_interaction(self, graph, rng)
    }

    fn phase(&self) -> Option<u64> {
        Scheduler::phase(self)
    }
}

/// The builder closure of a custom [`SchedulerFamily`]: produces a fresh
/// boxed scheduler for one run from the sweep point and the concrete graph.
pub type BuildScheduler =
    Arc<dyn Fn(&SweepPoint, &AnyGraph) -> Box<dyn DynScheduler> + Send + Sync>;

/// A family of schedulers, instantiated per sweep point (the scheduler
/// analogue of [`GraphFamily`]).
///
/// [`SchedulerFamily::Random`] — the default — is **not** routed through the
/// [`DynScheduler`] indirection: scenarios keep the exact pre-scheduler hot
/// loop (`graph.sample(rng)` inlined into the run burst), so the uniformly
/// random path stays bit-identical to the historical one (pinned by
/// `scenario_equivalence`).  Custom families build a fresh boxed scheduler
/// for every run from the sweep point and the concrete graph.
#[derive(Clone, Default)]
pub enum SchedulerFamily {
    /// The paper's uniformly random scheduler (the default fast path).
    #[default]
    Random,
    /// A named custom scheduler family.
    Custom {
        /// A short name for reports and `Debug` output.
        name: String,
        /// Builds the scheduler for one run.
        build: BuildScheduler,
    },
}

impl SchedulerFamily {
    /// Creates a named custom family from a builder closure.
    pub fn custom(
        name: impl Into<String>,
        build: impl Fn(&SweepPoint, &AnyGraph) -> Box<dyn DynScheduler> + Send + Sync + 'static,
    ) -> Self {
        SchedulerFamily::Custom {
            name: name.into(),
            build: Arc::new(build),
        }
    }

    /// The family's name (`"random"` for the default).
    pub fn name(&self) -> &str {
        match self {
            SchedulerFamily::Random => "random",
            SchedulerFamily::Custom { name, .. } => name,
        }
    }

    /// `true` for the default uniformly random family.
    pub fn is_random(&self) -> bool {
        matches!(self, SchedulerFamily::Random)
    }
}

impl fmt::Debug for SchedulerFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedulerFamily({:?})", self.name())
    }
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// A fault scheduled at an explicit step of a scenario run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The step (counted from the start of the run) *before* which the fault
    /// fires; step 0 fires before the first interaction and before the
    /// initial stop-criterion check.
    pub at_step: u64,
    /// The corruption to apply.
    pub kind: FaultKind,
}

/// A fault bound to a named scenario *trigger* instead of a fixed step: the
/// event fires the first time the named predicate
/// ([`ScenarioBuilder::trigger`]) holds at a stop-check boundary, making the
/// fault scheduler-coupled ("corrupt the population the moment a unique
/// leader emerges") instead of clock-coupled.  Each triggered fault fires at
/// most once per run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriggeredFault {
    /// The name of the scenario trigger predicate that arms this fault.
    pub trigger: String,
    /// The corruption to apply when the trigger first holds.
    pub kind: FaultKind,
}

/// A bounded window of Byzantine behaviour: between `from_step` (inclusive)
/// and `until_step` (exclusive), every interaction touching an agent of the
/// window's set has that agent's post-interaction state adversarially
/// rewritten by the scenario's [`ScenarioBuilder::byzantine`] function.
///
/// The rewrite draws from a dedicated RNG stream (derived from the fault
/// seed), so the scheduler and corruption streams of the underlying run are
/// untouched; an **inert** window (empty agent set or an empty step range)
/// is dropped when attached ([`FaultPlan::with_byzantine`]), so zero-Byzantine
/// plans are *statically* the plain code path, not just behaviourally close
/// to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByzantineWindow {
    agents: Vec<usize>,
    from_step: u64,
    until_step: u64,
}

impl ByzantineWindow {
    /// Creates a window over `agents` (deduplicated, order-independent)
    /// active on steps `from_step..until_step`.
    pub fn new(agents: impl IntoIterator<Item = usize>, from_step: u64, until_step: u64) -> Self {
        let mut agents: Vec<usize> = agents.into_iter().collect();
        agents.sort_unstable();
        agents.dedup();
        ByzantineWindow {
            agents,
            from_step,
            until_step,
        }
    }

    /// The Byzantine agent indices, sorted and deduplicated.
    pub fn agents(&self) -> &[usize] {
        &self.agents
    }

    /// First step (inclusive) of the window.
    pub fn from_step(&self) -> u64 {
        self.from_step
    }

    /// First step (exclusive) after the window.
    pub fn until_step(&self) -> u64 {
        self.until_step
    }

    /// `true` if the window can never rewrite anything: no agents, or an
    /// empty step range.
    pub fn is_inert(&self) -> bool {
        self.agents.is_empty() || self.from_step >= self.until_step
    }

    /// `true` if `agent` is in the window's set.
    pub fn contains(&self, agent: usize) -> bool {
        self.agents.binary_search(&agent).is_ok()
    }
}

/// A declarative schedule of hostile behaviour injected during a scenario
/// run: transient faults at explicit steps ([`FaultPlan::at`]), faults
/// coupled to scenario predicates ([`FaultPlan::when`]), and a bounded
/// Byzantine window ([`FaultPlan::with_byzantine`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    triggered: Vec<TriggeredFault>,
    byzantine: Option<ByzantineWindow>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` to fire at `at_step` (builder-style; events are kept
    /// sorted by step).
    ///
    /// # Panics
    ///
    /// Panics on a zero-extent kind (`count == 0` / `limit == 0`) — a no-op
    /// fault in a plan is always a bug.  Use [`FaultPlan::try_at`] to handle
    /// it as a typed error instead.
    pub fn at(self, at_step: u64, kind: FaultKind) -> Self {
        self.try_at(at_step, kind).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`FaultPlan::at`].
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::DegenerateFault`] if `kind` has extent
    /// zero ([`FaultKind::extent`]): such an event can never corrupt
    /// anything, so scheduling one is always a bug, not a boundary case.
    pub fn try_at(mut self, at_step: u64, kind: FaultKind) -> Result<Self> {
        if kind.extent() == Some(0) {
            return Err(PopulationError::DegenerateFault {
                at: format!("step {at_step}"),
            });
        }
        self.events.push(FaultEvent { at_step, kind });
        self.events.sort_by_key(|e| e.at_step);
        Ok(self)
    }

    /// Schedules `kind` to fire the first time the named scenario trigger
    /// ([`ScenarioBuilder::trigger`]) holds at a stop-check boundary.
    ///
    /// # Panics
    ///
    /// Panics on a zero-extent kind, exactly like [`FaultPlan::at`]; use
    /// [`FaultPlan::try_when`] for the typed error.
    pub fn when(self, trigger: impl Into<String>, kind: FaultKind) -> Self {
        self.try_when(trigger, kind)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`FaultPlan::when`].
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::DegenerateFault`] if `kind` has extent
    /// zero (see [`FaultPlan::try_at`]).
    pub fn try_when(mut self, trigger: impl Into<String>, kind: FaultKind) -> Result<Self> {
        let trigger = trigger.into();
        if kind.extent() == Some(0) {
            return Err(PopulationError::DegenerateFault {
                at: format!("trigger {trigger:?}"),
            });
        }
        self.triggered.push(TriggeredFault { trigger, kind });
        Ok(self)
    }

    /// Attaches a Byzantine window.  An inert window (no agents or an empty
    /// step range) is dropped on the spot — the plan stays on the plain code
    /// path, which is what pins zero-Byzantine runs bit-identical to
    /// Byzantine-free ones.
    pub fn with_byzantine(mut self, window: ByzantineWindow) -> Self {
        self.byzantine = if window.is_inert() {
            None
        } else {
            Some(window)
        };
        self
    }

    /// The step-scheduled events, sorted by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The trigger-coupled events, in attachment order.
    pub fn triggered(&self) -> &[TriggeredFault] {
        &self.triggered
    }

    /// The Byzantine window, if an active (non-inert) one is attached.
    pub fn byzantine(&self) -> Option<&ByzantineWindow> {
        self.byzantine.as_ref()
    }

    /// Returns `true` if the plan schedules nothing at all: no step events,
    /// no triggered events, no Byzantine window.  Empty plans keep the
    /// fault-free fast path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.triggered.is_empty() && self.byzantine.is_none()
    }

    /// Number of scheduled fault events (step-scheduled plus triggered; the
    /// Byzantine window is not an event).
    pub fn len(&self) -> usize {
        self.events.len() + self.triggered.len()
    }
}

// ---------------------------------------------------------------------------
// Churn plans
// ---------------------------------------------------------------------------

/// One kind of mid-run topology change.  The churn analogue of
/// [`FaultKind`]: faults corrupt *states*, churn rewrites the *graph* (and,
/// for join/leave, the population itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// Replaces `count` uniformly chosen arcs with fresh uniformly chosen
    /// non-duplicate, non-self-loop arcs (bounded rejection per replacement).
    /// The graph drops to its explicit arc-list representation, so the
    /// scheduler stream after the event differs from the pristine family's —
    /// deterministically, from the dedicated churn RNG.
    Rewire {
        /// How many arcs to replace.
        count: u32,
    },
    /// Keeps only the arcs internal to one of `blocks` contiguous index
    /// blocks (block `i` is `i*ceil(n/blocks)..(i+1)*ceil(n/blocks)`),
    /// forming a network partition.  The partitioned graph is intentionally
    /// disconnected; stop predicates over the whole population may be
    /// unreachable until a [`ChurnKind::Heal`] fires.  If no arc survives
    /// (every arc crosses a block boundary) the run aborts with
    /// [`PopulationError::EmptyArcSet`].
    Partition {
        /// Number of contiguous blocks (at least 2).
        blocks: u32,
    },
    /// Rebuilds the scenario's pristine [`GraphFamily`] graph at the current
    /// population size, healing any partition and discarding any rewires.
    Heal,
    /// Grows the population by `count` agents: the new agents' states are
    /// produced by the scenario's corruption function (they join in
    /// *arbitrary* states — the self-stabilization-honest choice) and the
    /// family graph is rebuilt at the new size.
    Join {
        /// How many agents join.
        count: u32,
    },
    /// Shrinks the population by `count` agents (the highest indices leave;
    /// their slots are compacted away) and rebuilds the family graph at the
    /// new size.  A leave that would drop the population below 2 aborts the
    /// run with [`PopulationError::PopulationTooSmall`].
    Leave {
        /// How many agents leave.
        count: u32,
    },
}

impl ChurnKind {
    /// The number of things the event changes, when that is statically
    /// knowable: arcs for [`ChurnKind::Rewire`], agents for
    /// [`ChurnKind::Join`] / [`ChurnKind::Leave`], blocks for
    /// [`ChurnKind::Partition`].  [`ChurnKind::Heal`] returns `None` (its
    /// extent depends on what happened before it).
    pub fn extent(self) -> Option<u64> {
        match self {
            ChurnKind::Rewire { count }
            | ChurnKind::Join { count }
            | ChurnKind::Leave { count } => Some(u64::from(count)),
            // A 0- or 1-block "partition" keeps the graph intact, so its
            // effective extent is how far it is beyond one block.
            ChurnKind::Partition { blocks } => Some(u64::from(blocks.saturating_sub(1))),
            ChurnKind::Heal => None,
        }
    }
}

/// A topology change scheduled at an explicit step of a scenario run; the
/// churn analogue of [`FaultEvent`] (same step semantics: the event fires
/// *before* the step it names, and step 0 fires before the first interaction
/// and the initial stop check).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The step before which the change applies.
    pub at_step: u64,
    /// The topology change to apply.
    pub kind: ChurnKind,
}

/// A declarative schedule of mid-run topology changes, attached to a
/// scenario with [`ScenarioBuilder::churn`] or post-build with
/// [`Scenario::with_churn_plan`].  An empty plan keeps the exact fault-free
/// fast path (pinned bit-identical by `scenario_equivalence`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        ChurnPlan::default()
    }

    /// Schedules `kind` to fire at `at_step` (builder-style; events are kept
    /// sorted by step).
    ///
    /// # Panics
    ///
    /// Panics on a zero-extent kind (`count == 0`, or a partition into fewer
    /// than two blocks) — a no-op churn event in a plan is always a bug.
    /// Use [`ChurnPlan::try_at`] to handle it as a typed error instead.
    pub fn at(self, at_step: u64, kind: ChurnKind) -> Self {
        self.try_at(at_step, kind).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`ChurnPlan::at`].
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::DegenerateChurn`] if `kind` has extent
    /// zero ([`ChurnKind::extent`]).
    pub fn try_at(mut self, at_step: u64, kind: ChurnKind) -> Result<Self> {
        if kind.extent() == Some(0) {
            return Err(PopulationError::DegenerateChurn { at: at_step });
        }
        self.events.push(ChurnEvent { at_step, kind });
        self.events.sort_by_key(|e| e.at_step);
        Ok(self)
    }

    /// The scheduled events, sorted by step.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// `true` if the plan schedules nothing.  Empty plans keep the
    /// churn-free fast path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled churn events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if any event grows the population ([`ChurnKind::Join`]), which
    /// requires the scenario's corruption function to mint the joining
    /// agents' states.
    pub fn has_joins(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, ChurnKind::Join { .. }))
    }
}

// ---------------------------------------------------------------------------
// Scenario and builder
// ---------------------------------------------------------------------------

type PointFn<T> = Arc<dyn Fn(&SweepPoint) -> T + Send + Sync>;
/// A stop criterion over erased states.  `FnMut` so the closure can reuse an
/// internal typed scratch configuration across checks instead of cloning the
/// whole population into a fresh allocation every time — cheap enough that
/// scenarios can shrink their `check_interval` without a quadratic penalty.
pub type DynStop = Box<dyn FnMut(&[DynState]) -> bool>;
type DynCorrupt = Box<dyn FnMut(&mut ChaCha8Rng, usize) -> DynState>;
/// An erased per-agent target predicate ([`ScenarioBuilder::fault_targets`]):
/// `(state, agent_index) -> is_target`, consumed by
/// [`FaultKind::CorruptTargets`].
type DynTargets = Box<dyn FnMut(&DynState, usize) -> bool>;
/// An erased Byzantine rewrite ([`ScenarioBuilder::byzantine`]): given the
/// dedicated Byzantine RNG, the agent index and its post-interaction state,
/// produce the adversarially rewritten state.
type DynByzantine = Box<dyn FnMut(&mut ChaCha8Rng, usize, &DynState) -> DynState>;

/// Everything the erased run path needs for one sweep point, produced by the
/// typed closure captured at [`ScenarioBuilder::build`] time.
struct PreparedRun {
    protocol: DynProtocol,
    config: Configuration<DynState>,
    stop: DynStop,
    corrupt: Option<DynCorrupt>,
    /// A second, independent instance of the corruption closure, consumed by
    /// the churn schedule to mint joining agents' states (`corrupt` itself is
    /// moved into the fault schedule).
    churn_corrupt: Option<DynCorrupt>,
    targets: Option<DynTargets>,
    byzantine: Option<DynByzantine>,
    triggers: Vec<(String, DynStop)>,
}

/// The erased pieces of one sweep point, exposed without running the
/// scenario: the protocol, the initial configuration and the stop predicate
/// exactly as the run loop would see them.  Produced by
/// [`Scenario::prepare`]; consumed by the exhaustive explorer and the
/// livelock certifier ([`mod@crate::explore`]).
pub struct PreparedScenario {
    /// The erased protocol.
    pub protocol: DynProtocol,
    /// The initial configuration (after the scenario's `init`).
    pub config: Configuration<DynState>,
    /// The erased stop predicate.
    pub stop: DynStop,
}

impl fmt::Debug for PreparedScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedScenario")
            .field("protocol", &self.protocol)
            .field("agents", &self.config.len())
            .finish()
    }
}

/// The result of [`Scenario::run_full`]: the convergence report plus the
/// finished simulation for post-run inspection.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The convergence report of the run.
    pub report: ConvergenceReport,
    /// The simulation in its final state (erased; downcast the configuration
    /// with [`downcast_config`] for typed inspection).
    pub sim: Simulation<DynProtocol, AnyGraph>,
}

/// A runnable, fully type-erased experiment: protocol × graph × initial
/// condition × optional fault plan × stop criterion × step budget.
///
/// Built with [`ScenarioBuilder`]; run on a single [`SweepPoint`] with
/// [`Scenario::run`] or over a [`SweepGrid`] with [`Scenario::sweep`] /
/// [`Scenario::sweep_summaries`].
#[derive(Clone)]
pub struct Scenario {
    name: String,
    stop_name: String,
    graph: GraphFamily,
    scheduler: SchedulerFamily,
    prepare: Arc<dyn Fn(&SweepPoint) -> PreparedRun + Send + Sync>,
    plan: Option<PointFn<FaultPlan>>,
    churn: Option<PointFn<ChurnPlan>>,
    initial: Option<Arc<Configuration<DynState>>>,
    check_interval: PointFn<u64>,
    max_steps: PointFn<u64>,
    sim_seed: PointFn<u64>,
    fault_seed: PointFn<u64>,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("stop", &self.stop_name)
            .field("graph", &self.graph)
            .field("scheduler", &self.scheduler.name())
            .field("has_fault_plan", &self.plan.is_some())
            .field("has_churn_plan", &self.churn.is_some())
            .field("has_initial", &self.initial.is_some())
            .finish()
    }
}

impl Scenario {
    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stop criterion's name (the `criterion` field of produced reports).
    pub fn stop_name(&self) -> &str {
        &self.stop_name
    }

    /// The scheduler family driving this scenario's runs.
    pub fn scheduler(&self) -> &SchedulerFamily {
        &self.scheduler
    }

    /// The graph family this scenario instantiates at every sweep point —
    /// certification needs it to rebuild the exact arc list (same order as
    /// the running scheduler saw) outside the run loop.
    pub fn graph_family(&self) -> &GraphFamily {
        &self.graph
    }

    /// Returns this scenario with the scheduler family replaced — the hook
    /// the worst-case search uses to re-run one experiment definition under
    /// many adversarial schedulers without rebuilding the whole scenario.
    pub fn with_scheduler(mut self, scheduler: SchedulerFamily) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns this scenario with the fault plan replaced by a fixed `plan`
    /// (the same plan at every sweep point) — the fault-axis sibling of
    /// [`Scenario::with_scheduler`], used by the worst-case search to replay
    /// crash-schedule certificates through one experiment definition.
    ///
    /// The scenario must be fault-ready: its builder must have set a
    /// corruption function ([`ScenarioBuilder::corruption`] or
    /// [`ScenarioBuilder::faults`]), otherwise running with a non-empty plan
    /// reports [`PopulationError::MissingCorruption`] through the fallible
    /// run methods (and the infallible ones panic with that error).  An
    /// empty `plan` restores the fault-free fast path exactly.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(Arc::new(move |_pt| plan.clone()));
        self
    }

    /// Returns this scenario with the churn plan replaced by a fixed `plan`
    /// (the same plan at every sweep point) — the topology-axis sibling of
    /// [`Scenario::with_fault_plan`], used to replay churn-schedule
    /// certificates through one experiment definition.
    ///
    /// Plans containing [`ChurnKind::Join`] events need the scenario to be
    /// fault-ready (a corruption function mints the joining agents' states);
    /// otherwise the fallible run methods report
    /// [`PopulationError::MissingCorruption`].  An empty `plan` restores the
    /// churn-free fast path exactly.
    pub fn with_churn_plan(mut self, plan: ChurnPlan) -> Self {
        self.churn = Some(Arc::new(move |_pt| plan.clone()));
        self
    }

    /// Returns this scenario with the interaction-graph family replaced —
    /// the static half of the topology axis (the dynamic half is
    /// [`Scenario::with_churn_plan`]), used to replay worst cases found on
    /// a generated family through one experiment definition.
    pub fn with_graph(mut self, graph: GraphFamily) -> Self {
        self.graph = graph;
        self
    }

    /// Replaces the prepared initial configuration with a fixed erased
    /// configuration, the same at every sweep point — the hook the recovery
    /// benchmark uses to restart runs from a previously converged *safe*
    /// configuration (captured via [`ScenarioRun::sim`]) instead of the
    /// scenario's own `init`.
    ///
    /// The override's length must match the sweep point's population size;
    /// otherwise the fallible run methods report
    /// [`PopulationError::ConfigurationSizeMismatch`] (and the infallible
    /// ones panic with it).
    pub fn with_initial(mut self, config: Configuration<DynState>) -> Self {
        self.initial = Some(Arc::new(config));
        self
    }

    /// Instantiates the churn plan for a point, rejecting the one
    /// combination the churn machinery does not support: a non-empty churn
    /// plan alongside an active Byzantine window (the window's agent set and
    /// rewrite scratch assume a fixed population).
    fn churn_plan_checked(&self, point: &SweepPoint, plan: &FaultPlan) -> Result<ChurnPlan> {
        let churn = self.churn.as_ref().map(|f| f(point)).unwrap_or_default();
        if !churn.is_empty() && plan.byzantine().is_some() {
            return Err(PopulationError::ChurnUnsupported {
                reason: "a Byzantine window",
            });
        }
        Ok(churn)
    }

    /// Prepares a point and applies the [`Scenario::with_initial`] override.
    fn prepared_run(&self, point: &SweepPoint) -> Result<PreparedRun> {
        let mut prepared = (self.prepare)(point);
        if let Some(initial) = &self.initial {
            if initial.len() != prepared.config.len() {
                return Err(PopulationError::ConfigurationSizeMismatch {
                    configuration: initial.len(),
                    graph: prepared.config.len(),
                });
            }
            prepared.config = (**initial).clone();
        }
        Ok(prepared)
    }

    /// Runs the scenario at one sweep point and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the graph family cannot be built for `point.n` (e.g.
    /// `n < 2`), if a non-empty fault plan is set without a corruption
    /// function, or if a deterministic custom scheduler exhausts mid-run
    /// (use [`Scenario::try_run`] to handle these as typed errors).
    pub fn run(&self, point: &SweepPoint) -> ConvergenceReport {
        self.run_full(point).report
    }

    /// Like [`Scenario::run`] but also returns the finished simulation for
    /// post-run inspection (leader counts, final states, statistics).
    ///
    /// # Panics
    ///
    /// See [`Scenario::run`].
    pub fn run_full(&self, point: &SweepPoint) -> ScenarioRun {
        self.try_run_full(point)
            .unwrap_or_else(|e| panic!("scenario {:?}: {e}", self.name))
    }

    /// Fallible variant of [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors and scheduler errors — in
    /// particular [`PopulationError::ScheduleExhausted`] when a
    /// deterministic custom scheduler runs out of interactions before the
    /// stop criterion holds or the budget is spent — and reports
    /// [`PopulationError::MissingCorruption`] when a non-empty fault plan is
    /// set without a corruption function.
    pub fn try_run(&self, point: &SweepPoint) -> Result<ConvergenceReport> {
        Ok(self.try_run_full(point)?.report)
    }

    /// Fallible variant of [`Scenario::run_full`].
    ///
    /// # Errors
    ///
    /// See [`Scenario::try_run`].
    pub fn try_run_full(&self, point: &SweepPoint) -> Result<ScenarioRun> {
        let prepared = self.prepared_run(point)?;
        let graph = self.graph.build(point.n)?;
        let sim_seed = (self.sim_seed)(point);
        let _scope = ssle_telemetry::run_scope(&self.name, point.n as u64, sim_seed);
        telemetry_run_start();
        let mut sim = Simulation::new(prepared.protocol, graph, prepared.config, sim_seed);
        let check_interval = (self.check_interval)(point).max(1);
        let max_steps = (self.max_steps)(point);
        let plan = self.plan.as_ref().map(|f| f(point)).unwrap_or_default();
        let churn_plan = self.churn_plan_checked(point, &plan)?;

        let mut stop = prepared.stop;
        let mut report = match &self.scheduler {
            // The default fast path: identical to the pre-scheduler code,
            // no per-step indirection (pinned by `scenario_equivalence`).
            SchedulerFamily::Random => {
                if plan.is_empty() && churn_plan.is_empty() {
                    sim.run_until(|_p, c| stop(c.states()), check_interval, max_steps)
                } else {
                    let mut faults = FaultSchedule::new(
                        plan,
                        prepared.corrupt,
                        prepared.targets,
                        prepared.byzantine,
                        prepared.triggers,
                        (self.fault_seed)(point),
                    )?;
                    let mut churn = ChurnSchedule::new(
                        churn_plan,
                        self.graph.clone(),
                        prepared.churn_corrupt,
                        (self.fault_seed)(point),
                    )?;
                    run_with_faults(
                        &mut sim,
                        &mut stop,
                        check_interval,
                        max_steps,
                        &mut faults,
                        &mut churn,
                    )?
                }
            }
            SchedulerFamily::Custom { build, .. } => {
                let mut scheduler = build(point, sim.graph());
                let mut faults = FaultSchedule::new(
                    plan,
                    prepared.corrupt,
                    prepared.targets,
                    prepared.byzantine,
                    prepared.triggers,
                    (self.fault_seed)(point),
                )?;
                let mut churn = ChurnSchedule::new(
                    churn_plan,
                    self.graph.clone(),
                    prepared.churn_corrupt,
                    (self.fault_seed)(point),
                )?;
                run_scheduled(
                    &mut sim,
                    &mut *scheduler,
                    &mut stop,
                    check_interval,
                    max_steps,
                    &mut faults,
                    &mut churn,
                )?
            }
        };
        report.criterion = std::borrow::Cow::Owned(self.stop_name.clone());
        telemetry_run_end(report.steps_executed, report.converged_at.is_some());
        Ok(ScenarioRun { report, sim })
    }

    /// Runs every point of the grid in parallel and returns per-point
    /// outcomes in grid order.
    pub fn sweep(&self, grid: &SweepGrid, runner: &BatchRunner) -> Vec<Outcome<SweepPoint>> {
        runner.run_points(&grid.points(), |pt| self.run(pt))
    }

    /// Runs every point of the grid in parallel and groups the outcomes per
    /// population size (the shape the analysis layer consumes).
    ///
    /// # Panics
    ///
    /// Panics if the grid has value axes: grouping by size alone would
    /// silently average outcomes across different experimental conditions.
    /// Use [`Scenario::sweep`] and group by the axis values yourself (as the
    /// `fig_kappa` binary does for its `c1` axis).
    pub fn sweep_summaries(&self, grid: &SweepGrid, runner: &BatchRunner) -> Vec<BatchSummary> {
        group_by_size(
            self.sweep(grid, runner)
                .into_iter()
                .map(|o| {
                    assert!(
                        o.point.values().is_empty(),
                        "sweep_summaries would conflate the value axes {:?}; \
                         use Scenario::sweep and group by axis value instead",
                        o.point.values().iter().map(|(k, _)| k).collect::<Vec<_>>()
                    );
                    TrialOutcome {
                        trial: o.point.trial(),
                        report: o.report,
                    }
                })
                .collect(),
        )
    }

    /// Leader-count trajectory of one run, sampled every `sample_every`
    /// steps (including step 0).  Uses the erased leader output, so it works
    /// for every leader-election scenario; the scenario's fault plan (if any)
    /// fires at its scheduled steps exactly as it does under
    /// [`Scenario::run`] — trigger predicates are evaluated at this method's
    /// burst boundaries (sample boundaries and after step events), which may
    /// differ from the run loop's stop-check boundaries — and the scenario's
    /// scheduler family drives the steps exactly as it does there too.
    ///
    /// For pure protocols the leader count is maintained incrementally by a
    /// [`LeaderCounter`] observer (O(1) amortized per step, re-seeded only
    /// when a fault rewrites states out-of-band); oracle protocols recount
    /// at each sample boundary.
    ///
    /// # Panics
    ///
    /// Panics on graph or scheduler errors; use
    /// [`Scenario::try_leader_trajectory`] to handle e.g. deterministic
    /// scheduler exhaustion as a typed error.
    pub fn leader_trajectory(
        &self,
        point: &SweepPoint,
        total_steps: u64,
        sample_every: u64,
    ) -> Vec<(u64, usize)> {
        self.try_leader_trajectory(point, total_steps, sample_every)
            .unwrap_or_else(|e| panic!("scenario {:?}: {e}", self.name))
    }

    /// Fallible variant of [`Scenario::leader_trajectory`].
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors and scheduler errors (see
    /// [`Scenario::try_run`]).
    pub fn try_leader_trajectory(
        &self,
        point: &SweepPoint,
        total_steps: u64,
        sample_every: u64,
    ) -> Result<Vec<(u64, usize)>> {
        let prepared = self.prepared_run(point)?;
        let graph = self.graph.build(point.n)?;
        let sim_seed = (self.sim_seed)(point);
        let _scope = ssle_telemetry::run_scope(&self.name, point.n as u64, sim_seed);
        telemetry_run_start();
        let mut sim = Simulation::new(prepared.protocol, graph, prepared.config, sim_seed);
        let mut scheduler = match &self.scheduler {
            SchedulerFamily::Random => None,
            SchedulerFamily::Custom { build, .. } => Some(build(point, sim.graph())),
        };
        let plan = self.plan.as_ref().map(|f| f(point)).unwrap_or_default();
        let churn_plan = self.churn_plan_checked(point, &plan)?;
        let mut faults = FaultSchedule::new(
            plan,
            prepared.corrupt,
            prepared.targets,
            prepared.byzantine,
            prepared.triggers,
            (self.fault_seed)(point),
        )?;
        let mut churn = ChurnSchedule::new(
            churn_plan,
            self.graph.clone(),
            prepared.churn_corrupt,
            (self.fault_seed)(point),
        )?;
        let sample_every = sample_every.max(1);
        let incremental = !sim.environment_active();
        churn.fire_due(0, &mut sim)?;
        faults.fire_due(0, &mut sim);
        faults.fire_triggered(&mut sim);
        let mut counter = LeaderCounter::new(sim.protocol(), sim.config().states());
        let mut out = vec![(0u64, counter.count())];
        let mut done = 0u64;
        while done < total_steps {
            // The next sample boundary, split early if a fault or churn
            // event is due first or a Byzantine window opens or closes
            // mid-burst.
            let boundary = ((done / sample_every + 1) * sample_every).min(total_steps);
            let target = churn.clip(done, faults.clip(done, boundary));
            let in_window = faults.byzantine_active(done);
            // Byzantine rewrites mutate states *after* the observer hooks
            // ran, which would silently desynchronize an incremental
            // counter mid-segment; window segments therefore run
            // unobserved and the counter is resynced at the boundary
            // (the only place it is read).
            match scheduler.as_deref_mut() {
                None if in_window => {
                    for _ in done..target {
                        faults.byzantine_step(&mut sim, None, &mut NoObserver)?;
                    }
                }
                // The random fast path: burst without per-step indirection.
                None if incremental => sim.run_steps_observed(target - done, &mut counter),
                None => sim.run_steps(target - done),
                Some(sched) => {
                    for _ in done..target {
                        if in_window {
                            faults.byzantine_step(&mut sim, Some(&mut *sched), &mut NoObserver)?;
                        } else if incremental {
                            sim.step_chosen_by_observed(&mut counter, |g, c, rng| {
                                sched.schedule(g, c.states(), rng)
                            })?;
                        } else {
                            sim.step_chosen_by(|g, c, rng| sched.schedule(g, c.states(), rng))?;
                        }
                    }
                }
            }
            done = target;
            let churned = churn.fire_due(done, &mut sim)?;
            let fired = faults.fire_due(done, &mut sim);
            let fired = faults.fire_triggered(&mut sim) || fired;
            if (fired || churned || in_window) && incremental {
                counter.resync(sim.protocol(), sim.config().states());
            }
            if done.is_multiple_of(sample_every) || done == total_steps {
                let leaders = if incremental {
                    counter.count()
                } else {
                    sim.count_leaders()
                };
                out.push((done, leaders));
            }
        }
        // A trajectory run has no stop predicate, so it never "converges".
        telemetry_run_end(done, false);
        Ok(out)
    }

    /// Prepares the erased pieces for one sweep point without running: the
    /// protocol, the initial configuration and the stop predicate, exactly
    /// as the run loop would see them.  This is the entry point for the
    /// exhaustive explorer and the livelock certifier, which need the run
    /// loop's inputs without its scheduler.
    pub fn prepare(&self, point: &SweepPoint) -> PreparedScenario {
        let PreparedRun {
            protocol,
            config,
            stop,
            ..
        } = self
            .prepared_run(point)
            .unwrap_or_else(|e| panic!("scenario {:?}: {e}", self.name));
        PreparedScenario {
            protocol,
            config,
            stop,
        }
    }

    /// Exhaustively explores the reachable configuration space at one sweep
    /// point (see [`crate::explore::explore`]): verifies stabilization,
    /// extracts the exact worst-case stabilization time, or produces a
    /// counterexample trace.  Intended for small populations (n ≤ ~8) whose
    /// reachable space fits within `limits`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors, and returns
    /// [`PopulationError::OracleUnsupported`] for protocols with an
    /// environment hook (the explorer models interactions only, so an
    /// oracle's out-of-band mutations would make its verdict unsound).
    pub fn explore(
        &self,
        point: &SweepPoint,
        limits: &crate::explore::ExploreLimits,
    ) -> Result<crate::explore::Explored> {
        let mut prepared = self.prepare(point);
        if prepared.protocol.uses_oracle() {
            return Err(PopulationError::OracleUnsupported {
                operation: "Scenario::explore",
            });
        }
        let graph = self.graph.build(point.n)?;
        Ok(crate::explore::explore(
            &prepared.protocol,
            &graph.arcs(),
            &prepared.config,
            &mut prepared.stop,
            limits,
        ))
    }

    /// Runs the scenario at one sweep point with configuration-recurrence
    /// detection attached to the step loop (see [`crate::recurrence`]).
    ///
    /// The run has exactly the semantics of [`Scenario::try_run_full`] — the
    /// same scheduler choices, RNG stream, fault events and stop-check
    /// boundaries — except that every step additionally feeds an incremental
    /// configuration digest into a Brent-schedule [`RecurrenceDetector`].
    /// When a configuration provably repeats at the same scheduler
    /// [`DynScheduler::phase`], the run aborts early and the confirmed
    /// [`RecurrenceCandidate`] is returned alongside the (unconverged)
    /// report.
    ///
    /// A recurrence alone does not certify a livelock for stochastic
    /// schedulers — the run may simply have revisited a configuration by
    /// chance; pair the candidate with a closure check
    /// ([`crate::explore::phase_closure`]) to certify.  The detector is
    /// disarmed while fault events are still pending (a future fault would
    /// perturb any detected cycle) and reset whenever one fires, so a
    /// candidate always describes the fault-free suffix after the last
    /// fired event; `faults_pending` reports events that remained unfired
    /// when the run ended — scheduled beyond the executed horizon — which
    /// still invalidates any livelock conclusion about the run.
    ///
    /// Detection is active only when the scheduler reports a deterministic
    /// [`DynScheduler::phase`]: memoryless schedulers revisit configurations
    /// by chance at almost every step (any interaction that changes no state
    /// is a period-1 "recurrence"), so a candidate would be meaningless
    /// there.  For protocols with an environment hook the digest cannot be
    /// maintained incrementally, so detection is likewise disabled.  In both
    /// cases `recurrence` is always `None` and the run itself is unaffected.
    ///
    /// # Errors
    ///
    /// See [`Scenario::try_run`].
    pub fn try_run_detecting(&self, point: &SweepPoint) -> Result<DetectedRun> {
        let prepared = self.prepared_run(point)?;
        let graph = self.graph.build(point.n)?;
        let sim_seed = (self.sim_seed)(point);
        let _scope = ssle_telemetry::run_scope(&self.name, point.n as u64, sim_seed);
        telemetry_run_start();
        let mut sim = Simulation::new(prepared.protocol, graph, prepared.config, sim_seed);
        let check_interval = (self.check_interval)(point).max(1);
        let max_steps = (self.max_steps)(point);
        let plan = self.plan.as_ref().map(|f| f(point)).unwrap_or_default();
        let churn_plan = self.churn_plan_checked(point, &plan)?;
        let mut faults = FaultSchedule::new(
            plan,
            prepared.corrupt,
            prepared.targets,
            prepared.byzantine,
            prepared.triggers,
            (self.fault_seed)(point),
        )?;
        let mut churn = ChurnSchedule::new(
            churn_plan,
            self.graph.clone(),
            prepared.churn_corrupt,
            (self.fault_seed)(point),
        )?;
        let mut scheduler: Box<dyn DynScheduler> = match &self.scheduler {
            // The boxed random scheduler consumes the RNG exactly like the
            // inlined fast path (pinned by
            // `explicit_random_scheduler_is_bit_identical_to_the_fast_path`),
            // so detection does not perturb the run it observes.
            SchedulerFamily::Random => Box::new(RandomScheduler::new()),
            SchedulerFamily::Custom { build, .. } => build(point, sim.graph()),
        };
        let mut stop = prepared.stop;
        // Detection needs two preconditions.  The environment hook rewrites
        // states out-of-band inside each step, so the incremental digest is
        // only sound for pure protocols.  And a memoryless scheduler
        // (phase `None`) revisits configurations by chance constantly —
        // every interaction that happens not to change any state is a
        // period-1 "recurrence" — so detection is only meaningful for
        // schedulers with a deterministic phase.
        let detecting = !sim.environment_active() && scheduler.phase().is_some();
        let stop_name = &self.stop_name;
        let make_report = |converged_at: Option<u64>, steps_executed: u64| ConvergenceReport {
            converged_at,
            steps_executed,
            max_steps,
            check_interval,
            criterion: std::borrow::Cow::Owned(stop_name.clone()),
        };

        churn.fire_due(0, &mut sim)?;
        faults.fire_due(0, &mut sim);
        faults.fire_triggered(&mut sim);
        let mut digest = ConfigDigest::new(sim.config().states());
        let mut detector = RecurrenceDetector::new();
        if stop(sim.config().states()) {
            let faults_pending = faults.pending() || churn.pending();
            telemetry_run_end(0, true);
            return Ok(DetectedRun {
                report: make_report(Some(sim.steps()), 0),
                recurrence: None,
                faults_pending,
                sim,
            });
        }
        let mut executed = 0u64;
        let mut recurrence = None;
        'run: while executed < max_steps {
            let next_check = ((executed / check_interval) + 1) * check_interval;
            let target = churn.clip(executed, faults.clip(executed, next_check.min(max_steps)));
            // A recurrence confirmed while fault events are still pending
            // proves nothing — a future fault would perturb the cycle — so
            // the detector stays disarmed until the schedule is exhausted
            // and only the fault-free suffix is ever searched.  Pending
            // status covers unfired triggered events and an unelapsed
            // Byzantine window too (both could still perturb a cycle), and
            // is segment-constant: `clip` ends every segment at the next
            // fault step or window edge, and events fire only between
            // segments.
            let armed = detecting && !faults.pending() && !churn.pending();
            let in_window = faults.byzantine_active(executed);
            for _ in executed..target {
                if in_window {
                    // The digest goes stale across adversarial rewrites, but
                    // the window keeps the detector disarmed; the digest is
                    // resynced when the window elapses (`fire_due` reports
                    // the edge as a fired event).
                    if detecting {
                        faults.byzantine_step(&mut sim, Some(&mut *scheduler), &mut digest)?;
                    } else {
                        faults.byzantine_step(&mut sim, Some(&mut *scheduler), &mut NoObserver)?;
                    }
                } else if detecting {
                    sim.step_chosen_by_observed(&mut digest, |g, c, rng| {
                        scheduler.schedule(g, c.states(), rng)
                    })?;
                    if armed {
                        if let Some(candidate) = detector.observe(
                            digest.value(),
                            scheduler.phase(),
                            sim.steps(),
                            sim.config(),
                        ) {
                            if stop(sim.config().states()) {
                                // The recurrent configuration satisfies the
                                // stop predicate: the run converged between
                                // two check boundaries (a stable fixed point
                                // "recurs" trivially).  Let the boundary
                                // check report it exactly like the plain run
                                // would.
                                detector.reset();
                            } else {
                                if ssle_telemetry::enabled() {
                                    ssle_telemetry::metrics::well_known::RECURRENCES.incr();
                                    ssle_telemetry::emit(
                                        ssle_telemetry::Event::new("recurrence_candidate")
                                            .count("step", candidate.entry_step)
                                            .count("period", candidate.period),
                                    );
                                }
                                recurrence = Some(candidate);
                                executed = sim.steps();
                                break 'run;
                            }
                        }
                    }
                } else {
                    sim.step_chosen_by(|g, c, rng| scheduler.schedule(g, c.states(), rng))?;
                }
            }
            executed = target;
            let churned = churn.fire_due(executed, &mut sim)?;
            let fired = faults.fire_due(executed, &mut sim);
            let fired = faults.fire_triggered(&mut sim) || fired;
            if (fired || churned) && detecting {
                digest.resync(sim.config().states());
                detector.reset();
            }
            let at_boundary = executed == next_check || executed == max_steps;
            if at_boundary && stop(sim.config().states()) {
                let faults_pending = faults.pending() || churn.pending();
                telemetry_run_end(executed, true);
                return Ok(DetectedRun {
                    report: make_report(Some(sim.steps()), executed),
                    recurrence: None,
                    faults_pending,
                    sim,
                });
            }
        }
        let faults_pending = faults.pending() || churn.pending();
        telemetry_run_end(executed, false);
        Ok(DetectedRun {
            report: make_report(None, executed),
            recurrence,
            faults_pending,
            sim,
        })
    }
}

/// The result of [`Scenario::try_run_detecting`]: the convergence report,
/// the confirmed configuration recurrence (if one fired), and the finished
/// simulation.
#[derive(Debug)]
pub struct DetectedRun {
    /// The convergence report of the run (unconverged whenever a recurrence
    /// aborted it early).
    pub report: ConvergenceReport,
    /// The confirmed recurrence, if one fired before convergence or the
    /// budget.
    pub recurrence: Option<RecurrenceCandidate>,
    /// `true` if fault or churn events were still pending when the run
    /// ended.  A pending event means a future fault (or topology change)
    /// could still break a detected cycle, so certification must be refused.
    pub faults_pending: bool,
    /// The simulation in its final state (erased; downcast the configuration
    /// with [`downcast_config`] for typed inspection).
    pub sim: Simulation<DynProtocol, AnyGraph>,
}

/// Seed salt deriving the dedicated Byzantine RNG stream from the fault
/// seed, so adversarial rewrites never perturb the scheduler or corruption
/// streams of the run they attack.
const BYZANTINE_SEED_SALT: u64 = 0x42595A41_4E54494E; // "BYZANTIN"

/// The pending half of a fault plan during a run: which step events are
/// still due, which triggered events have not fired, the active Byzantine
/// window, and the corruption machinery that fires them.  All erased run
/// loops (convergence, trajectory, detection) share this, so faults fire at
/// identical steps in all of them.
struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Unfired trigger-coupled events, each carrying its trigger name (for
    /// the telemetry event) and its erased predicate (resolved from the
    /// scenario's trigger registry by name at construction).  Drained as
    /// they fire: each fires at most once.
    triggered: Vec<(String, FaultKind, DynStop)>,
    /// The active Byzantine window; cleared once the run passes its end.
    window: Option<ByzantineWindow>,
    rewrite: Option<DynByzantine>,
    byz_rng: ChaCha8Rng,
    targets: Option<DynTargets>,
    driver: Option<(DynCorrupt, FaultInjector)>,
    next: usize,
    /// `true` once the `byzantine_open` telemetry event for the (single)
    /// window has been emitted.
    byz_open_emitted: bool,
}

/// Stable snake_case label of a fault kind for the telemetry stream.
fn fault_kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::CorruptRandomAgents { .. } => "corrupt_random_agents",
        FaultKind::CorruptBlock { .. } => "corrupt_block",
        FaultKind::CorruptAll => "corrupt_all",
        FaultKind::CorruptTargets { .. } => "corrupt_targets",
    }
}

impl FaultSchedule {
    /// # Errors
    ///
    /// Surfaces every way a plan can reference scenario machinery that was
    /// never registered, as typed errors before the run loop starts instead
    /// of a panic deep inside it:
    ///
    /// * [`PopulationError::MissingCorruption`] — step or triggered events
    ///   without a corruption function;
    /// * [`PopulationError::MissingTarget`] — a
    ///   [`FaultKind::CorruptTargets`] event without a target predicate;
    /// * [`PopulationError::MissingByzantine`] — an active window without a
    ///   rewrite function;
    /// * [`PopulationError::UnknownTrigger`] — a triggered event naming a
    ///   trigger the scenario never registered.
    fn new(
        plan: FaultPlan,
        corrupt: Option<DynCorrupt>,
        targets: Option<DynTargets>,
        rewrite: Option<DynByzantine>,
        mut trigger_registry: Vec<(String, DynStop)>,
        fault_seed: u64,
    ) -> Result<Self> {
        let driver = if plan.events().is_empty() && plan.triggered().is_empty() {
            None
        } else {
            let corrupt = corrupt.ok_or(PopulationError::MissingCorruption)?;
            Some((corrupt, FaultInjector::new(fault_seed)))
        };
        let wants_targets = plan
            .events()
            .iter()
            .map(|e| e.kind)
            .chain(plan.triggered().iter().map(|t| t.kind))
            .any(|kind| matches!(kind, FaultKind::CorruptTargets { .. }));
        if wants_targets && targets.is_none() {
            return Err(PopulationError::MissingTarget);
        }
        let window = plan.byzantine().cloned();
        if window.is_some() && rewrite.is_none() {
            return Err(PopulationError::MissingByzantine);
        }
        let mut triggered = Vec::with_capacity(plan.triggered().len());
        for t in plan.triggered() {
            let slot = trigger_registry
                .iter()
                .position(|(name, _)| *name == t.trigger)
                .ok_or_else(|| PopulationError::UnknownTrigger {
                    name: t.trigger.clone(),
                })?;
            // Each registered trigger predicate backs at most one plan
            // event; re-registering under the same name is how a plan would
            // couple two faults to one predicate.
            triggered.push((
                t.trigger.clone(),
                t.kind,
                trigger_registry.swap_remove(slot).1,
            ));
        }
        Ok(FaultSchedule {
            events: plan.events().to_vec(),
            triggered,
            window,
            rewrite,
            byz_rng: ChaCha8Rng::seed_from_u64(fault_seed ^ BYZANTINE_SEED_SALT),
            targets,
            driver,
            next: 0,
            byz_open_emitted: false,
        })
    }

    /// `true` while anything remains that could still perturb the run:
    /// unfired step events, unfired triggered events, or a Byzantine window
    /// that has not elapsed.
    fn pending(&self) -> bool {
        self.next < self.events.len() || !self.triggered.is_empty() || self.window.is_some()
    }

    /// Clips a burst target so the next pending event is not overshot and no
    /// burst straddles a Byzantine window edge (segments are entirely inside
    /// or entirely outside the window; the burst still advances by at least
    /// one step past `done`).
    fn clip(&self, done: u64, target: u64) -> u64 {
        let mut clipped = match self.events.get(self.next) {
            Some(event) => target.min(event.at_step.max(done + 1)),
            None => target,
        };
        if let Some(window) = &self.window {
            if done < window.from_step() {
                clipped = clipped.min(window.from_step().max(done + 1));
            } else if done < window.until_step() {
                clipped = clipped.min(window.until_step());
            }
        }
        clipped
    }

    /// `true` if a segment starting at step `done` runs inside the Byzantine
    /// window.  Only valid for clipped segments ([`FaultSchedule::clip`]
    /// guarantees no segment straddles a window edge).
    fn byzantine_active(&self, done: u64) -> bool {
        self.window
            .as_ref()
            .is_some_and(|w| done >= w.from_step() && done < w.until_step())
    }

    /// Applies one fault kind to the simulation's configuration, routing
    /// targeted kinds through the target predicate.
    fn inject_kind(&mut self, kind: FaultKind, sim: &mut Simulation<DynProtocol, AnyGraph>) {
        let Some((corrupt, injector)) = self.driver.as_mut() else {
            return;
        };
        let corrupted = match kind {
            FaultKind::CorruptTargets { limit } => {
                let is_target = self
                    .targets
                    .as_mut()
                    .expect("validated at FaultSchedule construction");
                injector.inject_targeted(
                    sim.config_mut(),
                    limit,
                    |state, agent| is_target(state, agent),
                    &mut **corrupt,
                )
            }
            kind => injector.inject(sim.config_mut(), kind, &mut **corrupt),
        };
        if ssle_telemetry::enabled() {
            ssle_telemetry::metrics::well_known::FAULTS_FIRED.incr();
            ssle_telemetry::emit(
                ssle_telemetry::Event::new("fault_fired")
                    .count("step", sim.steps())
                    .field("kind", fault_kind_label(kind))
                    .count("corrupted", corrupted.len() as u64),
            );
        }
    }

    /// Fires every step event scheduled at or before step `executed`, and
    /// retires the Byzantine window once `executed` passes its end.  Returns
    /// `true` if anything fired or the window elapsed (states were — or may
    /// have been — rewritten out-of-band, so incremental observers must
    /// re-seed).
    fn fire_due(&mut self, executed: u64, sim: &mut Simulation<DynProtocol, AnyGraph>) -> bool {
        let mut fired = false;
        while self.next < self.events.len() && self.events[self.next].at_step <= executed {
            let kind = self.events[self.next].kind;
            self.next += 1;
            self.inject_kind(kind, sim);
            fired = true;
        }
        if self
            .window
            .as_ref()
            .is_some_and(|w| executed >= w.until_step())
        {
            self.window = None;
            fired = true;
            if ssle_telemetry::enabled() {
                ssle_telemetry::emit(
                    ssle_telemetry::Event::new("byzantine_close").count("step", sim.steps()),
                );
            }
        }
        fired
    }

    /// Evaluates every unfired trigger predicate against the current
    /// configuration and fires the coupled faults for those that hold
    /// (removing them: each triggered event fires at most once).  Called at
    /// burst boundaries — every stop-check/sample boundary and immediately
    /// after any step event — right after [`FaultSchedule::fire_due`] and
    /// *before* the boundary's stop check, so a trigger like "a unique
    /// leader emerged" corrupts the configuration before convergence is
    /// declared.  Returns `true` if anything fired.  A plan without
    /// triggered events returns immediately, and a never-firing predicate
    /// only reads the configuration — neither perturbs the run.
    fn fire_triggered(&mut self, sim: &mut Simulation<DynProtocol, AnyGraph>) -> bool {
        if self.triggered.is_empty() {
            return false;
        }
        let mut fired = false;
        let mut slot = 0;
        while slot < self.triggered.len() {
            if (self.triggered[slot].2)(sim.config().states()) {
                let (name, kind, _) = self.triggered.swap_remove(slot);
                if ssle_telemetry::enabled() {
                    ssle_telemetry::metrics::well_known::TRIGGERS_FIRED.incr();
                    ssle_telemetry::emit(
                        ssle_telemetry::Event::new("trigger_fired")
                            .count("step", sim.steps())
                            .field("trigger", name),
                    );
                }
                self.inject_kind(kind, sim);
                fired = true;
            } else {
                slot += 1;
            }
        }
        fired
    }

    /// Advances one step inside an active Byzantine window: the interaction
    /// executes normally through the observer seam, then each interacting
    /// agent in the window's set has its post-interaction state rewritten by
    /// the adversary (from the dedicated Byzantine RNG stream).  Returns
    /// `true` if a rewrite happened, so incremental observers can re-seed at
    /// the segment boundary.
    fn byzantine_step<O: StepObserver<DynProtocol>>(
        &mut self,
        sim: &mut Simulation<DynProtocol, AnyGraph>,
        scheduler: Option<&mut dyn DynScheduler>,
        observer: &mut O,
    ) -> Result<bool> {
        if !self.byz_open_emitted {
            self.byz_open_emitted = true;
            if ssle_telemetry::enabled() {
                ssle_telemetry::metrics::well_known::BYZANTINE_WINDOWS.incr();
                ssle_telemetry::emit(
                    ssle_telemetry::Event::new("byzantine_open").count("step", sim.steps()),
                );
            }
        }
        let interaction = match scheduler {
            None => sim.step_observed(observer),
            Some(sched) => sim.step_chosen_by_observed(observer, |g, c, rng| {
                sched.schedule(g, c.states(), rng)
            })?,
        };
        let (Some(window), Some(rewrite)) = (&self.window, self.rewrite.as_mut()) else {
            return Ok(false);
        };
        let mut rewrote = false;
        for agent in [
            interaction.initiator().index(),
            interaction.responder().index(),
        ] {
            if window.contains(agent) {
                let state = rewrite(&mut self.byz_rng, agent, &sim.config()[agent]);
                sim.config_mut()[agent] = state;
                rewrote = true;
            }
        }
        Ok(rewrote)
    }
}

/// Seed salt deriving the dedicated churn RNG stream from the fault seed, so
/// topology rewiring never perturbs the scheduler, corruption or Byzantine
/// streams of the run it churns.
const CHURN_SEED_SALT: u64 = 0x4348_5552_4E50_4C4E; // "CHURNPLN"

/// Stable snake_case label of a churn kind for the telemetry stream.
fn churn_kind_label(kind: ChurnKind) -> &'static str {
    match kind {
        ChurnKind::Rewire { .. } => "rewire",
        ChurnKind::Partition { .. } => "partition",
        ChurnKind::Heal => "heal",
        ChurnKind::Join { .. } => "join",
        ChurnKind::Leave { .. } => "leave",
    }
}

/// The pending half of a churn plan during a run: which topology events are
/// still due and the machinery that fires them.  The churn sibling of
/// [`FaultSchedule`]; all erased run loops share it, so topology changes
/// apply at identical steps in all of them.  An empty schedule is inert: it
/// clips nothing, fires nothing, and consumes no RNG.
struct ChurnSchedule {
    events: Vec<ChurnEvent>,
    /// The scenario's pristine graph family: [`ChurnKind::Heal`] rebuilds it
    /// at the current size, join/leave rebuild it at the new size.
    family: GraphFamily,
    /// Mints joining agents' states (the scenario's corruption function).
    corrupt: Option<DynCorrupt>,
    /// Dedicated RNG stream for rewiring choices and joining states.
    rng: ChaCha8Rng,
    next: usize,
    /// `true` between a fired [`ChurnKind::Partition`] and the next
    /// [`ChurnKind::Heal`] (controls the `partition_heal` telemetry event).
    partitioned: bool,
}

impl ChurnSchedule {
    /// # Errors
    ///
    /// Returns [`PopulationError::MissingCorruption`] if the plan contains
    /// [`ChurnKind::Join`] events but the scenario registered no corruption
    /// function — joining agents' states could never be minted.
    fn new(
        plan: ChurnPlan,
        family: GraphFamily,
        corrupt: Option<DynCorrupt>,
        fault_seed: u64,
    ) -> Result<Self> {
        if plan.has_joins() && corrupt.is_none() {
            return Err(PopulationError::MissingCorruption);
        }
        Ok(ChurnSchedule {
            events: plan.events().to_vec(),
            family,
            corrupt,
            rng: ChaCha8Rng::seed_from_u64(fault_seed ^ CHURN_SEED_SALT),
            next: 0,
            partitioned: false,
        })
    }

    /// `true` while topology events remain unfired.
    fn pending(&self) -> bool {
        self.next < self.events.len()
    }

    /// Clips a burst target so the next pending event is not overshot (the
    /// burst still advances by at least one step past `done`).
    fn clip(&self, done: u64, target: u64) -> u64 {
        match self.events.get(self.next) {
            Some(event) => target.min(event.at_step.max(done + 1)),
            None => target,
        }
    }

    /// Fires every event scheduled at or before step `executed`.  Returns
    /// `true` if anything fired (the graph — and possibly the population —
    /// changed, so incremental observers must re-seed).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors from the fired events:
    /// [`PopulationError::EmptyArcSet`] when a partition strands every arc,
    /// [`PopulationError::PopulationTooSmall`] when a leave would drop the
    /// population below 2, and any error of the family's own constructor at
    /// the new size.
    fn fire_due(
        &mut self,
        executed: u64,
        sim: &mut Simulation<DynProtocol, AnyGraph>,
    ) -> Result<bool> {
        let mut fired = false;
        while self.next < self.events.len() && self.events[self.next].at_step <= executed {
            let kind = self.events[self.next].kind;
            self.next += 1;
            self.apply(kind, sim)?;
            fired = true;
            if ssle_telemetry::enabled() {
                ssle_telemetry::emit(
                    ssle_telemetry::Event::new("churn_fired")
                        .count("step", sim.steps())
                        .field("kind", churn_kind_label(kind)),
                );
            }
        }
        Ok(fired)
    }

    /// Applies one churn kind to the simulation.
    fn apply(
        &mut self,
        kind: ChurnKind,
        sim: &mut Simulation<DynProtocol, AnyGraph>,
    ) -> Result<()> {
        let n = sim.num_agents();
        match kind {
            ChurnKind::Rewire { count } => {
                let mut arcs = sim.graph().arcs();
                for _ in 0..count {
                    let victim = self.rng.gen_range(0..arcs.len());
                    // Bounded rejection: a replacement that duplicates an
                    // existing arc is redrawn; if the graph is too dense to
                    // place one, the arc is left as it was.
                    for _attempt in 0..16 {
                        let i = self.rng.gen_range(0..n);
                        let mut j = self.rng.gen_range(0..n - 1);
                        if j >= i {
                            j += 1;
                        }
                        let candidate = Interaction::new(i, j);
                        if !arcs.contains(&candidate) {
                            arcs[victim] = candidate;
                            break;
                        }
                    }
                }
                sim.set_graph(AnyGraph::Arbitrary(ArbitraryGraph::new(n, arcs)?))?;
            }
            ChurnKind::Partition { blocks } => {
                let blocks = (blocks as usize).clamp(2, n);
                let block_len = n.div_ceil(blocks);
                let arcs: Vec<Interaction> = sim
                    .graph()
                    .arcs()
                    .into_iter()
                    .filter(|a| {
                        a.initiator().index() / block_len == a.responder().index() / block_len
                    })
                    .collect();
                sim.set_graph(AnyGraph::Arbitrary(ArbitraryGraph::new(n, arcs)?))?;
                self.partitioned = true;
                if ssle_telemetry::enabled() {
                    ssle_telemetry::emit(
                        ssle_telemetry::Event::new("partition_open")
                            .count("step", sim.steps())
                            .count("blocks", blocks as u64),
                    );
                }
            }
            ChurnKind::Heal => {
                sim.set_graph(self.family.build(n)?)?;
                if self.partitioned {
                    self.partitioned = false;
                    if ssle_telemetry::enabled() {
                        ssle_telemetry::emit(
                            ssle_telemetry::Event::new("partition_heal").count("step", sim.steps()),
                        );
                    }
                }
            }
            ChurnKind::Join { count } => {
                let new_n = n + count as usize;
                let corrupt = self
                    .corrupt
                    .as_mut()
                    .expect("validated at ChurnSchedule construction");
                let mut states: Vec<DynState> = sim.config().states().to_vec();
                for agent in n..new_n {
                    states.push(corrupt(&mut self.rng, agent));
                }
                let graph = self.family.build(new_n)?;
                sim.resize(graph, Configuration::from_states(states))?;
                // Rebuilding the family graph implicitly healed any
                // partition (no `partition_heal` event: nothing was open at
                // the new size).
                self.partitioned = false;
            }
            ChurnKind::Leave { count } => {
                let new_n = n.saturating_sub(count as usize);
                if new_n < 2 {
                    return Err(PopulationError::PopulationTooSmall {
                        requested: new_n,
                        minimum: 2,
                    });
                }
                let mut states: Vec<DynState> = sim.config().states().to_vec();
                states.truncate(new_n);
                let graph = self.family.build(new_n)?;
                sim.resize(graph, Configuration::from_states(states))?;
                self.partitioned = false;
            }
        }
        Ok(())
    }
}

/// Emits the `run_start` telemetry event and bumps the run counter (a
/// no-op when telemetry is disabled).  The event's required fields
/// (`scenario`, `n`, `seed`) come from the caller's active
/// [`ssle_telemetry::run_scope`], which stamps them onto every event of
/// the run — adding them here again would duplicate the keys.
fn telemetry_run_start() {
    if ssle_telemetry::enabled() {
        ssle_telemetry::metrics::well_known::RUNS.incr();
        ssle_telemetry::emit(ssle_telemetry::Event::new("run_start"));
    }
}

/// Emits the `run_end` telemetry event, counting converged runs (a no-op
/// when telemetry is disabled).
fn telemetry_run_end(steps: u64, converged: bool) {
    if ssle_telemetry::enabled() {
        if converged {
            ssle_telemetry::metrics::well_known::CONVERGED_RUNS.incr();
        }
        ssle_telemetry::emit(
            ssle_telemetry::Event::new("run_end")
                .count("steps", steps)
                .field("converged", converged),
        );
    }
}

/// The fault-injecting run loop: identical check semantics to
/// [`Simulation::run_until`] (an initial check, then one check every
/// `check_interval` steps and at the budget boundary), with fault and churn
/// events fired at their exact steps.  Events scheduled at step 0 fire
/// before the initial check.  The random fast path keeps its burst-advance
/// (`run_steps`, no per-step indirection), preserving the bit-identical
/// pinning in `scenario_equivalence`.
fn run_with_faults(
    sim: &mut Simulation<DynProtocol, AnyGraph>,
    stop: &mut DynStop,
    check_interval: u64,
    max_steps: u64,
    faults: &mut FaultSchedule,
    churn: &mut ChurnSchedule,
) -> Result<ConvergenceReport> {
    run_checked_bursts(
        sim,
        stop,
        check_interval,
        max_steps,
        faults,
        churn,
        |sim, k, byz| {
            match byz {
                None => sim.run_steps(k),
                Some(faults) => {
                    for _ in 0..k {
                        faults.byzantine_step(sim, None, &mut NoObserver)?;
                    }
                }
            }
            Ok(())
        },
    )
}

/// The custom-scheduler run loop: identical check and fault semantics to
/// [`run_with_faults`], but every interaction is chosen by the
/// [`DynScheduler`] instead of the inlined uniform sampler.  Scheduler
/// errors — deterministic exhaustion, non-arc choices — abort the run and
/// surface as typed errors.
fn run_scheduled(
    sim: &mut Simulation<DynProtocol, AnyGraph>,
    scheduler: &mut dyn DynScheduler,
    stop: &mut DynStop,
    check_interval: u64,
    max_steps: u64,
    faults: &mut FaultSchedule,
    churn: &mut ChurnSchedule,
) -> Result<ConvergenceReport> {
    run_checked_bursts(
        sim,
        stop,
        check_interval,
        max_steps,
        faults,
        churn,
        |sim, k, byz| {
            match byz {
                None => {
                    for _ in 0..k {
                        sim.step_chosen_by(|g, c, rng| scheduler.schedule(g, c.states(), rng))?;
                    }
                }
                Some(faults) => {
                    for _ in 0..k {
                        faults.byzantine_step(sim, Some(&mut *scheduler), &mut NoObserver)?;
                    }
                }
            }
            ssle_telemetry::metrics::well_known::SCHEDULED_STEPS.add(k);
            Ok(())
        },
    )
}

/// The one checked-burst loop behind both erased run paths: an initial stop
/// check after step-0 churn/fault events and trigger evaluation, then bursts
/// clipped to the next check boundary, pending fault or churn event or
/// Byzantine window edge, advanced by `advance(sim, k, byzantine)` (the uniform
/// sampler's `run_steps` on the fast path, per-step scheduler dispatch on
/// the custom path, per-step rewriting via [`FaultSchedule::byzantine_step`]
/// whenever `byzantine` is `Some`), with fault events fired at their exact
/// steps, trigger predicates evaluated at every burst boundary, and one stop
/// check per boundary and at the budget.
fn run_checked_bursts(
    sim: &mut Simulation<DynProtocol, AnyGraph>,
    stop: &mut DynStop,
    check_interval: u64,
    max_steps: u64,
    faults: &mut FaultSchedule,
    churn: &mut ChurnSchedule,
    mut advance: impl FnMut(
        &mut Simulation<DynProtocol, AnyGraph>,
        u64,
        Option<&mut FaultSchedule>,
    ) -> Result<()>,
) -> Result<ConvergenceReport> {
    const PREDICATE: std::borrow::Cow<'static, str> = std::borrow::Cow::Borrowed("predicate");
    let mut executed = 0u64;
    churn.fire_due(0, sim)?;
    faults.fire_due(0, sim);
    faults.fire_triggered(sim);
    if stop(sim.config().states()) {
        if ssle_telemetry::enabled() {
            ssle_telemetry::emit(
                ssle_telemetry::Event::new("converged").count("step", sim.steps()),
            );
        }
        return Ok(ConvergenceReport {
            converged_at: Some(sim.steps()),
            steps_executed: 0,
            max_steps,
            check_interval,
            criterion: PREDICATE,
        });
    }
    while executed < max_steps {
        let next_check = ((executed / check_interval) + 1) * check_interval;
        let target = churn.clip(executed, faults.clip(executed, next_check.min(max_steps)));
        let byzantine = faults.byzantine_active(executed);
        advance(
            sim,
            target - executed,
            if byzantine { Some(&mut *faults) } else { None },
        )?;
        executed = target;
        churn.fire_due(executed, sim)?;
        faults.fire_due(executed, sim);
        faults.fire_triggered(sim);
        let at_boundary = executed == next_check || executed == max_steps;
        if at_boundary && stop(sim.config().states()) {
            if ssle_telemetry::enabled() {
                ssle_telemetry::emit(
                    ssle_telemetry::Event::new("converged").count("step", sim.steps()),
                );
            }
            return Ok(ConvergenceReport {
                converged_at: Some(sim.steps()),
                steps_executed: executed,
                max_steps,
                check_interval,
                criterion: PREDICATE,
            });
        }
    }
    Ok(ConvergenceReport {
        converged_at: None,
        steps_executed: executed,
        max_steps,
        check_interval,
        criterion: PREDICATE,
    })
}

/// Typed, declarative builder for [`Scenario`]s.
///
/// All per-point pieces are closures over [`SweepPoint`], so one scenario
/// definition covers a whole sweep (protocol constants can read named axis
/// values via [`SweepPoint::value`]).  Construct with [`ScenarioBuilder::new`]
/// for leader-election protocols or [`ScenarioBuilder::for_protocol`] for
/// protocols without a leader output; `init`, `stop_when` and `step_budget`
/// are required, everything else has defaults (directed ring, check interval
/// `max(n²/4, 64)`, sim/fault seeds = the point's seed, no faults).
///
/// # Example
///
/// One declarative definition, run fault-free and then replayed with a
/// mid-run crash through [`Scenario::with_fault_plan`] (the
/// [`ScenarioBuilder::corruption`] function makes the scenario fault-ready
/// without scheduling anything by itself):
///
/// ```
/// use population::prelude::*;
/// use rand::Rng;
///
/// #[derive(Clone, Debug)]
/// struct Fratricide; // every agent starts a leader; leaders demote leaders
/// impl Protocol for Fratricide {
///     type State = bool;
///     fn interact(&self, a: &mut bool, b: &mut bool) {
///         if *a && *b {
///             *b = false;
///         }
///     }
/// }
/// impl LeaderElection for Fratricide {
///     fn is_leader(&self, s: &bool) -> bool {
///         *s
///     }
/// }
///
/// let scenario = ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
///     .graph(GraphFamily::Complete)
///     .init(|_p, pt| Configuration::uniform(pt.n, true))
///     .stop_when("unique-leader", |p: &Fratricide, c| {
///         p.has_unique_leader(c.states())
///     })
///     .step_budget(|_pt| 100_000)
///     .corruption(|_p: &Fratricide, rng, _agent| rng.gen())
///     .build()
///     .unwrap();
///
/// let clean = scenario.run(&SweepPoint::new(8, 42));
/// assert!(clean.converged());
///
/// // Replay the same point, but crash 4 agents into arbitrary states at
/// // step 1000; self-stabilization still converges.
/// let crashed = scenario
///     .clone()
///     .with_fault_plan(FaultPlan::new().at(1_000, FaultKind::CorruptRandomAgents { count: 4 }))
///     .run(&SweepPoint::new(8, 42));
/// assert!(crashed.converged());
/// ```
pub struct ScenarioBuilder<P: Protocol + 'static>
where
    P::State: Any,
{
    name: String,
    graph: GraphFamily,
    scheduler: SchedulerFamily,
    make_protocol: PointFn<P>,
    erase: fn(P) -> DynProtocol,
    #[allow(clippy::type_complexity)]
    init: Option<Arc<dyn Fn(&P, &SweepPoint) -> Configuration<P::State> + Send + Sync>>,
    #[allow(clippy::type_complexity)]
    stop: Option<(
        String,
        Arc<dyn Fn(&P, &Configuration<P::State>) -> bool + Send + Sync>,
    )>,
    #[allow(clippy::type_complexity)]
    corrupt: Option<Arc<dyn Fn(&P, &mut ChaCha8Rng, usize) -> P::State + Send + Sync>>,
    #[allow(clippy::type_complexity)]
    targets: Option<Arc<dyn Fn(&P, &P::State, usize) -> bool + Send + Sync>>,
    #[allow(clippy::type_complexity)]
    byzantine: Option<Arc<dyn Fn(&P, &mut ChaCha8Rng, usize, &P::State) -> P::State + Send + Sync>>,
    #[allow(clippy::type_complexity)]
    triggers: Vec<(
        String,
        Arc<dyn Fn(&P, &Configuration<P::State>) -> bool + Send + Sync>,
    )>,
    plan: Option<PointFn<FaultPlan>>,
    churn: Option<PointFn<ChurnPlan>>,
    check_interval: PointFn<u64>,
    max_steps: Option<PointFn<u64>>,
    sim_seed: PointFn<u64>,
    fault_seed: PointFn<u64>,
}

impl<P: Protocol + 'static> fmt::Debug for ScenarioBuilder<P>
where
    P::State: Any,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("name", &self.name)
            .field("graph", &self.graph)
            .finish()
    }
}

impl<P> ScenarioBuilder<P>
where
    P: LeaderElection + 'static,
    P::State: Any,
{
    /// Starts a scenario around a leader-election protocol factory.
    pub fn new(
        name: impl Into<String>,
        protocol: impl Fn(&SweepPoint) -> P + Send + Sync + 'static,
    ) -> Self {
        Self::with_erasure(name, protocol, DynProtocol::erase)
    }
}

impl<P> ScenarioBuilder<P>
where
    P: Protocol + 'static,
    P::State: Any,
{
    /// Starts a scenario around a protocol without a leader output (ring
    /// orientation, colouring, …).
    pub fn for_protocol(
        name: impl Into<String>,
        protocol: impl Fn(&SweepPoint) -> P + Send + Sync + 'static,
    ) -> Self {
        Self::with_erasure(name, protocol, DynProtocol::erase_protocol)
    }

    fn with_erasure(
        name: impl Into<String>,
        protocol: impl Fn(&SweepPoint) -> P + Send + Sync + 'static,
        erase: fn(P) -> DynProtocol,
    ) -> Self {
        ScenarioBuilder {
            name: name.into(),
            graph: GraphFamily::DirectedRing,
            scheduler: SchedulerFamily::Random,
            make_protocol: Arc::new(protocol),
            erase,
            init: None,
            stop: None,
            corrupt: None,
            targets: None,
            byzantine: None,
            triggers: Vec::new(),
            plan: None,
            churn: None,
            check_interval: Arc::new(|pt| ((pt.n * pt.n / 4) as u64).max(64)),
            max_steps: None,
            sim_seed: Arc::new(|pt| pt.seed),
            fault_seed: Arc::new(|pt| pt.seed),
        }
    }

    /// Selects the graph family (default: the directed ring).
    pub fn graph(mut self, graph: GraphFamily) -> Self {
        self.graph = graph;
        self
    }

    /// Selects the scheduler family (default: the uniformly random
    /// scheduler of the population-protocol model).  Custom families route
    /// every step of the run through a [`DynScheduler`] built per sweep
    /// point; the default keeps the inlined random fast path.
    pub fn scheduler(mut self, scheduler: SchedulerFamily) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the initial-condition generator (required).  The closure receives
    /// the point's protocol instance and the sweep point.
    pub fn init(
        mut self,
        init: impl Fn(&P, &SweepPoint) -> Configuration<P::State> + Send + Sync + 'static,
    ) -> Self {
        self.init = Some(Arc::new(init));
        self
    }

    /// Sets the named stop criterion (required).  The name becomes the
    /// `criterion` field of produced [`ConvergenceReport`]s.
    pub fn stop_when(
        mut self,
        name: impl Into<String>,
        stop: impl Fn(&P, &Configuration<P::State>) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.stop = Some((name.into(), Arc::new(stop)));
        self
    }

    /// Sets the step budget per point (required).
    pub fn step_budget(
        mut self,
        budget: impl Fn(&SweepPoint) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.max_steps = Some(Arc::new(budget));
        self
    }

    /// Sets how often (in steps) the stop criterion is checked (default:
    /// `max(n²/4, 64)`).
    pub fn check_every(
        mut self,
        every: impl Fn(&SweepPoint) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.check_interval = Arc::new(every);
        self
    }

    /// Overrides the simulation (scheduler) seed (default: the point's seed).
    pub fn sim_seed(mut self, seed: impl Fn(&SweepPoint) -> u64 + Send + Sync + 'static) -> Self {
        self.sim_seed = Arc::new(seed);
        self
    }

    /// Overrides the fault-injection seed (default: the point's seed).
    pub fn fault_seed(mut self, seed: impl Fn(&SweepPoint) -> u64 + Send + Sync + 'static) -> Self {
        self.fault_seed = Arc::new(seed);
        self
    }

    /// Attaches a fault plan: `plan` schedules the events for a point and
    /// `corrupt` produces the (arbitrary) replacement state of a corrupted
    /// agent.
    pub fn faults(
        mut self,
        plan: impl Fn(&SweepPoint) -> FaultPlan + Send + Sync + 'static,
        corrupt: impl Fn(&P, &mut ChaCha8Rng, usize) -> P::State + Send + Sync + 'static,
    ) -> Self {
        self.plan = Some(Arc::new(plan));
        self.corrupt = Some(Arc::new(corrupt));
        self
    }

    /// Attaches a churn plan: `plan` schedules mid-run topology changes
    /// (edge rewiring, partition/heal, agent join/leave) for a point.  Plans
    /// containing [`ChurnKind::Join`] events additionally need a corruption
    /// function ([`ScenarioBuilder::corruption`] or
    /// [`ScenarioBuilder::faults`]) to mint the joining agents' states;
    /// without one the run reports
    /// [`PopulationError::MissingCorruption`].  An empty plan keeps the
    /// churn-free fast path exactly.
    pub fn churn(
        mut self,
        plan: impl Fn(&SweepPoint) -> ChurnPlan + Send + Sync + 'static,
    ) -> Self {
        self.churn = Some(Arc::new(plan));
        self
    }

    /// Attaches only the corruption function, with no fault plan: the built
    /// scenario is **fault-ready** — it runs exactly like a fault-free
    /// scenario (the plan is empty, so the fast path is untouched) until a
    /// plan is attached later with [`Scenario::with_fault_plan`].  This is
    /// how the worst-case search injects crash schedules into experiment
    /// definitions that do not schedule faults themselves.
    pub fn corruption(
        mut self,
        corrupt: impl Fn(&P, &mut ChaCha8Rng, usize) -> P::State + Send + Sync + 'static,
    ) -> Self {
        self.corrupt = Some(Arc::new(corrupt));
        self
    }

    /// Registers the target predicate consumed by
    /// [`FaultKind::CorruptTargets`] events: `(protocol, state, agent_index)
    /// -> is_target`.  A leader predicate with `limit = 1` corrupts *the
    /// current leader*; a token predicate with a large limit corrupts *every
    /// token-holder*.  Registering the predicate alone schedules nothing —
    /// like [`ScenarioBuilder::corruption`], it makes the scenario
    /// target-ready for plans attached later.  A plan containing a targeted
    /// event without this predicate reports
    /// [`PopulationError::MissingTarget`].
    pub fn fault_targets(
        mut self,
        is_target: impl Fn(&P, &P::State, usize) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.targets = Some(Arc::new(is_target));
        self
    }

    /// Registers the Byzantine rewrite consumed by an attached
    /// [`ByzantineWindow`]: `(protocol, rng, agent_index, post_state) ->
    /// rewritten_state`, applied to each window agent immediately after
    /// every interaction that touches it while the window is active.  The
    /// RNG is a dedicated stream derived from the fault seed.  Registering
    /// the rewrite alone schedules nothing; a plan carrying an active window
    /// without it reports [`PopulationError::MissingByzantine`].
    pub fn byzantine(
        mut self,
        rewrite: impl Fn(&P, &mut ChaCha8Rng, usize, &P::State) -> P::State + Send + Sync + 'static,
    ) -> Self {
        self.byzantine = Some(Arc::new(rewrite));
        self
    }

    /// Registers a named trigger predicate for predicate-coupled faults
    /// ([`FaultPlan::when`]): `(protocol, configuration) -> fire?`, evaluated
    /// at every burst boundary (stop-check/sample boundaries and immediately
    /// after step-scheduled fault events) until it first holds, at which
    /// point the coupled fault fires — before that boundary's stop check —
    /// and the trigger retires.  Each registered trigger backs at most one
    /// plan event; register the same name twice to couple two events to one
    /// predicate.  A plan naming an unregistered trigger reports
    /// [`PopulationError::UnknownTrigger`].
    pub fn trigger(
        mut self,
        name: impl Into<String>,
        when: impl Fn(&P, &Configuration<P::State>) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.triggers.push((name.into(), Arc::new(when)));
        self
    }

    /// Erases the typed pieces and produces the runnable [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::ScenarioIncomplete`] if `init`, `stop_when`
    /// or `step_budget` was not provided.
    pub fn build(self) -> Result<Scenario> {
        let init = self
            .init
            .ok_or(PopulationError::ScenarioIncomplete { missing: "init" })?;
        let (stop_name, stop) = self.stop.ok_or(PopulationError::ScenarioIncomplete {
            missing: "stop_when",
        })?;
        let max_steps = self.max_steps.ok_or(PopulationError::ScenarioIncomplete {
            missing: "step_budget",
        })?;
        let make_protocol = self.make_protocol;
        let erase = self.erase;
        let corrupt = self.corrupt;
        let targets = self.targets;
        let byzantine = self.byzantine;
        let triggers = self.triggers;
        let prepare = Arc::new(move |pt: &SweepPoint| {
            let protocol = make_protocol(pt);
            let config: Configuration<DynState> = init(&protocol, pt)
                .into_states()
                .into_iter()
                .map(DynState::new)
                .collect();
            let stop_protocol = protocol.clone();
            let stop = stop.clone();
            // Reused across checks: the typed mirror of the erased states.
            // `sync_typed_scratch` refreshes it in place (`clone_from`, no
            // reallocation in the steady state), so a stop check costs one
            // pass over the population with zero allocations instead of a
            // fresh `Vec` + clone per check.
            let mut scratch: Vec<P::State> = Vec::new();
            let stop_dyn = Box::new(move |states: &[DynState]| {
                sync_typed_scratch::<P>(&mut scratch, states, stop_protocol.name());
                let config = Configuration::from_states(std::mem::take(&mut scratch));
                let verdict = stop(&stop_protocol, &config);
                scratch = config.into_states();
                verdict
            });
            let corrupt_dyn = corrupt.clone().map(|corrupt| {
                let corrupt_protocol = protocol.clone();
                Box::new(move |rng: &mut ChaCha8Rng, i: usize| {
                    DynState::new(corrupt(&corrupt_protocol, rng, i))
                }) as Box<dyn FnMut(&mut ChaCha8Rng, usize) -> DynState>
            });
            // A second, independent instance for the churn schedule: the
            // first is moved into the fault schedule, and both draw from
            // their own RNG streams anyway.
            let churn_corrupt_dyn = corrupt.clone().map(|corrupt| {
                let corrupt_protocol = protocol.clone();
                Box::new(move |rng: &mut ChaCha8Rng, i: usize| {
                    DynState::new(corrupt(&corrupt_protocol, rng, i))
                }) as Box<dyn FnMut(&mut ChaCha8Rng, usize) -> DynState>
            });
            let targets_dyn = targets.clone().map(|is_target| {
                let target_protocol = protocol.clone();
                Box::new(move |state: &DynState, agent: usize| {
                    let typed = state.downcast_ref::<P::State>().unwrap_or_else(|| {
                        panic!(
                            "state does not belong to protocol {}",
                            target_protocol.name()
                        )
                    });
                    is_target(&target_protocol, typed, agent)
                }) as DynTargets
            });
            let byzantine_dyn = byzantine.clone().map(|rewrite| {
                let byz_protocol = protocol.clone();
                Box::new(
                    move |rng: &mut ChaCha8Rng, agent: usize, state: &DynState| {
                        let typed = state.downcast_ref::<P::State>().unwrap_or_else(|| {
                            panic!("state does not belong to protocol {}", byz_protocol.name())
                        });
                        DynState::new(rewrite(&byz_protocol, rng, agent, typed))
                    },
                ) as DynByzantine
            });
            let triggers_dyn = triggers
                .iter()
                .map(|(trigger_name, when)| {
                    let when = when.clone();
                    let trigger_protocol = protocol.clone();
                    // Same reusable typed mirror as the stop criterion: one
                    // pass over the population per evaluation, no
                    // allocations in the steady state.
                    let mut scratch: Vec<P::State> = Vec::new();
                    let when_dyn = Box::new(move |states: &[DynState]| {
                        sync_typed_scratch::<P>(&mut scratch, states, trigger_protocol.name());
                        let config = Configuration::from_states(std::mem::take(&mut scratch));
                        let verdict = when(&trigger_protocol, &config);
                        scratch = config.into_states();
                        verdict
                    }) as DynStop;
                    (trigger_name.clone(), when_dyn)
                })
                .collect();
            PreparedRun {
                protocol: erase(protocol),
                config,
                stop: stop_dyn,
                corrupt: corrupt_dyn,
                churn_corrupt: churn_corrupt_dyn,
                targets: targets_dyn,
                byzantine: byzantine_dyn,
                triggers: triggers_dyn,
            }
        });
        Ok(Scenario {
            name: self.name,
            stop_name,
            graph: self.graph,
            scheduler: self.scheduler,
            prepare,
            plan: self.plan,
            churn: self.churn,
            initial: None,
            check_interval: self.check_interval,
            max_steps,
            sim_seed: self.sim_seed,
            fault_seed: self.fault_seed,
        })
    }
}

/// Refreshes the reusable typed mirror of an erased state slice (used by
/// stop criteria, which are written against the typed state).  In the steady
/// state this is a `clone_from` per agent with no allocation; the buffer is
/// (re)built from scratch only when the population size changes.
fn sync_typed_scratch<P: Protocol>(scratch: &mut Vec<P::State>, states: &[DynState], name: &str)
where
    P::State: Any,
{
    fn typed_ref<'a, S: SlotState>(s: &'a DynState, name: &str) -> &'a S {
        s.downcast_ref::<S>()
            .unwrap_or_else(|| panic!("state does not belong to protocol {name}"))
    }
    if scratch.len() == states.len() {
        for (slot, s) in scratch.iter_mut().zip(states) {
            slot.clone_from(typed_ref::<P::State>(s, name));
        }
    } else {
        scratch.clear();
        scratch.extend(
            states
                .iter()
                .map(|s| typed_ref::<P::State>(s, name).clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use crate::convergence::Predicate;

    /// Classic pairwise leader elimination.
    #[derive(Clone, Debug)]
    struct Fratricide;
    impl Protocol for Fratricide {
        type State = bool;
        fn interact(&self, initiator: &mut bool, responder: &mut bool) {
            if *initiator && *responder {
                *responder = false;
            }
        }
        fn name(&self) -> &'static str {
            "fratricide"
        }
    }
    impl LeaderElection for Fratricide {
        fn is_leader(&self, s: &bool) -> bool {
            *s
        }
    }

    /// An oracle protocol: the environment hook counts leaders globally and
    /// marks every agent with the verdict; the transition promotes marked
    /// followers.
    #[derive(Clone, Debug)]
    struct OracleSpawner;
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct OracleState {
        leader: bool,
        no_leader: bool,
    }
    impl Protocol for OracleSpawner {
        type State = OracleState;
        fn interact(&self, initiator: &mut OracleState, _responder: &mut OracleState) {
            if initiator.no_leader {
                initiator.leader = true;
            }
        }
        const HAS_ENVIRONMENT: bool = true;
        fn environment(&self, states: &mut [OracleState]) {
            let none = !states.iter().any(|s| s.leader);
            for s in states {
                s.no_leader = none;
            }
        }
        fn uses_oracle(&self) -> bool {
            true
        }
    }
    impl LeaderElection for OracleSpawner {
        fn is_leader(&self, s: &OracleState) -> bool {
            s.leader
        }
    }

    fn fratricide_scenario() -> Scenario {
        ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 500_000)
            .build()
            .unwrap()
    }

    #[test]
    fn dyn_state_behaves_like_the_typed_state() {
        let a = DynState::new(5u32);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, DynState::new(6u32));
        assert_ne!(
            a,
            DynState::new(5u64),
            "different types never compare equal"
        );
        assert_eq!(format!("{a:?}"), "5");
        assert_eq!(a.downcast_ref::<u32>(), Some(&5));
        assert_eq!(a.downcast_ref::<u64>(), None);
        let mut c = a.clone();
        *c.downcast_mut::<u32>().unwrap() = 9;
        assert_eq!(c.downcast_ref::<u32>(), Some(&9));
    }

    #[test]
    fn erased_run_is_bit_identical_to_the_typed_run() {
        let n = 16;
        let seed = 11;
        // Typed reference.
        let mut typed = Simulation::new(
            Fratricide,
            CompleteGraph::new(n),
            Configuration::uniform(n, true),
            seed,
        );
        let reference = typed.run_criterion(
            &Predicate::<Fratricide, _>::new("unique-leader", |p: &Fratricide, s: &[bool]| {
                p.has_unique_leader(s)
            }),
            7,
            500_000,
        );
        // Erased scenario.
        let report = fratricide_scenario().run(&SweepPoint::new(n, seed));
        assert_eq!(report, reference);
        assert!(report.converged());
    }

    #[test]
    fn run_full_exposes_the_final_simulation() {
        let run = fratricide_scenario().run_full(&SweepPoint::new(8, 3));
        assert!(run.report.converged());
        assert_eq!(run.sim.count_leaders(), 1);
        let typed = downcast_config::<bool>(run.sim.config()).unwrap();
        assert_eq!(typed.count_where(|&b| b), 1);
        assert!(downcast_config::<u32>(run.sim.config()).is_none());
    }

    #[test]
    fn oracle_protocols_work_through_the_erased_environment_hook() {
        let scenario = ScenarioBuilder::new("oracle-spawner", |_pt: &SweepPoint| OracleSpawner)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| {
                Configuration::uniform(
                    pt.n,
                    OracleState {
                        leader: false,
                        no_leader: false,
                    },
                )
            })
            .stop_when("has-leader", |p: &OracleSpawner, c| {
                p.count_leaders(c.states()) >= 1
            })
            .check_every(|_pt| 1)
            .step_budget(|_pt| 10_000)
            .build()
            .unwrap();
        let report = scenario.run(&SweepPoint::new(6, 1));
        assert!(report.converged());
        // The oracle fires before the very first interaction, so one step
        // suffices.
        assert_eq!(report.steps_executed, 1);
    }

    #[test]
    fn stop_criterion_true_in_the_initial_configuration() {
        let scenario = ScenarioBuilder::new("instant", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            // Exactly one leader from the start.
            .init(|_p, pt| Configuration::from_fn(pt.n, |i| i == 0))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .step_budget(|_pt| 1_000)
            .build()
            .unwrap();
        let report = scenario.run(&SweepPoint::new(5, 0));
        assert_eq!(report.converged_at, Some(0));
        assert_eq!(report.steps_executed, 0);
        assert_eq!(report.criterion, "unique-leader");
    }

    #[test]
    fn n_equals_two_rings_run() {
        let scenario = ScenarioBuilder::new("tiny-ring", |_pt: &SweepPoint| Fratricide)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 1)
            .step_budget(|_pt| 10_000)
            .build()
            .unwrap();
        let report = scenario.run(&SweepPoint::new(2, 4));
        assert!(report.converged(), "n = 2 directed ring must elect");
    }

    #[test]
    fn empty_sweep_grid_produces_no_outcomes() {
        let scenario = fratricide_scenario();
        let runner = BatchRunner::with_threads(2);
        assert!(scenario.sweep(&SweepGrid::new(), &runner).is_empty());
        assert!(scenario
            .sweep_summaries(&SweepGrid::new().sizes(&[]).trials(3, 0), &runner)
            .is_empty());
    }

    #[test]
    fn fault_plan_firing_at_step_zero_corrupts_before_the_initial_check() {
        // Initial configuration satisfies the stop criterion; the step-0
        // fault breaks it, so the run must NOT converge at step 0.
        let scenario = ScenarioBuilder::new("fault-at-zero", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::from_fn(pt.n, |i| i == 0))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 1)
            .step_budget(|_pt| 200_000)
            .faults(
                |_pt| FaultPlan::new().at(0, FaultKind::CorruptAll),
                |_p, _rng, _i| true, // every agent becomes a leader
            )
            .build()
            .unwrap();
        let report = scenario.run(&SweepPoint::new(8, 2));
        assert!(report.converged());
        assert!(
            report.convergence_step() > 0,
            "the step-0 fault must be visible to the initial check"
        );
    }

    #[test]
    fn mid_run_faults_delay_convergence_deterministically() {
        // Fire an all-leaders reset at exactly the step where the fault-free
        // run converges: the faulted run is forced strictly past it.
        let build = |fault_at: Option<u64>| {
            let builder = ScenarioBuilder::new("mid-run", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 1)
                .step_budget(|_pt| 500_000);
            if let Some(at) = fault_at {
                builder
                    .faults(
                        move |_pt| FaultPlan::new().at(at, FaultKind::CorruptAll),
                        |_p, _rng, _i| true, // every corrupted agent becomes a leader
                    )
                    .build()
                    .unwrap()
            } else {
                builder.build().unwrap()
            }
        };
        let point = SweepPoint::new(8, 7);
        let clean = build(None).run(&point);
        assert!(clean.converged());
        let fault_at = clean.convergence_step();
        let faulted = build(Some(fault_at)).run(&point);
        let faulted_again = build(Some(fault_at)).run(&point);
        assert_eq!(
            faulted, faulted_again,
            "fault-plan runs are seed-deterministic"
        );
        assert!(faulted.converged());
        assert!(
            faulted.convergence_step() > fault_at,
            "the reset at step {fault_at} must delay convergence (got {})",
            faulted.convergence_step()
        );
    }

    #[test]
    fn with_fault_plan_matches_a_builder_scheduled_plan() {
        // Attaching a plan to a fault-ready (corruption-only) scenario after
        // build must behave exactly like scheduling the same plan in the
        // builder, and an empty plan must be bit-identical to no plan.
        let plan = FaultPlan::new().at(5, FaultKind::CorruptAll);
        let base = || {
            ScenarioBuilder::new("fault-ready", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 1)
                .step_budget(|_pt| 500_000)
        };
        let point = SweepPoint::new(8, 3);
        let scheduled = {
            let plan = plan.clone();
            base()
                .faults(move |_pt| plan.clone(), |_p, _rng, _i| true)
                .build()
                .unwrap()
                .run(&point)
        };
        let ready = base().corruption(|_p, _rng, _i| true).build().unwrap();
        let attached = ready.clone().with_fault_plan(plan).run(&point);
        assert_eq!(scheduled, attached);

        let clean = base().build().unwrap().run(&point);
        let empty_plan = ready.with_fault_plan(FaultPlan::new()).run(&point);
        assert_eq!(clean, empty_plan, "an empty plan keeps the fast path");
    }

    #[test]
    fn fault_plan_accessors() {
        let plan = FaultPlan::new()
            .at(10, FaultKind::CorruptAll)
            .at(0, FaultKind::CorruptRandomAgents { count: 1 });
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].at_step, 0, "events are sorted by step");
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn graph_families_build_their_topologies() {
        assert!(matches!(
            GraphFamily::DirectedRing.build(4),
            Ok(AnyGraph::DirectedRing(_))
        ));
        assert!(matches!(
            GraphFamily::UndirectedRing.build(4),
            Ok(AnyGraph::UndirectedRing(_))
        ));
        assert!(matches!(
            GraphFamily::Complete.build(4),
            Ok(AnyGraph::Complete(_))
        ));
        assert!(GraphFamily::DirectedRing.build(1).is_err());
        assert!(GraphFamily::Complete.build(1).is_err());
        let custom = GraphFamily::Custom(Arc::new(ArbitraryGraph::directed_ring));
        let g = custom.build(5).unwrap();
        assert_eq!(g.num_agents(), 5);
        assert_eq!(g.num_arcs(), 5);
        assert!(g.is_arc(4, 0));
        assert_eq!(g.arcs().len(), 5);
        assert!(g.describe().contains("arbitrary"));
        assert!(format!("{custom:?}").contains("Custom"));
    }

    #[test]
    fn any_graph_samples_exactly_like_the_wrapped_graph() {
        use rand::SeedableRng;
        let wrapped = AnyGraph::DirectedRing(DirectedRing::new(9).unwrap());
        let direct = DirectedRing::new(9).unwrap();
        let mut rng_a = ChaCha8Rng::seed_from_u64(5);
        let mut rng_b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..200 {
            assert_eq!(wrapped.sample(&mut rng_a), direct.sample(&mut rng_b));
        }
    }

    #[test]
    fn incomplete_builders_are_rejected() {
        let missing_init = ScenarioBuilder::new("x", |_pt: &SweepPoint| Fratricide)
            .stop_when("s", |_p: &Fratricide, _c| true)
            .step_budget(|_pt| 1)
            .build();
        assert!(matches!(
            missing_init,
            Err(PopulationError::ScenarioIncomplete { missing: "init" })
        ));
        let missing_stop = ScenarioBuilder::new("x", |_pt: &SweepPoint| Fratricide)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .step_budget(|_pt| 1)
            .build();
        assert!(matches!(
            missing_stop,
            Err(PopulationError::ScenarioIncomplete {
                missing: "stop_when"
            })
        ));
        let missing_budget = ScenarioBuilder::new("x", |_pt: &SweepPoint| Fratricide)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("s", |_p: &Fratricide, _c| true)
            .build();
        assert!(matches!(
            missing_budget,
            Err(PopulationError::ScenarioIncomplete {
                missing: "step_budget"
            })
        ));
    }

    #[test]
    fn sweep_summaries_group_by_size_in_first_appearance_order() {
        let scenario = fratricide_scenario();
        let grid = SweepGrid::new().sizes(&[8, 4]).trials(3, 1);
        let summaries = scenario.sweep_summaries(&grid, &BatchRunner::with_threads(3));
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].n, 8);
        assert_eq!(summaries[1].n, 4);
        assert_eq!(summaries[0].outcomes.len(), 3);
        assert!(summaries.iter().all(|s| s.converged_fraction() == 1.0));
    }

    #[test]
    fn leader_trajectory_decays_to_one() {
        let traj = fratricide_scenario().leader_trajectory(&SweepPoint::new(8, 3), 50_000, 1_000);
        assert_eq!(traj.first().unwrap(), &(0, 8));
        assert_eq!(traj.last().unwrap().1, 1);
        assert!(traj.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn leader_trajectory_applies_the_fault_plan() {
        // An all-leaders reset at a step that is NOT a sample boundary: the
        // trajectory must still fire it (mid-burst) and sample the refilled
        // leader pool at the next boundary, without perturbing the sample
        // grid.
        let scenario = ScenarioBuilder::new("traj-faults", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .step_budget(|_pt| 100_000)
            .faults(
                |_pt| FaultPlan::new().at(2_999, FaultKind::CorruptAll),
                |_p, _rng, _i| true,
            )
            .build()
            .unwrap();
        let traj = scenario.leader_trajectory(&SweepPoint::new(8, 3), 10_000, 1_000);
        // Sample steps stay on the 1000-grid despite the mid-burst event.
        assert_eq!(
            traj.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            (0..=10u64).map(|i| i * 1_000).collect::<Vec<_>>()
        );
        // Converged to one leader before the fault …
        assert_eq!(traj[2].1, 1, "trajectory: {traj:?}");
        // … and the step-2999 reset is visible at the step-3000 sample: a
        // single interaction can eliminate at most one of the 8 leaders.
        assert!(traj[3].1 >= 7, "fault not applied: {traj:?}");
        // The war then burns back down to one leader.
        assert_eq!(traj.last().unwrap().1, 1);
    }

    #[test]
    fn plain_protocol_erasure_has_no_leaders() {
        #[derive(Clone, Debug)]
        struct Copycat;
        impl Protocol for Copycat {
            type State = u8;
            fn interact(&self, i: &mut u8, r: &mut u8) {
                *r = *i;
            }
        }
        let scenario = ScenarioBuilder::for_protocol("copycat", |_pt: &SweepPoint| Copycat)
            .init(|_p, pt| Configuration::from_fn(pt.n, |i| i as u8))
            .stop_when("all-equal", |_p: &Copycat, c| {
                c.states().windows(2).all(|w| w[0] == w[1])
            })
            .check_every(|_pt| 1)
            .step_budget(|_pt| 1_000_000)
            .build()
            .unwrap();
        let run = scenario.run_full(&SweepPoint::new(6, 9));
        assert!(run.report.converged());
        assert_eq!(
            run.sim.count_leaders(),
            0,
            "plain protocols have no leaders"
        );
    }

    #[test]
    fn scenario_metadata_accessors() {
        let s = fratricide_scenario();
        assert_eq!(s.name(), "fratricide");
        assert_eq!(s.stop_name(), "unique-leader");
        assert!(s.scheduler().is_random());
        assert_eq!(s.scheduler().name(), "random");
        assert!(format!("{s:?}").contains("fratricide"));
    }

    #[test]
    fn explicit_random_scheduler_is_bit_identical_to_the_fast_path() {
        // Routing RandomScheduler through the DynScheduler indirection must
        // consume the RNG exactly like the inlined fast path: identical
        // reports and identical final states.
        use crate::scheduler::RandomScheduler;
        let scenario = fratricide_scenario();
        let custom = scenario
            .clone()
            .with_scheduler(SchedulerFamily::custom("random-boxed", |_pt, _g| {
                Box::new(RandomScheduler::new())
            }));
        assert_eq!(custom.scheduler().name(), "random-boxed");
        for seed in [1u64, 9, 33] {
            let point = SweepPoint::new(10, seed);
            let fast = scenario.run_full(&point);
            let boxed = custom.run_full(&point);
            assert_eq!(fast.report, boxed.report);
            assert_eq!(fast.sim.config().states(), boxed.sim.config().states());
        }
    }

    #[test]
    fn round_robin_scheduler_family_converges_through_the_erased_path() {
        use crate::scheduler::RoundRobinScheduler;
        let scenario = fratricide_scenario().with_scheduler(SchedulerFamily::custom(
            "round-robin",
            |_pt, g: &AnyGraph| Box::new(RoundRobinScheduler::new(g)),
        ));
        let report = scenario.run(&SweepPoint::new(8, 0));
        assert!(report.converged(), "round-robin must still elect");
        assert_eq!(report.criterion, "unique-leader");
    }

    #[test]
    fn deterministic_scheduler_exhaustion_is_a_typed_error() {
        // Regression: Scheduler::remaining / ScheduleExhausted used to be
        // unreachable from the erased path.  A three-interaction sequence
        // under a larger budget must surface the typed error, not panic or
        // silently truncate.
        use crate::schedule::InteractionSeq;
        use crate::scheduler::SequenceScheduler;
        let scenario = fratricide_scenario().with_scheduler(SchedulerFamily::custom(
            "short-sequence",
            |_pt, _g| {
                Box::new(SequenceScheduler::new(InteractionSeq::from_interactions(
                    vec![
                        Interaction::new(0, 1),
                        Interaction::new(1, 2),
                        Interaction::new(2, 3),
                    ],
                )))
            },
        ));
        let err = scenario.try_run(&SweepPoint::new(8, 4)).unwrap_err();
        assert!(
            matches!(err, PopulationError::ScheduleExhausted { available: 3 }),
            "expected ScheduleExhausted, got {err:?}"
        );
        // The sequence is long enough when the budget is smaller: no error.
        let short_budget = ScenarioBuilder::new("short", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 1)
            .step_budget(|_pt| 2)
            .scheduler(SchedulerFamily::custom("short-sequence", |_pt, _g| {
                Box::new(SequenceScheduler::new(InteractionSeq::from_interactions(
                    vec![Interaction::new(0, 1), Interaction::new(1, 2)],
                )))
            }))
            .build()
            .unwrap();
        let report = short_budget.try_run(&SweepPoint::new(8, 4)).unwrap();
        assert_eq!(report.steps_executed, 2);
    }

    #[test]
    fn custom_scheduler_runs_honour_fault_plans() {
        use crate::scheduler::RandomScheduler;
        // Same construction as fault_plan_firing_at_step_zero..., but driven
        // through the DynScheduler loop: the step-0 fault must be visible to
        // the initial check there too.
        let scenario = ScenarioBuilder::new("fault-at-zero", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::from_fn(pt.n, |i| i == 0))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 1)
            .step_budget(|_pt| 200_000)
            .faults(
                |_pt| FaultPlan::new().at(0, FaultKind::CorruptAll),
                |_p, _rng, _i| true,
            )
            .scheduler(SchedulerFamily::custom("random-boxed", |_pt, _g| {
                Box::new(RandomScheduler::new())
            }))
            .build()
            .unwrap();
        let report = scenario.run(&SweepPoint::new(8, 2));
        assert!(report.converged());
        assert!(report.convergence_step() > 0);
    }

    #[test]
    fn leader_trajectory_supports_custom_schedulers() {
        use crate::scheduler::RandomScheduler;
        let scenario = fratricide_scenario();
        let reference = scenario.leader_trajectory(&SweepPoint::new(8, 3), 20_000, 1_000);
        let boxed = scenario
            .clone()
            .with_scheduler(SchedulerFamily::custom("random-boxed", |_pt, _g| {
                Box::new(RandomScheduler::new())
            }))
            .leader_trajectory(&SweepPoint::new(8, 3), 20_000, 1_000);
        assert_eq!(reference, boxed, "trajectory must not depend on routing");
        // Exhaustion surfaces through the fallible trajectory variant.
        use crate::schedule::InteractionSeq;
        use crate::scheduler::SequenceScheduler;
        let err = scenario
            .with_scheduler(SchedulerFamily::custom("one-arc", |_pt, _g| {
                Box::new(SequenceScheduler::new(InteractionSeq::from_interactions(
                    vec![Interaction::new(0, 1)],
                )))
            }))
            .try_leader_trajectory(&SweepPoint::new(8, 3), 100, 10)
            .unwrap_err();
        assert!(matches!(
            err,
            PopulationError::ScheduleExhausted { available: 1 }
        ));
    }

    #[test]
    fn fault_plan_without_corruption_is_a_typed_error() {
        // Regression: a non-empty plan on a scenario that never set a
        // corruption function used to panic deep inside the run loop; it
        // must surface as PopulationError::MissingCorruption instead.
        let plan = FaultPlan::new().at(5, FaultKind::CorruptAll);
        let not_ready = fratricide_scenario().with_fault_plan(plan.clone());
        let point = SweepPoint::new(8, 3);
        assert!(matches!(
            not_ready.try_run(&point),
            Err(PopulationError::MissingCorruption)
        ));
        assert!(matches!(
            not_ready.try_leader_trajectory(&point, 100, 10),
            Err(PopulationError::MissingCorruption)
        ));
        assert!(matches!(
            not_ready.try_run_detecting(&point),
            Err(PopulationError::MissingCorruption)
        ));
        // The custom-scheduler path raises the same error.
        use crate::scheduler::RandomScheduler;
        let custom = fratricide_scenario()
            .with_scheduler(SchedulerFamily::custom("random-boxed", |_pt, _g| {
                Box::new(RandomScheduler::new())
            }))
            .with_fault_plan(plan);
        assert!(matches!(
            custom.try_run(&point),
            Err(PopulationError::MissingCorruption)
        ));
        // An empty plan needs no corruption function and keeps running.
        let empty = fratricide_scenario().with_fault_plan(FaultPlan::new());
        assert!(empty.try_run(&point).unwrap().converged());
    }

    #[test]
    fn targeted_faults_corrupt_the_current_leader() {
        // Fratricide can only ever demote: once the unique leader is
        // corrupted away, the population is dead.  A CorruptTargets{limit:1}
        // event with a leader predicate fired at the convergence boundary
        // must therefore leave the run unconverged with zero leaders.
        let base = || {
            ScenarioBuilder::new("targeted", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 1)
                .step_budget(|_pt| 10_000)
        };
        let point = SweepPoint::new(8, 3);
        let clean = base().build().unwrap().run(&point);
        assert!(clean.converged());
        let strike_at = clean.convergence_step();
        let struck = base()
            .corruption(|_p, _rng, _i| false)
            .fault_targets(|p: &Fratricide, s, _agent| p.is_leader(s))
            .faults(
                move |_pt| FaultPlan::new().at(strike_at, FaultKind::CorruptTargets { limit: 1 }),
                |_p, _rng, _i| false,
            )
            .build()
            .unwrap()
            .run_full(&point);
        assert!(
            !struck.report.converged(),
            "decapitating the unique leader must kill the run"
        );
        assert_eq!(struck.sim.count_leaders(), 0);
    }

    #[test]
    fn targeted_fault_without_predicate_is_a_typed_error() {
        let plan = FaultPlan::new().at(5, FaultKind::CorruptTargets { limit: 1 });
        let scenario = fratricide_scenario(); // corruption-less, target-less
        let point = SweepPoint::new(8, 3);
        // Corruption is validated first (events exist), then targets.
        let ready = ScenarioBuilder::new("ready", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .step_budget(|_pt| 1_000)
            .corruption(|_p, _rng, _i| true)
            .build()
            .unwrap();
        assert!(matches!(
            ready.with_fault_plan(plan.clone()).try_run(&point),
            Err(PopulationError::MissingTarget)
        ));
        assert!(matches!(
            scenario.with_fault_plan(plan).try_run(&point),
            Err(PopulationError::MissingCorruption)
        ));
    }

    #[test]
    fn triggered_faults_fire_once_when_the_predicate_first_holds() {
        let base = || {
            ScenarioBuilder::new("triggered", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 1)
                .step_budget(|_pt| 500_000)
        };
        let point = SweepPoint::new(8, 7);
        let clean = base().build().unwrap().run(&point);
        assert!(clean.converged());
        let armed = || {
            base()
                .trigger("unique-leader-emerged", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .faults(
                    |_pt| FaultPlan::new().when("unique-leader-emerged", FaultKind::CorruptAll),
                    |_p, _rng, _i| true,
                )
                .build()
                .unwrap()
        };
        let struck = armed().run(&point);
        // The trigger fires at the boundary where the clean run would have
        // stopped — before that boundary's stop check — so convergence is
        // pushed strictly past it.  Converging at all proves the trigger
        // retired after firing (a re-firing trigger would reset forever).
        assert!(struck.converged());
        assert!(
            struck.convergence_step() > clean.convergence_step(),
            "trigger must delay convergence past step {} (got {})",
            clean.convergence_step(),
            struck.convergence_step()
        );
        assert_eq!(struck, armed().run(&point), "triggered runs are seeded");

        // The trajectory loop fires the same trigger at its sample
        // boundaries.  Fratricide alone can only ever demote, so any
        // increase between consecutive per-step samples proves the trigger
        // refilled the pool.
        let budget = 2 * clean.convergence_step() + 100;
        let traj = armed().leader_trajectory(&point, budget, 1);
        assert!(
            traj.windows(2).any(|w| w[1].1 > w[0].1),
            "the trigger must refill the leader pool: {traj:?}"
        );
    }

    #[test]
    fn unknown_trigger_is_a_typed_error() {
        let scenario = ScenarioBuilder::new("unregistered", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .step_budget(|_pt| 1_000)
            .faults(
                |_pt| FaultPlan::new().when("no-such-trigger", FaultKind::CorruptAll),
                |_p, _rng, _i| true,
            )
            .build()
            .unwrap();
        match scenario.try_run(&SweepPoint::new(8, 3)) {
            Err(PopulationError::UnknownTrigger { name }) => assert_eq!(name, "no-such-trigger"),
            other => panic!("expected UnknownTrigger, got {other:?}"),
        }
    }

    #[test]
    fn never_firing_trigger_keeps_the_run_bit_identical() {
        let point = SweepPoint::new(8, 3);
        let plain = fratricide_scenario().run_full(&point);
        let armed = ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 500_000)
            .trigger("never", |_p: &Fratricide, _c| false)
            .faults(
                |_pt| FaultPlan::new().when("never", FaultKind::CorruptAll),
                |_p, _rng, _i| true,
            )
            .build()
            .unwrap()
            .run_full(&point);
        assert_eq!(plain.report, armed.report);
        assert_eq!(plain.sim.config().states(), armed.sim.config().states());
    }

    #[test]
    fn byzantine_window_perturbs_the_run_and_then_elapses() {
        // Every agent is Byzantine and re-promotes itself after every
        // interaction: while the window is open the population is pinned at
        // n leaders.  Once the window elapses the war resumes and elects.
        let windowed = |until: u64| {
            ScenarioBuilder::new("byzantine", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 1)
                .step_budget(|_pt| 100_000)
                .byzantine(|_p: &Fratricide, _rng, _agent, _state| true)
                .faults(
                    move |pt| {
                        FaultPlan::new().with_byzantine(ByzantineWindow::new(0..pt.n, 0, until))
                    },
                    |_p, _rng, _i| true,
                )
                .build()
                .unwrap()
        };
        let point = SweepPoint::new(8, 3);
        let pinned = windowed(100_000).run_full(&point);
        assert!(!pinned.report.converged(), "an open window pins n leaders");
        assert_eq!(pinned.sim.count_leaders(), 8);

        let released = windowed(500).run(&point);
        assert!(released.converged(), "the war resumes after the window");
        assert!(released.convergence_step() >= 500);

        // The custom-scheduler loop takes the same per-step Byzantine path;
        // a boxed random scheduler consumes the RNG identically, so the two
        // routings agree bit-for-bit.
        let boxed = windowed(500)
            .with_scheduler(SchedulerFamily::custom("random-boxed", |_pt, _g| {
                Box::new(RandomScheduler::new())
            }))
            .run(&point);
        assert_eq!(released, boxed);

        // The trajectory loop observes Byzantine segments incrementally:
        // with the window pinned open, every sample reports n leaders.
        let traj = windowed(100_000).leader_trajectory(&point, 5_000, 500);
        assert!(
            traj.iter().all(|&(_, l)| l == 8),
            "window must pin the trajectory at n leaders: {traj:?}"
        );
    }

    #[test]
    fn inert_byzantine_windows_are_dropped_and_stay_bit_identical() {
        assert!(ByzantineWindow::new([], 0, 1_000).is_inert());
        assert!(ByzantineWindow::new([3], 5, 5).is_inert());
        assert!(!ByzantineWindow::new([3], 5, 6).is_inert());
        let plan = FaultPlan::new().with_byzantine(ByzantineWindow::new([], 0, 1_000));
        assert!(plan.byzantine().is_none(), "inert windows are dropped");
        assert!(plan.is_empty(), "a dropped window keeps the fast path");

        let point = SweepPoint::new(8, 3);
        let plain = fratricide_scenario().run_full(&point);
        let inert = ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 500_000)
            .byzantine(|_p: &Fratricide, _rng, _agent, _state| true)
            .faults(
                |_pt| FaultPlan::new().with_byzantine(ByzantineWindow::new([], 0, 1_000)),
                |_p, _rng, _i| true,
            )
            .build()
            .unwrap()
            .run_full(&point);
        assert_eq!(plain.report, inert.report);
        assert_eq!(plain.sim.config().states(), inert.sim.config().states());
    }

    #[test]
    fn byzantine_window_without_rewrite_is_a_typed_error() {
        let scenario = fratricide_scenario()
            .with_fault_plan(FaultPlan::new().with_byzantine(ByzantineWindow::new([0, 1], 0, 100)));
        assert!(matches!(
            scenario.try_run(&SweepPoint::new(8, 3)),
            Err(PopulationError::MissingByzantine)
        ));
    }

    #[test]
    fn zero_extent_fault_events_are_rejected() {
        match FaultPlan::new().try_at(3, FaultKind::CorruptRandomAgents { count: 0 }) {
            Err(PopulationError::DegenerateFault { at }) => assert!(at.contains("step 3")),
            other => panic!("expected DegenerateFault, got {other:?}"),
        }
        match FaultPlan::new().try_when("boom", FaultKind::CorruptTargets { limit: 0 }) {
            Err(PopulationError::DegenerateFault { at }) => assert!(at.contains("boom")),
            other => panic!("expected DegenerateFault, got {other:?}"),
        }
        // CorruptAll has no extent knob and CorruptBlock{count: 0} is the
        // same bug as a zero random count.
        assert!(FaultPlan::new().try_at(0, FaultKind::CorruptAll).is_ok());
        assert!(FaultPlan::new()
            .try_at(0, FaultKind::CorruptBlock { start: 2, count: 0 })
            .is_err());
    }

    #[test]
    #[should_panic(expected = "extent 0")]
    fn zero_extent_fault_events_panic_through_the_infallible_builder() {
        let _ = FaultPlan::new().at(3, FaultKind::CorruptRandomAgents { count: 0 });
    }

    #[test]
    fn with_initial_overrides_the_prepared_configuration() {
        let point = SweepPoint::new(8, 3);
        let finished = fratricide_scenario().run_full(&point);
        assert!(finished.report.converged());
        // Restarting from the converged configuration is instant.
        let resumed = fratricide_scenario()
            .with_initial(finished.sim.config().clone())
            .try_run(&point)
            .unwrap();
        assert_eq!(resumed.converged_at, Some(0));
        assert_eq!(resumed.steps_executed, 0);
        // A size mismatch is a typed error, not a panic.
        assert!(matches!(
            fratricide_scenario()
                .with_initial(finished.sim.config().clone())
                .try_run(&SweepPoint::new(10, 3)),
            Err(PopulationError::ConfigurationSizeMismatch {
                configuration: 8,
                graph: 10,
            })
        ));
    }

    /// A deterministic phase-carrying scheduler for detection tests: cycles
    /// through a fixed arc list, reporting its position as the phase.
    #[derive(Clone, Debug)]
    struct CyclicScheduler {
        arcs: Vec<Interaction>,
        step: u64,
    }
    impl<G: InteractionGraph> Scheduler<G> for CyclicScheduler {
        fn next_interaction<R: rand::Rng + ?Sized>(
            &mut self,
            _graph: &G,
            _rng: &mut R,
        ) -> Result<Interaction> {
            let arc = self.arcs[(self.step % self.arcs.len() as u64) as usize];
            self.step += 1;
            Ok(arc)
        }
        fn phase(&self) -> Option<u64> {
            Some(self.step % self.arcs.len() as u64)
        }
    }

    fn cyclic_family() -> SchedulerFamily {
        SchedulerFamily::custom("cyclic", |_pt, g: &AnyGraph| {
            Box::new(CyclicScheduler {
                arcs: g.arcs(),
                step: 0,
            })
        })
    }

    #[test]
    fn detection_run_reports_exactly_like_the_plain_run() {
        // A converging run under a deterministic scheduler: detection rides
        // along without perturbing anything and never fires.
        let scenario = fratricide_scenario().with_scheduler(cyclic_family());
        let point = SweepPoint::new(8, 3);
        let plain = scenario.try_run(&point).unwrap();
        let detected = scenario.try_run_detecting(&point).unwrap();
        assert_eq!(detected.report, plain);
        assert!(detected.report.converged());
        assert!(detected.recurrence.is_none());
        assert!(!detected.faults_pending);
        // The random fast path likewise (detection disabled: no phase).
        let random = fratricide_scenario();
        let detected = random.try_run_detecting(&point).unwrap();
        assert_eq!(detected.report, random.try_run(&point).unwrap());
        assert!(detected.recurrence.is_none());
    }

    #[test]
    fn detection_certifies_a_dead_configuration_livelock_end_to_end() {
        // All-followers is a fixed point of Fratricide that never elects: a
        // true livelock under any scheduler.  The detector must confirm a
        // recurrence whose period divides the scheduler rotation, abort the
        // run early, and the phase closure must certify it.
        let scenario = ScenarioBuilder::new("dead", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, false))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 64)
            .step_budget(|_pt| 1_000_000)
            .scheduler(cyclic_family())
            .build()
            .unwrap();
        let point = SweepPoint::new(4, 9);
        let detected = scenario.try_run_detecting(&point).unwrap();
        assert!(!detected.report.converged());
        assert!(
            detected.report.steps_executed < 1_000_000,
            "a confirmed recurrence must abort the run early (ran {} steps)",
            detected.report.steps_executed
        );
        let candidate = detected.recurrence.expect("the dead config must recur");
        let rotation = detected.sim.graph().num_arcs() as u64;
        assert_eq!(candidate.period % rotation, 0);
        assert!(candidate.phase.is_some());
        assert!(!detected.faults_pending);

        // Close the loop: the recurrent configuration is certified stop-free
        // under the exact product system of the cyclic scheduler (one
        // single-arc group per rotation position).
        let mut prepared = scenario.prepare(&point);
        let groups = detected
            .sim
            .graph()
            .arcs()
            .into_iter()
            .map(|arc| vec![arc])
            .collect();
        let outcome = crate::explore::phase_closure(
            &prepared.protocol,
            &crate::explore::ArcPhases::cyclic(groups, 1),
            &candidate.config,
            candidate.phase.unwrap(),
            &mut prepared.stop,
            &crate::explore::ClosureLimits::default(),
        );
        assert!(outcome.certifies_livelock());
        assert_eq!(outcome.configs, 1, "a dead configuration closes on itself");
    }

    #[test]
    fn detection_is_disarmed_while_fault_events_are_pending() {
        // A dead start recurs immediately, but a fault far in the future
        // will revive the population — so the detector must NOT abort on the
        // pre-fault cycle.  It stays disarmed until the schedule is
        // exhausted, the revival fires at step 900000, and the run then
        // converges normally.
        let dead_then = |fault_step: u64, corrupt_to: bool| {
            ScenarioBuilder::new("dead-then-faulted", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, false))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 64)
                .step_budget(|_pt| 1_000_000)
                .scheduler(cyclic_family())
                .faults(
                    move |_pt| FaultPlan::new().at(fault_step, FaultKind::CorruptAll),
                    move |_p, _rng, _i| corrupt_to,
                )
                .build()
                .unwrap()
        };
        let point = SweepPoint::new(4, 9);
        let revived = dead_then(900_000, true).try_run_detecting(&point).unwrap();
        assert!(revived.recurrence.is_none(), "pre-fault cycles are skipped");
        assert!(revived.report.converged(), "the revival elects a leader");
        assert!(revived.report.converged_at.unwrap() >= 900_000);
        assert!(!revived.faults_pending);

        // An event scheduled beyond the budget never fires: the detector is
        // disarmed for the whole run and faults_pending still gates any
        // conclusion a caller might draw from the censored report.
        let beyond = dead_then(2_000_000, true)
            .try_run_detecting(&point)
            .unwrap();
        assert!(beyond.recurrence.is_none());
        assert!(!beyond.report.converged());
        assert_eq!(beyond.report.steps_executed, 1_000_000);
        assert!(beyond.faults_pending);

        // A fault that leaves the population dead: the candidate describes
        // the fault-free suffix (entry at or after the event) and nothing is
        // pending, so this one IS certification material.
        let dead_after = dead_then(1_000, false).try_run_detecting(&point).unwrap();
        let candidate = dead_after
            .recurrence
            .expect("the post-fault dead config must recur");
        assert!(candidate.entry_step >= 1_000);
        assert!(!dead_after.faults_pending);
        assert!(
            dead_after.report.steps_executed < 1_000_000,
            "a post-fault recurrence still aborts the run early"
        );
    }

    #[test]
    fn scenario_explore_verifies_fratricide_exactly() {
        let result = fratricide_scenario()
            .explore(
                &SweepPoint::new(3, 0),
                &crate::explore::ExploreLimits::default(),
            )
            .unwrap();
        assert_eq!(result.reachable, 7);
        match result.verdict {
            crate::explore::ExploreVerdict::Stabilizes {
                exact_worst_steps, ..
            } => assert_eq!(exact_worst_steps, 2),
            ref other => panic!("expected Stabilizes, got {other:?}"),
        }
        // Oracle protocols are rejected with a typed error.
        let oracle = ScenarioBuilder::new("oracle", |_pt: &SweepPoint| OracleSpawner)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| {
                Configuration::uniform(
                    pt.n,
                    OracleState {
                        leader: false,
                        no_leader: false,
                    },
                )
            })
            .stop_when("has-leader", |p: &OracleSpawner, c| {
                p.count_leaders(c.states()) >= 1
            })
            .step_budget(|_pt| 1_000)
            .build()
            .unwrap();
        assert!(matches!(
            oracle.explore(
                &SweepPoint::new(3, 0),
                &crate::explore::ExploreLimits::default()
            ),
            Err(PopulationError::OracleUnsupported { .. })
        ));
    }

    // -- generated graph families and churn ---------------------------------

    /// The fratricide scenario made churn-ready: a corruption function mints
    /// joining agents' states (every joiner is a leader), no plan scheduled.
    fn churn_ready_fratricide() -> Scenario {
        ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 500_000)
            .corruption(|_p, _rng, _i| true)
            .build()
            .unwrap()
    }

    /// Max-consensus spreads the largest id along arcs in both directions,
    /// so it converges on *any* weakly connected digraph — unlike
    /// fratricide, whose leaders can only fight across an arc and therefore
    /// deadlock on sparse graphs.  The all-equal stop criterion exercises
    /// every generated family.
    #[derive(Clone, Debug)]
    struct MaxConsensus;
    impl Protocol for MaxConsensus {
        type State = u32;
        fn interact(&self, i: &mut u32, r: &mut u32) {
            let m = (*i).max(*r);
            *i = m;
            *r = m;
        }
    }

    #[test]
    fn generated_graph_families_run_deterministically() {
        let families = [
            GraphFamily::Torus,
            GraphFamily::SmallWorld {
                k: 4,
                rewire_per_mille: 200,
                seed: 7,
            },
            GraphFamily::PreferentialAttachment { m: 2, seed: 7 },
            GraphFamily::RandomRegular { degree: 3, seed: 7 },
        ];
        for family in families {
            let build = {
                let family = family.clone();
                move || {
                    let family = family.clone();
                    ScenarioBuilder::for_protocol("generated", |_pt: &SweepPoint| MaxConsensus)
                        .graph(family)
                        .init(|_p, pt| Configuration::from_fn(pt.n, |i| i as u32))
                        .stop_when("all-equal", |_p: &MaxConsensus, c| {
                            c.states().windows(2).all(|w| w[0] == w[1])
                        })
                        .check_every(|_pt| 7)
                        .step_budget(|_pt| 500_000)
                        .build()
                        .unwrap()
                }
            };
            let point = SweepPoint::new(16, 3);
            let a = build().run_full(&point);
            let b = build().run_full(&point);
            assert_eq!(a.report, b.report, "{family:?} runs are deterministic");
            assert_eq!(a.sim.config().states(), b.sim.config().states());
            assert!(a.report.converged(), "{family:?} must reach consensus");
        }
    }

    #[test]
    fn churn_plan_accessors_and_degenerate_events() {
        let plan = ChurnPlan::new()
            .at(10, ChurnKind::Heal)
            .at(0, ChurnKind::Rewire { count: 2 });
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].at_step, 0, "events are sorted by step");
        assert!(!plan.has_joins());
        assert!(ChurnPlan::new()
            .at(1, ChurnKind::Join { count: 1 })
            .has_joins());
        assert!(ChurnPlan::new().is_empty());
        assert_eq!(ChurnKind::Heal.extent(), None);
        assert_eq!(ChurnKind::Partition { blocks: 3 }.extent(), Some(2));
        assert_eq!(ChurnKind::Rewire { count: 5 }.extent(), Some(5));
        for kind in [
            ChurnKind::Rewire { count: 0 },
            ChurnKind::Partition { blocks: 1 },
            ChurnKind::Partition { blocks: 0 },
            ChurnKind::Join { count: 0 },
            ChurnKind::Leave { count: 0 },
        ] {
            assert!(
                matches!(
                    ChurnPlan::new().try_at(7, kind),
                    Err(PopulationError::DegenerateChurn { at: 7 })
                ),
                "{kind:?} has extent 0 and must be rejected"
            );
        }
    }

    #[test]
    fn empty_churn_plan_keeps_the_fast_path() {
        let point = SweepPoint::new(8, 3);
        let clean = fratricide_scenario().run_full(&point);
        let empty = fratricide_scenario()
            .with_churn_plan(ChurnPlan::new())
            .run_full(&point);
        assert_eq!(
            clean.report, empty.report,
            "an empty plan keeps the fast path"
        );
        assert_eq!(clean.sim.config().states(), empty.sim.config().states());
    }

    #[test]
    fn with_churn_plan_matches_a_builder_scheduled_plan() {
        let plan = ChurnPlan::new().at(20, ChurnKind::Rewire { count: 3 });
        let point = SweepPoint::new(8, 5);
        let scheduled = {
            let plan = plan.clone();
            ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 7)
                .step_budget(|_pt| 500_000)
                .corruption(|_p, _rng, _i| true)
                .churn(move |_pt| plan.clone())
                .build()
                .unwrap()
                .run(&point)
        };
        let attached = churn_ready_fratricide().with_churn_plan(plan).run(&point);
        assert_eq!(scheduled, attached);
    }

    #[test]
    fn churned_runs_are_deterministic() {
        // Two rewires on a complete graph: every replacement candidate
        // duplicates an existing arc, so the arc set survives — but the
        // graph drops to its explicit representation and the scheduler
        // stream changes.  The run must stay seed-deterministic.
        let plan = ChurnPlan::new()
            .at(5, ChurnKind::Rewire { count: 4 })
            .at(50, ChurnKind::Rewire { count: 4 });
        let point = SweepPoint::new(16, 9);
        let a = churn_ready_fratricide()
            .with_churn_plan(plan.clone())
            .run_full(&point);
        let b = churn_ready_fratricide()
            .with_churn_plan(plan)
            .run_full(&point);
        assert_eq!(a.report, b.report, "churned runs are seed-deterministic");
        assert_eq!(a.sim.config().states(), b.sim.config().states());
        assert!(a.report.converged());
    }

    #[test]
    fn rewire_changes_ring_topology_deterministically() {
        let plan = ChurnPlan::new().at(0, ChurnKind::Rewire { count: 2 });
        let build = || {
            ScenarioBuilder::new("rewired-ring", |_pt: &SweepPoint| Fratricide)
                .init(|_p, pt| Configuration::uniform(pt.n, true))
                .stop_when("unique-leader", |p: &Fratricide, c| {
                    p.has_unique_leader(c.states())
                })
                .check_every(|_pt| 7)
                .step_budget(|_pt| 500_000)
                .build()
                .unwrap()
        };
        let point = SweepPoint::new(12, 4);
        let a = build().with_churn_plan(plan.clone()).run_full(&point);
        let b = build().with_churn_plan(plan).run_full(&point);
        let ring: Vec<Interaction> = DirectedRing::new(12).unwrap().arcs();
        assert_eq!(a.sim.graph().arcs(), b.sim.graph().arcs());
        assert_ne!(
            a.sim.graph().arcs(),
            ring,
            "a step-0 rewire must replace ring arcs"
        );
        assert_eq!(
            a.sim.graph().arcs().len(),
            ring.len(),
            "arc count is preserved"
        );
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn partition_blocks_global_convergence_until_heal() {
        // A 2-block partition of the complete graph leaves each block with
        // at least one leader that fratricide can never eliminate from the
        // other block, so the global unique-leader predicate is unreachable
        // until the heal restores the full topology.
        let heal_at = 2_000;
        let plan = ChurnPlan::new()
            .at(0, ChurnKind::Partition { blocks: 2 })
            .at(heal_at, ChurnKind::Heal);
        let report = churn_ready_fratricide()
            .with_churn_plan(plan)
            .run(&SweepPoint::new(8, 2));
        assert!(report.converged());
        assert!(
            report.convergence_step() >= heal_at,
            "converged at {} while partitioned",
            report.convergence_step()
        );
    }

    #[test]
    fn join_and_leave_resize_the_population() {
        // A never-true stop criterion keeps the run alive past both events
        // (converged runs stop firing their remaining churn, like fault
        // plans do).
        let plan = ChurnPlan::new()
            .at(100, ChurnKind::Join { count: 4 })
            .at(2_000, ChurnKind::Leave { count: 2 });
        let build = || {
            ScenarioBuilder::new("resizing", |_pt: &SweepPoint| Fratricide)
                .graph(GraphFamily::Complete)
                .init(|_p, pt| Configuration::uniform(pt.n, false))
                .stop_when("never", |_p: &Fratricide, _c| false)
                .check_every(|_pt| 7)
                .step_budget(|_pt| 5_000)
                .corruption(|_p, _rng, _i| true)
                .build()
                .unwrap()
        };
        let point = SweepPoint::new(8, 6);
        let a = build()
            .with_churn_plan(plan.clone())
            .try_run_full(&point)
            .unwrap();
        let b = build().with_churn_plan(plan).try_run_full(&point).unwrap();
        assert_eq!(a.sim.config().len(), 10, "8 + 4 joined - 2 left");
        assert_eq!(a.sim.num_agents(), 10);
        assert_eq!(
            a.sim.stats().num_agents(),
            10,
            "stats resize with the population"
        );
        assert!(!a.report.converged());
        assert_eq!(a.report.steps_executed, 5_000);
        assert_eq!(a.report, b.report, "resizing runs are seed-deterministic");
        assert_eq!(a.sim.config().states(), b.sim.config().states());
    }

    #[test]
    fn join_without_corruption_is_a_typed_error() {
        // Joining agents' states are minted by the corruption function; a
        // join plan on a scenario that never set one must surface
        // MissingCorruption from every fallible entry point, like fault
        // plans do.
        let plan = ChurnPlan::new().at(5, ChurnKind::Join { count: 1 });
        let not_ready = fratricide_scenario().with_churn_plan(plan);
        let point = SweepPoint::new(8, 3);
        assert!(matches!(
            not_ready.try_run(&point),
            Err(PopulationError::MissingCorruption)
        ));
        assert!(matches!(
            not_ready.try_leader_trajectory(&point, 100, 10),
            Err(PopulationError::MissingCorruption)
        ));
        assert!(matches!(
            not_ready.try_run_detecting(&point),
            Err(PopulationError::MissingCorruption)
        ));
        // Rewire/partition/leave plans need no corruption function.
        let rewire = fratricide_scenario()
            .with_churn_plan(ChurnPlan::new().at(5, ChurnKind::Rewire { count: 1 }));
        assert!(rewire.try_run(&point).is_ok());
    }

    #[test]
    fn churn_under_a_byzantine_window_is_rejected() {
        let scenario = ScenarioBuilder::new("byz-churn", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 100_000)
            .faults(
                |_pt| FaultPlan::new().with_byzantine(ByzantineWindow::new([0], 0, 100)),
                |_p, _rng, _i| true,
            )
            .byzantine(|_p, _rng, _i, s| *s)
            .churn(|_pt| ChurnPlan::new().at(5, ChurnKind::Heal))
            .build()
            .unwrap();
        assert!(matches!(
            scenario.try_run(&SweepPoint::new(8, 1)),
            Err(PopulationError::ChurnUnsupported {
                reason: "a Byzantine window"
            })
        ));
    }

    #[test]
    fn partition_stranding_every_arc_is_a_typed_error() {
        // Every arc of this custom digraph crosses the 2-block boundary, so
        // the partition leaves an empty arc set — a typed error, not a hang.
        let scenario = ScenarioBuilder::new("crossing", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Custom(Arc::new(|_n| {
                ArbitraryGraph::new(
                    4,
                    vec![
                        Interaction::new(0, 2),
                        Interaction::new(2, 1),
                        Interaction::new(1, 3),
                        Interaction::new(3, 0),
                    ],
                )
            })))
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 100_000)
            .build()
            .unwrap()
            .with_churn_plan(ChurnPlan::new().at(10, ChurnKind::Partition { blocks: 2 }));
        assert!(matches!(
            scenario.try_run(&SweepPoint::new(4, 0)),
            Err(PopulationError::EmptyArcSet)
        ));
    }

    #[test]
    fn leave_below_two_agents_is_a_typed_error() {
        let plan = ChurnPlan::new().at(10, ChurnKind::Leave { count: 3 });
        let err = churn_ready_fratricide()
            .with_churn_plan(plan)
            .try_run(&SweepPoint::new(4, 0))
            .unwrap_err();
        assert!(
            matches!(
                err,
                PopulationError::PopulationTooSmall {
                    requested: 1,
                    minimum: 2
                }
            ),
            "expected PopulationTooSmall, got {err:?}"
        );
    }

    #[test]
    fn disconnected_custom_graphs_are_rejected() {
        // Regression: a disconnected custom digraph used to run until budget
        // exhaustion (the global stop predicate is unreachable); it must be
        // rejected at build time with a typed error.
        let family = GraphFamily::Custom(Arc::new(|_n| {
            ArbitraryGraph::new(
                4,
                vec![
                    Interaction::new(0, 1),
                    Interaction::new(1, 0),
                    Interaction::new(2, 3),
                    Interaction::new(3, 2),
                ],
            )
        }));
        assert!(matches!(
            family.build(4),
            Err(PopulationError::DisconnectedGraph {
                agents: 4,
                reached: 2
            })
        ));
        let scenario = ScenarioBuilder::new("split", |_pt: &SweepPoint| Fratricide)
            .graph(family)
            .init(|_p, pt| Configuration::uniform(pt.n, true))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 7)
            .step_budget(|_pt| 100_000)
            .build()
            .unwrap();
        assert!(matches!(
            scenario.try_run(&SweepPoint::new(4, 0)),
            Err(PopulationError::DisconnectedGraph { .. })
        ));
    }

    #[test]
    fn leader_trajectory_applies_the_churn_plan() {
        // Partition before the first interaction, heal at a non-boundary
        // step: the sample grid must be preserved and the partition must be
        // visible as two surviving leaders (one per block) until the heal.
        let plan = ChurnPlan::new()
            .at(0, ChurnKind::Partition { blocks: 2 })
            .at(4_500, ChurnKind::Heal);
        let traj = churn_ready_fratricide()
            .with_churn_plan(plan)
            .leader_trajectory(&SweepPoint::new(8, 3), 20_000, 1_000);
        assert_eq!(
            traj.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            (0..=20u64).map(|i| i * 1_000).collect::<Vec<_>>()
        );
        assert_eq!(traj[0].1, 8);
        // While partitioned each block burns down to exactly one leader.
        assert_eq!(traj[3].1, 2, "trajectory: {traj:?}");
        assert_eq!(traj[4].1, 2, "trajectory: {traj:?}");
        // After the heal the war burns back down to one.
        assert_eq!(traj.last().unwrap().1, 1, "trajectory: {traj:?}");
    }

    #[test]
    fn detection_runs_under_churn() {
        // Smoke: the recurrence-detecting path resyncs its digest across a
        // churn boundary and still converges with nothing pending.  The
        // rewire fires at step 0 — fratricide on a complete graph converges
        // long before any later step, which would leave the event pending.
        let plan = ChurnPlan::new().at(0, ChurnKind::Rewire { count: 2 });
        let detected = churn_ready_fratricide()
            .with_churn_plan(plan)
            .try_run_detecting(&SweepPoint::new(8, 4))
            .unwrap();
        assert!(detected.report.converged());
        assert!(detected.recurrence.is_none());
        assert!(!detected.faults_pending);
    }

    #[test]
    fn custom_scheduler_runs_honour_churn_plans() {
        use crate::scheduler::RandomScheduler;
        // The partition/heal gate from the fast-path test must hold through
        // the DynScheduler loop too.
        let heal_at = 2_000;
        let plan = ChurnPlan::new()
            .at(0, ChurnKind::Partition { blocks: 2 })
            .at(heal_at, ChurnKind::Heal);
        let report = churn_ready_fratricide()
            .with_scheduler(SchedulerFamily::custom("random-boxed", |_pt, _g| {
                Box::new(RandomScheduler::new())
            }))
            .with_churn_plan(plan)
            .run(&SweepPoint::new(8, 2));
        assert!(report.converged());
        assert!(report.convergence_step() >= heal_at);
    }
}
