//! Fault injection.
//!
//! Self-stabilization promises recovery from *any* transient fault: after an
//! arbitrary corruption of agent memory, the protocol re-converges to a safe
//! configuration.  [`FaultInjector`] corrupts a configuration in controlled
//! ways so that the recovery experiments (E11 in `DESIGN.md`) can measure
//! re-convergence time as a function of the number of corrupted agents.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::Configuration;

/// The kind of corruption to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Replace the states of `count` randomly chosen agents using the
    /// supplied corruption function.
    CorruptRandomAgents {
        /// Number of agents to corrupt.
        count: usize,
    },
    /// Replace the states of the `count` agents starting at `start`
    /// (a contiguous clockwise block) — models a localized burst fault.
    CorruptBlock {
        /// Index of the first corrupted agent.
        start: usize,
        /// Number of agents to corrupt.
        count: usize,
    },
    /// Corrupt every agent.
    CorruptAll,
}

/// Applies [`FaultKind`]s to configurations using a protocol-supplied
/// corruption function.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: ChaCha8Rng,
}

impl FaultInjector {
    /// Creates a fault injector from a seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Applies a fault to `config`.  `corrupt` receives the RNG and the index
    /// of the agent being corrupted and must return its new (arbitrary)
    /// state.  Returns the indices of the corrupted agents.
    pub fn inject<S, F>(
        &mut self,
        config: &mut Configuration<S>,
        kind: FaultKind,
        mut corrupt: F,
    ) -> Vec<usize>
    where
        F: FnMut(&mut ChaCha8Rng, usize) -> S,
    {
        let n = config.len();
        let targets: Vec<usize> = match kind {
            FaultKind::CorruptRandomAgents { count } => {
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut self.rng);
                all.truncate(count.min(n));
                all
            }
            FaultKind::CorruptBlock { start, count } => {
                (0..count.min(n)).map(|k| (start + k) % n).collect()
            }
            FaultKind::CorruptAll => (0..n).collect(),
        };
        for &i in &targets {
            let new_state = corrupt(&mut self.rng, i);
            config[i] = new_state;
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn corrupt_random_agents_changes_exactly_count_states() {
        let mut config = Configuration::uniform(20, 0u32);
        let mut inj = FaultInjector::new(1);
        let targets = inj.inject(
            &mut config,
            FaultKind::CorruptRandomAgents { count: 5 },
            |_, _| 99,
        );
        assert_eq!(targets.len(), 5);
        assert_eq!(config.count_where(|&x| x == 99), 5);
        // Targets are distinct.
        let mut t = targets.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn corrupt_block_wraps_around_the_ring() {
        let mut config = Configuration::uniform(6, 0u32);
        let mut inj = FaultInjector::new(2);
        let targets = inj.inject(
            &mut config,
            FaultKind::CorruptBlock { start: 4, count: 4 },
            |_, i| i as u32 + 100,
        );
        assert_eq!(targets, vec![4, 5, 0, 1]);
        assert_eq!(config[4], 104);
        assert_eq!(config[0], 100);
        assert_eq!(config[2], 0);
    }

    #[test]
    fn corrupt_all_touches_every_agent() {
        let mut config = Configuration::uniform(8, 0u32);
        let mut inj = FaultInjector::new(3);
        let targets = inj.inject(&mut config, FaultKind::CorruptAll, |rng, _| {
            rng.gen_range(1..5)
        });
        assert_eq!(targets.len(), 8);
        assert!(config.states().iter().all(|&x| (1..5).contains(&x)));
    }

    #[test]
    fn count_larger_than_population_is_clamped() {
        let mut config = Configuration::uniform(4, 0u32);
        let mut inj = FaultInjector::new(4);
        let targets = inj.inject(
            &mut config,
            FaultKind::CorruptRandomAgents { count: 100 },
            |_, _| 1,
        );
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn injection_is_deterministic_for_a_seed() {
        let mut a = Configuration::uniform(16, 0u32);
        let mut b = Configuration::uniform(16, 0u32);
        let ta = FaultInjector::new(7).inject(
            &mut a,
            FaultKind::CorruptRandomAgents { count: 6 },
            |rng, _| rng.gen(),
        );
        let tb = FaultInjector::new(7).inject(
            &mut b,
            FaultKind::CorruptRandomAgents { count: 6 },
            |rng, _| rng.gen(),
        );
        assert_eq!(ta, tb);
        assert_eq!(a.states(), b.states());
    }
}
