//! Fault injection.
//!
//! Self-stabilization promises recovery from *any* transient fault: after an
//! arbitrary corruption of agent memory, the protocol re-converges to a safe
//! configuration.  [`FaultInjector`] corrupts a configuration in controlled
//! ways so that the recovery experiments (E11 in `DESIGN.md`) can measure
//! re-convergence time as a function of the number of corrupted agents.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::Configuration;

/// The kind of corruption to apply.
///
/// Extent semantics on a population of `n` agents (deliberate, so a plan
/// written for one size replays meaningfully at another):
///
/// * `CorruptRandomAgents { count }` with `count > n` silently **truncates**
///   to `n` — it corrupts every agent, exactly like [`FaultKind::CorruptAll`].
/// * `CorruptBlock { start, count }` **wraps modulo `n`**: the block is the
///   `count.min(n)` agents `start % n, (start + 1) % n, …` — a block larger
///   than the ring covers it once, and a `start` beyond the population is a
///   rotation, not an error.
/// * `CorruptTargets { limit }` truncates to however many agents currently
///   satisfy the target predicate (possibly zero — a targeted fault aimed at
///   an extinct population of targets is a legal no-op *at fire time*).
///
/// A `count`/`limit` of **zero**, by contrast, is rejected when the plan is
/// built ([`crate::FaultPlan::try_at`]): an event that can never corrupt
/// anything is always a bug in the plan, not a boundary case of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Replace the states of `count` randomly chosen agents using the
    /// supplied corruption function.
    CorruptRandomAgents {
        /// Number of agents to corrupt.
        count: usize,
    },
    /// Replace the states of the `count` agents starting at `start`
    /// (a contiguous clockwise block) — models a localized burst fault.
    CorruptBlock {
        /// Index of the first corrupted agent.
        start: usize,
        /// Number of agents to corrupt.
        count: usize,
    },
    /// Corrupt every agent.
    CorruptAll,
    /// Replace the states of up to `limit` agents that currently satisfy the
    /// scenario's *target predicate* (`ScenarioBuilder::fault_targets`),
    /// scanned in agent-index order.  `limit = 1` with a leader predicate
    /// corrupts *the current leader*; a large `limit` with a token predicate
    /// corrupts *every token-holder*.  Target selection consumes no
    /// randomness; only the corruption function draws from the fault RNG.
    CorruptTargets {
        /// Maximum number of target agents to corrupt.
        limit: usize,
    },
}

impl FaultKind {
    /// The extent field of this kind: how many agents the event *asks* to
    /// corrupt (`None` for [`FaultKind::CorruptAll`], which has no knob).
    /// Zero extent makes an event unable to ever corrupt anything, which
    /// [`crate::FaultPlan::try_at`] rejects as a typed error.
    pub fn extent(&self) -> Option<usize> {
        match self {
            FaultKind::CorruptRandomAgents { count } => Some(*count),
            FaultKind::CorruptBlock { count, .. } => Some(*count),
            FaultKind::CorruptAll => None,
            FaultKind::CorruptTargets { limit } => Some(*limit),
        }
    }
}

/// Applies [`FaultKind`]s to configurations using a protocol-supplied
/// corruption function.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: ChaCha8Rng,
}

impl FaultInjector {
    /// Creates a fault injector from a seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Applies a fault to `config`.  `corrupt` receives the RNG and the index
    /// of the agent being corrupted and must return its new (arbitrary)
    /// state.  Returns the indices of the corrupted agents.
    ///
    /// # Panics
    ///
    /// [`FaultKind::CorruptTargets`] needs the scenario's target predicate to
    /// choose its victims, which this positional entry point does not have —
    /// route targeted kinds through [`FaultInjector::inject_targeted`]
    /// instead (the scenario layer does).  Calling `inject` with a targeted
    /// kind is an internal invariant violation and panics.
    pub fn inject<S, F>(
        &mut self,
        config: &mut Configuration<S>,
        kind: FaultKind,
        mut corrupt: F,
    ) -> Vec<usize>
    where
        F: FnMut(&mut ChaCha8Rng, usize) -> S,
    {
        let n = config.len();
        let targets: Vec<usize> = match kind {
            FaultKind::CorruptRandomAgents { count } => {
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut self.rng);
                all.truncate(count.min(n));
                all
            }
            FaultKind::CorruptBlock { start, count } => {
                (0..count.min(n)).map(|k| (start + k) % n).collect()
            }
            FaultKind::CorruptAll => (0..n).collect(),
            FaultKind::CorruptTargets { .. } => {
                panic!("CorruptTargets requires the scenario target predicate: use inject_targeted")
            }
        };
        for &i in &targets {
            let new_state = corrupt(&mut self.rng, i);
            config[i] = new_state;
        }
        targets
    }

    /// Applies a [`FaultKind::CorruptTargets`]-style fault: scans the
    /// configuration in agent-index order, corrupts (up to) the first
    /// `limit` agents for which `is_target` holds, and returns their
    /// indices.  Selection is deterministic and consumes no randomness;
    /// only `corrupt` draws from the injector RNG, so an event that finds
    /// no targets leaves the fault RNG stream untouched.
    pub fn inject_targeted<S, F, T>(
        &mut self,
        config: &mut Configuration<S>,
        limit: usize,
        mut is_target: T,
        mut corrupt: F,
    ) -> Vec<usize>
    where
        F: FnMut(&mut ChaCha8Rng, usize) -> S,
        T: FnMut(&S, usize) -> bool,
    {
        let targets: Vec<usize> = (0..config.len())
            .filter(|&i| is_target(&config[i], i))
            .take(limit)
            .collect();
        for &i in &targets {
            let new_state = corrupt(&mut self.rng, i);
            config[i] = new_state;
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn corrupt_random_agents_changes_exactly_count_states() {
        let mut config = Configuration::uniform(20, 0u32);
        let mut inj = FaultInjector::new(1);
        let targets = inj.inject(
            &mut config,
            FaultKind::CorruptRandomAgents { count: 5 },
            |_, _| 99,
        );
        assert_eq!(targets.len(), 5);
        assert_eq!(config.count_where(|&x| x == 99), 5);
        // Targets are distinct.
        let mut t = targets.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn corrupt_block_wraps_around_the_ring() {
        let mut config = Configuration::uniform(6, 0u32);
        let mut inj = FaultInjector::new(2);
        let targets = inj.inject(
            &mut config,
            FaultKind::CorruptBlock { start: 4, count: 4 },
            |_, i| i as u32 + 100,
        );
        assert_eq!(targets, vec![4, 5, 0, 1]);
        assert_eq!(config[4], 104);
        assert_eq!(config[0], 100);
        assert_eq!(config[2], 0);
    }

    #[test]
    fn corrupt_all_touches_every_agent() {
        let mut config = Configuration::uniform(8, 0u32);
        let mut inj = FaultInjector::new(3);
        let targets = inj.inject(&mut config, FaultKind::CorruptAll, |rng, _| {
            rng.gen_range(1..5)
        });
        assert_eq!(targets.len(), 8);
        assert!(config.states().iter().all(|&x| (1..5).contains(&x)));
    }

    #[test]
    fn count_larger_than_population_is_clamped() {
        let mut config = Configuration::uniform(4, 0u32);
        let mut inj = FaultInjector::new(4);
        let targets = inj.inject(
            &mut config,
            FaultKind::CorruptRandomAgents { count: 100 },
            |_, _| 1,
        );
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn targeted_injection_corrupts_the_first_matching_agents_only() {
        // Agents 2, 5, 7 are "leaders"; limit 2 must hit 2 and 5 in index
        // order and leave 7 alone.
        let mut config = Configuration::from_states(vec![0u32, 0, 1, 0, 0, 1, 0, 1]);
        let mut inj = FaultInjector::new(9);
        let targets = inj.inject_targeted(&mut config, 2, |&s, _| s == 1, |_, _| 99);
        assert_eq!(targets, vec![2, 5]);
        assert_eq!(config[2], 99);
        assert_eq!(config[5], 99);
        assert_eq!(config[7], 1, "beyond the limit stays untouched");
    }

    #[test]
    fn targeted_injection_without_targets_is_a_no_op_that_preserves_the_rng() {
        let mut config = Configuration::uniform(6, 0u32);
        let mut inj = FaultInjector::new(11);
        let targets = inj.inject_targeted(&mut config, 4, |&s, _| s == 7, |rng, _| rng.gen());
        assert!(targets.is_empty());
        assert!(config.states().iter().all(|&x| x == 0));
        // The fault RNG stream was not advanced: the next positional
        // injection matches a fresh injector with the same seed.
        let mut fresh = FaultInjector::new(11);
        let mut a = Configuration::uniform(6, 0u32);
        let mut b = Configuration::uniform(6, 0u32);
        let ta = inj.inject(
            &mut a,
            FaultKind::CorruptRandomAgents { count: 3 },
            |r, _| r.gen(),
        );
        let tb = fresh.inject(
            &mut b,
            FaultKind::CorruptRandomAgents { count: 3 },
            |r, _| r.gen(),
        );
        assert_eq!(ta, tb);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    #[should_panic(expected = "inject_targeted")]
    fn positional_injection_rejects_targeted_kinds() {
        let mut config = Configuration::uniform(4, 0u32);
        FaultInjector::new(1).inject(
            &mut config,
            FaultKind::CorruptTargets { limit: 1 },
            |_, _| 1,
        );
    }

    #[test]
    fn extent_reports_the_knob_of_each_kind() {
        assert_eq!(
            FaultKind::CorruptRandomAgents { count: 3 }.extent(),
            Some(3)
        );
        assert_eq!(
            FaultKind::CorruptBlock { start: 9, count: 2 }.extent(),
            Some(2)
        );
        assert_eq!(FaultKind::CorruptAll.extent(), None);
        assert_eq!(FaultKind::CorruptTargets { limit: 1 }.extent(), Some(1));
    }

    #[test]
    fn injection_is_deterministic_for_a_seed() {
        let mut a = Configuration::uniform(16, 0u32);
        let mut b = Configuration::uniform(16, 0u32);
        let ta = FaultInjector::new(7).inject(
            &mut a,
            FaultKind::CorruptRandomAgents { count: 6 },
            |rng, _| rng.gen(),
        );
        let tb = FaultInjector::new(7).inject(
            &mut b,
            FaultKind::CorruptRandomAgents { count: 6 },
            |rng, _| rng.gen(),
        );
        assert_eq!(ta, tb);
        assert_eq!(a.states(), b.states());
    }
}
