//! Configuration-recurrence detection for the erased run loop.
//!
//! The stabilization bench can only say "did not converge within the budget"
//! about a censored cell; this module upgrades that to a checked statement.
//! Two pieces cooperate:
//!
//! * [`ConfigDigest`] — a [`StepObserver`] that maintains a canonical 64-bit
//!   digest of the whole configuration **incrementally**: each interaction
//!   touches two agents, so the observer subtracts their position-salted
//!   [`DynState::digest`]s before the transition and adds them back after,
//!   keeping the per-step cost O(1) in the population size.
//! * [`RecurrenceDetector`] — a Brent-style cycle finder over the stream of
//!   (digest, scheduler phase) pairs.  It snapshots the configuration when
//!   its internal step counter is a power of two and compares every later
//!   step against the snapshot; a digest + phase match is then **confirmed**
//!   by comparing the configurations themselves, so hash collisions can
//!   never produce a false [`RecurrenceCandidate`].
//!
//! A confirmed recurrence says: the run revisited an earlier configuration
//! with the scheduler in the same deterministic phase.  For schedulers that
//! still draw randomly within a phase (e.g. the epoch-partition adversary
//! picking uniformly inside the active block) this alone does not prove a
//! livelock — the revisit may be luck.  Certification closes the gap with an
//! exhaustive closure check over everything the scheduler could still do
//! ([`crate::explore::phase_closure`]); the candidate produced here is the
//! replayable entry point for that check.

use crate::config::Configuration;
use crate::observer::StepObserver;
use crate::protocol::Protocol;
use crate::schedule::Interaction;
use crate::slot::DynState;

/// Incrementally maintained canonical digest of an erased configuration: the
/// wrapping sum over all agents of the position-salted [`DynState::digest`].
///
/// The sum is order-sensitive through the salt (agent `i` contributes
/// `digest(state_i, i)`), so permuting two distinct states changes the
/// value, yet any single-agent update is an O(1) subtract/add.  Equal
/// configurations always produce equal digests; unequal ones may collide,
/// so a digest match is a candidate only — confirm with `==`.
///
/// As a [`StepObserver`] this is only sound for **pure** protocols: an
/// environment (oracle) hook rewrites states out-of-band before
/// `pre_interaction` fires, which would silently desynchronize the sum.
/// Callers gate on [`Simulation::environment_active`] and call
/// [`ConfigDigest::resync`] after any out-of-band rewrite they control
/// (fault injection).
///
/// [`Simulation::environment_active`]: crate::simulation::Simulation::environment_active
#[derive(Clone, Debug)]
pub struct ConfigDigest {
    sum: u64,
    pre: u64,
}

impl ConfigDigest {
    /// Seeds the digest from a full configuration scan.
    pub fn new(states: &[DynState]) -> Self {
        let mut digest = ConfigDigest { sum: 0, pre: 0 };
        digest.resync(states);
        digest
    }

    /// Recomputes the digest from scratch — required after states change
    /// outside the observed interaction path (fault injection).
    pub fn resync(&mut self, states: &[DynState]) {
        self.sum = states
            .iter()
            .enumerate()
            .map(|(i, s)| s.digest(i as u64))
            .fold(0u64, u64::wrapping_add);
    }

    /// The current configuration digest.
    pub fn value(&self) -> u64 {
        self.sum
    }
}

impl<P> StepObserver<P> for ConfigDigest
where
    P: Protocol<State = DynState>,
{
    fn pre_interaction(
        &mut self,
        _protocol: &P,
        interaction: Interaction,
        initiator: &DynState,
        responder: &DynState,
    ) {
        self.pre = initiator
            .digest(interaction.initiator().index() as u64)
            .wrapping_add(responder.digest(interaction.responder().index() as u64));
    }

    fn post_interaction(
        &mut self,
        _protocol: &P,
        interaction: Interaction,
        initiator: &DynState,
        responder: &DynState,
    ) {
        let post = initiator
            .digest(interaction.initiator().index() as u64)
            .wrapping_add(responder.digest(interaction.responder().index() as u64));
        self.sum = self.sum.wrapping_sub(self.pre).wrapping_add(post);
    }
}

/// A confirmed configuration recurrence: the run was in `config` at
/// simulation step `entry_step` and returned to it, bit-for-bit, `period`
/// steps later with the scheduler in the same deterministic phase.
///
/// Confirmed means the stored configurations compared equal with `==` —
/// `config_digest` is carried along for reports, not as the evidence.
#[derive(Clone, Debug)]
pub struct RecurrenceCandidate {
    /// Simulation step at which the recurrent configuration was first
    /// snapshotted (it is provably part of the recurrent class).
    pub entry_step: u64,
    /// Steps between the snapshot and the confirmed revisit.
    pub period: u64,
    /// The configuration digest at both visits.
    pub config_digest: u64,
    /// The scheduler phase at both visits (`None` for memoryless
    /// schedulers).
    pub phase: Option<u64>,
    /// The recurrent configuration itself, for replay and closure checks.
    pub config: Configuration<DynState>,
}

/// One retained snapshot of the detector.
#[derive(Clone, Debug)]
struct Snapshot {
    /// Detector-local step count (since the last reset) at snapshot time.
    t: u64,
    /// Simulation step at snapshot time.
    step: u64,
    digest: u64,
    phase: Option<u64>,
    config: Configuration<DynState>,
}

/// Brent-style cycle finder over the (digest, phase) stream of a run.
///
/// The detector keeps exactly **one** configuration snapshot, re-taken
/// whenever its internal step counter is a power of two.  Every observed
/// step costs one `u64` + `Option<u64>` comparison; a configuration clone
/// happens only at the O(log T) snapshot points, so the fast path stays
/// effectively unobserved.  A cycle with tail `μ` and period `λ` is
/// detected within O(μ + λ) steps (the classic power-of-two argument: the
/// first snapshot taken inside the cycle with `t ≥ λ` catches it).
///
/// [`RecurrenceDetector::reset`] discards the snapshot — callers reset
/// after any out-of-band state change (fault injection), so a candidate
/// always describes the fault-free suffix of the run.
#[derive(Clone, Debug, Default)]
pub struct RecurrenceDetector {
    snapshot: Option<Snapshot>,
    /// Steps observed since the last reset.
    t: u64,
}

impl RecurrenceDetector {
    /// Creates a detector with no snapshot.
    pub fn new() -> Self {
        RecurrenceDetector::default()
    }

    /// Discards all detector state (snapshot and step counter).
    pub fn reset(&mut self) {
        self.snapshot = None;
        self.t = 0;
    }

    /// Observes the configuration after one step: `digest` and `phase` are
    /// the cheap per-step fingerprint, `step` is the simulation step count,
    /// and `config` is only inspected (and cloned) when the fingerprint
    /// matches the snapshot or a new snapshot is due.
    ///
    /// Returns a confirmed recurrence the first time the configuration
    /// provably repeats at the same phase.
    pub fn observe(
        &mut self,
        digest: u64,
        phase: Option<u64>,
        step: u64,
        config: &Configuration<DynState>,
    ) -> Option<RecurrenceCandidate> {
        self.t += 1;
        if let Some(snap) = &self.snapshot {
            if snap.digest == digest && snap.phase == phase && &snap.config == config {
                return Some(RecurrenceCandidate {
                    entry_step: snap.step,
                    period: self.t - snap.t,
                    config_digest: digest,
                    phase,
                    config: snap.config.clone(),
                });
            }
        }
        if self.t.is_power_of_two() {
            self.snapshot = Some(Snapshot {
                t: self.t,
                step,
                digest,
                phase,
                config: config.clone(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DynProtocol;

    /// A pure protocol over `u32` states: initiator copies onto responder.
    #[derive(Clone, Debug)]
    struct Copycat;
    impl Protocol for Copycat {
        type State = u32;
        fn interact(&self, initiator: &mut u32, responder: &mut u32) {
            *responder = *initiator;
        }
    }

    fn erased(values: &[u32]) -> Configuration<DynState> {
        Configuration::from_states(values.iter().map(|&v| DynState::new(v)).collect())
    }

    #[test]
    fn incremental_digest_matches_a_full_resync() {
        let protocol = DynProtocol::erase_protocol(Copycat);
        let mut config = erased(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut digest = ConfigDigest::new(config.states());
        // Apply a few interactions by hand, driving the observer exactly as
        // the simulation would.
        for (i, r) in [(0usize, 1usize), (4, 2), (7, 0), (1, 6)] {
            let interaction = Interaction::new(i, r);
            digest.pre_interaction(
                &protocol,
                interaction,
                &config.states()[i],
                &config.states()[r],
            );
            let copied = config.states()[i].clone();
            config.states_mut()[r] = copied;
            digest.post_interaction(
                &protocol,
                interaction,
                &config.states()[i],
                &config.states()[r],
            );
            let expected = ConfigDigest::new(config.states()).value();
            assert_eq!(digest.value(), expected, "after interaction ({i}, {r})");
        }
    }

    #[test]
    fn digest_is_position_sensitive() {
        let a = ConfigDigest::new(erased(&[1, 2]).states()).value();
        let b = ConfigDigest::new(erased(&[2, 1]).states()).value();
        assert_ne!(a, b, "swapping distinct states must change the digest");
    }

    #[test]
    fn detector_finds_a_cycle_after_a_tail() {
        // Configurations: 5-step tail 100..104, then a 3-cycle 200, 201, 202.
        let mut detector = RecurrenceDetector::new();
        let config_for = |v: u32| erased(&[v]);
        let mut hit = None;
        for step in 1..=64u64 {
            let v = if step <= 5 {
                99 + step as u32
            } else {
                200 + ((step - 6) % 3) as u32
            };
            let config = config_for(v);
            let digest = ConfigDigest::new(config.states()).value();
            if let Some(candidate) = detector.observe(digest, None, step, &config) {
                hit = Some((step, candidate));
                break;
            }
        }
        let (at, candidate) = hit.expect("the cycle must be detected");
        assert_eq!(candidate.period % 3, 0, "period must be a cycle multiple");
        assert!(
            candidate.entry_step > 5,
            "snapshot must lie inside the cycle"
        );
        assert!(
            at <= 32,
            "Brent detects a (5, 3) cycle well within 32 steps"
        );
        assert_eq!(
            candidate.config,
            config_for(200 + ((candidate.entry_step - 6) % 3) as u32),
            "the candidate carries the recurrent configuration"
        );
    }

    #[test]
    fn digest_collisions_are_rejected_by_exact_comparison() {
        let mut detector = RecurrenceDetector::new();
        // Same fake digest every step, but the configurations never repeat:
        // the detector must never confirm.
        for step in 1..=128u64 {
            let config = erased(&[step as u32]);
            assert!(detector.observe(0xDEAD, None, step, &config).is_none());
        }
    }

    #[test]
    fn phase_mismatch_blocks_confirmation() {
        let mut detector = RecurrenceDetector::new();
        let config = erased(&[7]);
        let digest = ConfigDigest::new(config.states()).value();
        // Identical configuration every step, but the phase never returns to
        // the snapshot's value.
        for step in 1..=64u64 {
            assert!(detector
                .observe(digest, Some(step), step, &config)
                .is_none());
        }
        // With a periodic phase the very same stream confirms quickly.
        detector.reset();
        let mut confirmed = false;
        for step in 1..=64u64 {
            if detector
                .observe(digest, Some(step % 4), step, &config)
                .is_some()
            {
                confirmed = true;
                break;
            }
        }
        assert!(confirmed, "periodic phase + fixed config must recur");
    }

    #[test]
    fn reset_discards_the_snapshot() {
        let mut detector = RecurrenceDetector::new();
        let config = erased(&[1]);
        let digest = ConfigDigest::new(config.states()).value();
        assert!(detector.observe(digest, None, 1, &config).is_none());
        detector.reset();
        // Without the reset this second observation would confirm against
        // the snapshot from step 1.
        assert!(detector.observe(digest, None, 2, &config).is_none());
    }
}
