//! Configurations: the global state of a population.
//!
//! A configuration `C : V → Q` assigns a protocol state to every agent
//! (Section 2 of the paper).  [`Configuration`] is a thin, index-addressed
//! wrapper over `Vec<S>` with ring-aware helpers (left/right neighbour
//! lookups) used heavily by the structural safe-configuration checkers in
//! `ssle-core`.

use std::fmt;

use crate::agent::AgentId;

/// The global state of a population: one protocol state per agent.
///
/// Agents are indexed `0..n`; on a ring, index `i` is the paper's agent
/// `u_i`, its *left* neighbour is `u_{i-1 mod n}` and its *right* neighbour
/// is `u_{i+1 mod n}`.
#[derive(Clone, PartialEq, Eq)]
pub struct Configuration<S> {
    states: Vec<S>,
}

impl<S> Configuration<S> {
    /// Builds a configuration directly from a vector of states.
    pub fn from_states(states: Vec<S>) -> Self {
        Configuration { states }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the population is empty (only possible for
    /// artificially constructed configurations; simulations require `n >= 2`).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Immutable view of all states, indexed by agent.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of all states, indexed by agent.
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Consumes the configuration and returns the underlying vector.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// State of agent `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: AgentId) -> &S {
        &self.states[id.index()]
    }

    /// Mutable state of agent `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state_mut(&mut self, id: AgentId) -> &mut S {
        &mut self.states[id.index()]
    }

    /// State of the agent at raw index `i`.
    pub fn get(&self, i: usize) -> Option<&S> {
        self.states.get(i)
    }

    /// State of agent `u_{i mod n}` — convenient for the paper's "indices are
    /// taken modulo n" convention.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is empty.
    pub fn get_mod(&self, i: usize) -> &S {
        assert!(!self.states.is_empty(), "configuration is empty");
        &self.states[i % self.states.len()]
    }

    /// State of the left (counter-clockwise) neighbour of agent `i` on the
    /// ring.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is empty.
    pub fn left_of(&self, i: usize) -> &S {
        let n = self.states.len();
        assert!(n > 0, "configuration is empty");
        &self.states[(i + n - 1) % n]
    }

    /// State of the right (clockwise) neighbour of agent `i` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is empty.
    pub fn right_of(&self, i: usize) -> &S {
        let n = self.states.len();
        assert!(n > 0, "configuration is empty");
        &self.states[(i + 1) % n]
    }

    /// Iterates over `(AgentId, &state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AgentId, &S)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (AgentId::new(i), s))
    }

    /// Applies a function to every state in place.
    pub fn map_in_place<F: FnMut(usize, &mut S)>(&mut self, mut f: F) {
        for (i, s) in self.states.iter_mut().enumerate() {
            f(i, s);
        }
    }

    /// Counts the agents whose state satisfies a predicate.
    pub fn count_where<F: Fn(&S) -> bool>(&self, pred: F) -> usize {
        self.states.iter().filter(|s| pred(s)).count()
    }

    /// Returns the indices of the agents whose state satisfies a predicate.
    pub fn indices_where<F: Fn(&S) -> bool>(&self, pred: F) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| if pred(s) { Some(i) } else { None })
            .collect()
    }

    /// Rotates the configuration so that the agent currently at index
    /// `new_zero` becomes agent 0.  This implements the paper's recurring
    /// "we assume without loss of generality that `u_0` is the unique leader"
    /// device, used by tests and by the safe-configuration checkers.
    pub fn rotated(&self, new_zero: usize) -> Self
    where
        S: Clone,
    {
        let n = self.states.len();
        if n == 0 {
            return Configuration { states: Vec::new() };
        }
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            states.push(self.states[(new_zero + i) % n].clone());
        }
        Configuration { states }
    }
}

impl<S: Clone> Configuration<S> {
    /// Builds a configuration where every agent has the same state.
    pub fn uniform(n: usize, state: S) -> Self {
        Configuration {
            states: vec![state; n],
        }
    }
}

impl<S> Configuration<S> {
    /// Builds a configuration from a function of the agent index.
    pub fn from_fn<F: FnMut(usize) -> S>(n: usize, f: F) -> Self {
        Configuration {
            states: (0..n).map(f).collect(),
        }
    }
}

impl<S: fmt::Debug> fmt::Debug for Configuration<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Configuration")
            .field("n", &self.states.len())
            .field("states", &self.states)
            .finish()
    }
}

impl<S> From<Vec<S>> for Configuration<S> {
    fn from(states: Vec<S>) -> Self {
        Configuration { states }
    }
}

impl<S> FromIterator<S> for Configuration<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Configuration {
            states: iter.into_iter().collect(),
        }
    }
}

impl<S> std::ops::Index<usize> for Configuration<S> {
    type Output = S;
    fn index(&self, i: usize) -> &S {
        &self.states[i]
    }
}

impl<S> std::ops::IndexMut<usize> for Configuration<S> {
    fn index_mut(&mut self, i: usize) -> &mut S {
        &mut self.states[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_from_fn() {
        let c = Configuration::uniform(4, 7u32);
        assert_eq!(c.len(), 4);
        assert!(c.states().iter().all(|&x| x == 7));

        let d = Configuration::from_fn(5, |i| i * i);
        assert_eq!(d.states(), &[0, 1, 4, 9, 16]);
    }

    #[test]
    fn neighbour_lookups_wrap_around() {
        let c = Configuration::from_states(vec![10, 20, 30, 40]);
        assert_eq!(*c.left_of(0), 40);
        assert_eq!(*c.right_of(3), 10);
        assert_eq!(*c.left_of(2), 20);
        assert_eq!(*c.right_of(2), 40);
        assert_eq!(*c.get_mod(6), 30);
    }

    #[test]
    fn rotation_relabels_agents() {
        let c = Configuration::from_states(vec![0, 1, 2, 3, 4]);
        let r = c.rotated(3);
        assert_eq!(r.states(), &[3, 4, 0, 1, 2]);
        // Rotating by 0 and by n are identities.
        assert_eq!(c.rotated(0).states(), c.states());
        assert_eq!(c.rotated(5).states(), c.states());
    }

    #[test]
    fn rotation_preserves_ring_adjacency() {
        let c = Configuration::from_states(vec![0, 1, 2, 3, 4, 5]);
        let r = c.rotated(2);
        // The right neighbour of any value must be the same in both.
        for i in 0..c.len() {
            let v = c[i];
            let pos_in_r = r.states().iter().position(|&x| x == v).unwrap();
            assert_eq!(*c.right_of(i), *r.right_of(pos_in_r));
        }
    }

    #[test]
    fn counting_and_filtering() {
        let c = Configuration::from_states(vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(c.count_where(|&x| x % 2 == 0), 3);
        assert_eq!(c.indices_where(|&x| x > 4), vec![4, 5]);
    }

    #[test]
    fn map_in_place_and_indexing() {
        let mut c = Configuration::from_states(vec![1, 2, 3]);
        c.map_in_place(|i, s| *s += i as i32);
        assert_eq!(c.states(), &[1, 3, 5]);
        c[0] = 9;
        assert_eq!(c[0], 9);
        assert_eq!(*c.state(AgentId::new(0)), 9);
        *c.state_mut(AgentId::new(1)) = 11;
        assert_eq!(c[1], 11);
    }

    #[test]
    fn iterators_and_conversions() {
        let c: Configuration<u8> = (0..4u8).collect();
        assert_eq!(c.len(), 4);
        let pairs: Vec<_> = c.iter().map(|(a, &s)| (a.index(), s)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        let v = c.into_states();
        assert_eq!(v, vec![0, 1, 2, 3]);
        let c2: Configuration<u8> = Configuration::from(vec![9, 9]);
        assert_eq!(c2.len(), 2);
        assert!(!c2.is_empty());
        assert!(Configuration::<u8>::from_states(vec![]).is_empty());
    }

    #[test]
    fn get_is_checked() {
        let c = Configuration::from_states(vec![1, 2, 3]);
        assert_eq!(c.get(2), Some(&3));
        assert_eq!(c.get(3), None);
    }
}
