//! Schedulers.
//!
//! A scheduler decides which interaction occurs at each step.  The model of
//! the paper uses the **uniformly random scheduler** `Γ = Γ_0, Γ_1, ...`
//! where each `Γ_t` is an arc chosen uniformly at random
//! ([`RandomScheduler`]).  Deterministic schedulers ([`SequenceScheduler`],
//! [`RoundRobinScheduler`]) replay fixed interaction sequences; they are used
//! by tests that reproduce the proof schedules (e.g. the `seq_R · seq_L`
//! sweeps of Lemma 3.5) and by the Figure 2 token-trajectory experiment.

use rand::Rng;

use crate::error::{PopulationError, Result};
use crate::graph::InteractionGraph;
use crate::schedule::{Interaction, InteractionSeq};

/// Chooses the interaction for each step of an execution.
pub trait Scheduler<G: InteractionGraph>: Send {
    /// Returns the interaction for the next step.
    ///
    /// # Errors
    ///
    /// Deterministic schedulers return [`PopulationError::ScheduleExhausted`]
    /// once their sequence runs out; the random scheduler never fails.
    fn next_interaction<R: Rng + ?Sized>(&mut self, graph: &G, rng: &mut R) -> Result<Interaction>;

    /// Number of interactions remaining, if bounded.
    fn remaining(&self) -> Option<u64> {
        None
    }

    /// The scheduler's deterministic phase, if it has one: a value that,
    /// together with the current configuration, determines the distribution
    /// of every future choice.  Periodic schedulers return their step counter
    /// modulo the period; memoryless schedulers (the default) return `None`.
    ///
    /// Consumed by configuration-recurrence detection: a configuration seen
    /// twice at the same phase is a recurrence candidate.
    fn phase(&self) -> Option<u64> {
        None
    }
}

/// The uniformly random scheduler of the population-protocol model: at each
/// step one arc of the interaction graph is chosen uniformly at random.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RandomScheduler;

impl RandomScheduler {
    /// Creates a uniformly random scheduler.
    pub fn new() -> Self {
        RandomScheduler
    }
}

impl<G: InteractionGraph> Scheduler<G> for RandomScheduler {
    fn next_interaction<R: Rng + ?Sized>(&mut self, graph: &G, rng: &mut R) -> Result<Interaction> {
        Ok(graph.sample(rng))
    }
}

/// A deterministic scheduler that replays a fixed [`InteractionSeq`].
///
/// Used to reproduce the explicit schedules from the paper's proofs (the
/// paper reasons about events of the form "sequence `s` occurs within `ℓ`
/// steps", Definition 2.2); a test can apply the sequence directly and then
/// assert the post-condition claimed by the corresponding lemma.
#[derive(Clone, Debug)]
pub struct SequenceScheduler {
    interactions: Vec<Interaction>,
    cursor: usize,
}

impl SequenceScheduler {
    /// Creates a scheduler that replays `seq` once.
    pub fn new(seq: InteractionSeq) -> Self {
        SequenceScheduler {
            interactions: seq.into_iter().collect(),
            cursor: 0,
        }
    }

    /// Number of interactions already dispensed.
    pub fn dispensed(&self) -> usize {
        self.cursor
    }

    /// Returns `true` once every interaction has been dispensed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.interactions.len()
    }
}

impl<G: InteractionGraph> Scheduler<G> for SequenceScheduler {
    fn next_interaction<R: Rng + ?Sized>(
        &mut self,
        _graph: &G,
        _rng: &mut R,
    ) -> Result<Interaction> {
        if self.cursor >= self.interactions.len() {
            return Err(PopulationError::ScheduleExhausted {
                available: self.interactions.len() as u64,
            });
        }
        let interaction = self.interactions[self.cursor];
        self.cursor += 1;
        Ok(interaction)
    }

    fn remaining(&self) -> Option<u64> {
        Some((self.interactions.len() - self.cursor) as u64)
    }
}

/// A deterministic scheduler that cycles through every arc of the graph in a
/// fixed order, forever.  Useful as a crude "globally fair" scheduler for
/// sanity tests.
#[derive(Clone, Debug)]
pub struct RoundRobinScheduler {
    arcs: Vec<Interaction>,
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler over the arcs of `graph`.
    pub fn new<G: InteractionGraph>(graph: &G) -> Self {
        RoundRobinScheduler {
            arcs: graph.arcs(),
            cursor: 0,
        }
    }
}

impl<G: InteractionGraph> Scheduler<G> for RoundRobinScheduler {
    fn next_interaction<R: Rng + ?Sized>(
        &mut self,
        _graph: &G,
        _rng: &mut R,
    ) -> Result<Interaction> {
        if self.arcs.is_empty() {
            return Err(PopulationError::EmptyArcSet);
        }
        let interaction = self.arcs[self.cursor];
        self.cursor = (self.cursor + 1) % self.arcs.len();
        Ok(interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirectedRing;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_scheduler_only_emits_graph_arcs() {
        let ring = DirectedRing::new(6).unwrap();
        let mut sched = RandomScheduler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let e = sched.next_interaction(&ring, &mut rng).unwrap();
            assert!(ring.is_arc(e.initiator().index(), e.responder().index()));
        }
        assert_eq!(Scheduler::<DirectedRing>::remaining(&sched), None);
    }

    #[test]
    fn random_scheduler_hits_every_arc() {
        let ring = DirectedRing::new(8).unwrap();
        let mut sched = RandomScheduler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..2000 {
            let e = sched.next_interaction(&ring, &mut rng).unwrap();
            seen[e.initiator().index()] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "every arc should be scheduled eventually"
        );
    }

    #[test]
    fn sequence_scheduler_replays_in_order_then_exhausts() {
        let ring = DirectedRing::new(4).unwrap();
        let seq = InteractionSeq::seq_r(0, 4, 4);
        let mut sched = SequenceScheduler::new(seq.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(Scheduler::<DirectedRing>::remaining(&sched), Some(4));
        for expected in seq.iter() {
            let got = sched.next_interaction(&ring, &mut rng).unwrap();
            assert_eq!(&got, expected);
        }
        assert!(sched.is_exhausted());
        assert_eq!(sched.dispensed(), 4);
        let err = sched.next_interaction(&ring, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            PopulationError::ScheduleExhausted { available: 4 }
        ));
    }

    #[test]
    fn round_robin_cycles_through_all_arcs() {
        let ring = DirectedRing::new(3).unwrap();
        let mut sched = RoundRobinScheduler::new(&ring);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(sched.next_interaction(&ring, &mut rng).unwrap());
        }
        assert_eq!(&seen[0..3], ring.arcs().as_slice());
        assert_eq!(&seen[3..6], ring.arcs().as_slice());
    }
}
