//! Per-step observers: O(1) incremental instrumentation of the hot loop.
//!
//! Measurement code used to re-scan the whole configuration after every
//! interaction (`leader_indices` is `O(n)` and allocates), which turned the
//! engine's `O(1)` step into an `O(n)` step as soon as anything watched the
//! run.  A [`StepObserver`] instead receives just the **two touched states**
//! of each interaction, before and after the transition — everything an
//! incremental statistic needs, at constant cost per step.
//!
//! Observers are passed explicitly into the observed run methods
//! ([`crate::simulation::Simulation::step_observed`],
//! [`crate::simulation::Simulation::run_steps_observed`]), so the unobserved
//! hot loop pays nothing: [`NoObserver`]'s empty hooks inline away.
//!
//! [`LeaderCounter`] is the workhorse observer: it maintains the number of
//! agents outputting `L` as a running counter updated from the two touched
//! agents only, plus a per-step "leader set changed" flag.  It powers
//! `Simulation::run_tracking_leader_changes` and
//! `Scenario::leader_trajectory`.
//!
//! Incremental observation is only sound when interactions are the *only*
//! thing mutating states between hooks.  Oracle protocols
//! ([`Protocol::HAS_ENVIRONMENT`]) mutate arbitrary states through the
//! environment hook, so the callers above fall back to full recounts for
//! them (see [`crate::simulation::Simulation::environment_active`]).

use crate::protocol::{LeaderElection, Protocol};
use crate::schedule::Interaction;

/// Hooks invoked around every observed interaction.
///
/// `pre_interaction` sees the two scheduled states *before* the transition,
/// `post_interaction` sees the same two slots *after* it.  Both are called
/// with the protocol so observers can evaluate output maps.
pub trait StepObserver<P: Protocol> {
    /// Called immediately before the transition function runs.
    fn pre_interaction(
        &mut self,
        protocol: &P,
        interaction: Interaction,
        initiator: &P::State,
        responder: &P::State,
    );

    /// Called immediately after the transition function ran.
    fn post_interaction(
        &mut self,
        protocol: &P,
        interaction: Interaction,
        initiator: &P::State,
        responder: &P::State,
    );
}

/// The trivial observer: both hooks are empty and compile away, so
/// `apply_observed::<NoObserver>` *is* the unobserved hot loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoObserver;

impl<P: Protocol> StepObserver<P> for NoObserver {
    #[inline(always)]
    fn pre_interaction(&mut self, _: &P, _: Interaction, _: &P::State, _: &P::State) {}

    #[inline(always)]
    fn post_interaction(&mut self, _: &P, _: Interaction, _: &P::State, _: &P::State) {}
}

/// Incrementally maintained leader statistics of a run.
///
/// Seeded with one full `O(n)` count ([`LeaderCounter::new`] /
/// [`LeaderCounter::resync`]), then updated in `O(1)` per observed step from
/// the leader bits of the two touched agents.  Because an interaction
/// mutates only those two agents, the leader **set** changed iff one of
/// their bits flipped — which also yields [`LeaderCounter::last_step_changed`]
/// without comparing index vectors.
#[derive(Clone, Copy, Debug)]
pub struct LeaderCounter {
    count: usize,
    pre_initiator: bool,
    pre_responder: bool,
    changed: bool,
}

impl LeaderCounter {
    /// Seeds the counter with a full count over `states`.
    pub fn new<P: LeaderElection>(protocol: &P, states: &[P::State]) -> Self {
        LeaderCounter {
            count: protocol.count_leaders(states),
            pre_initiator: false,
            pre_responder: false,
            changed: false,
        }
    }

    /// Re-seeds the counter after out-of-band state mutation (fault
    /// injection, oracle hooks, direct `config_mut` edits).
    pub fn resync<P: LeaderElection>(&mut self, protocol: &P, states: &[P::State]) {
        self.count = protocol.count_leaders(states);
        self.changed = false;
    }

    /// The current number of agents outputting `L`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` if the most recent observed step changed the leader set.
    pub fn last_step_changed(&self) -> bool {
        self.changed
    }
}

/// An observer adapter that additionally records **which** interaction the
/// last observed step executed, forwarding both hooks to the inner observer.
///
/// Single-step entry points return the interaction, but the burst APIs
/// ([`crate::simulation::Simulation::run_steps_observed`]) discard it;
/// wrapping the burst's real observer in `Recorded` recovers the last
/// scheduled pair — e.g. to know which agents an adversary should rewrite at
/// a segment boundary — without switching the burst to per-step dispatch.
#[derive(Clone, Copy, Debug)]
pub struct Recorded<O> {
    inner: O,
    last: Option<Interaction>,
}

impl<O> Recorded<O> {
    /// Wraps `inner`, with no interaction recorded yet.
    pub fn new(inner: O) -> Self {
        Recorded { inner, last: None }
    }

    /// The interaction of the most recent observed step, if any.
    pub fn last_interaction(&self) -> Option<Interaction> {
        self.last
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The wrapped observer, mutably (e.g. to resync a [`LeaderCounter`]).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }
}

impl<P: Protocol, O: StepObserver<P>> StepObserver<P> for Recorded<O> {
    #[inline]
    fn pre_interaction(
        &mut self,
        protocol: &P,
        interaction: Interaction,
        initiator: &P::State,
        responder: &P::State,
    ) {
        self.inner
            .pre_interaction(protocol, interaction, initiator, responder);
    }

    #[inline]
    fn post_interaction(
        &mut self,
        protocol: &P,
        interaction: Interaction,
        initiator: &P::State,
        responder: &P::State,
    ) {
        self.last = Some(interaction);
        self.inner
            .post_interaction(protocol, interaction, initiator, responder);
    }
}

impl<P: LeaderElection> StepObserver<P> for LeaderCounter {
    #[inline]
    fn pre_interaction(
        &mut self,
        protocol: &P,
        _interaction: Interaction,
        initiator: &P::State,
        responder: &P::State,
    ) {
        self.pre_initiator = protocol.is_leader(initiator);
        self.pre_responder = protocol.is_leader(responder);
    }

    #[inline]
    fn post_interaction(
        &mut self,
        protocol: &P,
        _interaction: Interaction,
        initiator: &P::State,
        responder: &P::State,
    ) {
        let post_initiator = protocol.is_leader(initiator);
        let post_responder = protocol.is_leader(responder);
        self.count = self.count + post_initiator as usize + post_responder as usize
            - self.pre_initiator as usize
            - self.pre_responder as usize;
        self.changed = post_initiator != self.pre_initiator || post_responder != self.pre_responder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Toggle;
    impl Protocol for Toggle {
        type State = bool;
        fn interact(&self, initiator: &mut bool, responder: &mut bool) {
            // Leadership flows to the initiator.
            if *responder {
                *responder = false;
                *initiator = true;
            }
        }
    }
    impl LeaderElection for Toggle {
        fn is_leader(&self, s: &bool) -> bool {
            *s
        }
    }

    #[test]
    fn counter_tracks_touched_agents_only() {
        let p = Toggle;
        let mut states = vec![false, true, true];
        let mut counter = LeaderCounter::new(&p, &states);
        assert_eq!(counter.count(), 2);
        assert!(!counter.last_step_changed());

        // Interaction (0, 1): leadership moves 1 -> 0; count stays 2 but the
        // set changed.
        let (a, b) = (states[0], states[1]);
        counter.pre_interaction(&p, Interaction::new(0, 1), &a, &b);
        let (mut a, mut b) = (a, b);
        p.interact(&mut a, &mut b);
        states[0] = a;
        states[1] = b;
        counter.post_interaction(&p, Interaction::new(0, 1), &a, &b);
        assert_eq!(counter.count(), 2);
        assert!(counter.last_step_changed());

        // Interaction (0, 2): 2 is demoted... with Toggle, leadership moves,
        // 0 stays leader: count drops by one.
        let (a, b) = (states[0], states[2]);
        counter.pre_interaction(&p, Interaction::new(0, 2), &a, &b);
        let (mut a, mut b) = (a, b);
        p.interact(&mut a, &mut b);
        counter.post_interaction(&p, Interaction::new(0, 2), &a, &b);
        assert_eq!(counter.count(), 1);
        assert!(counter.last_step_changed());
    }

    #[test]
    fn no_change_steps_clear_the_flag() {
        let p = Toggle;
        let mut counter = LeaderCounter::new(&p, &[true, false]);
        counter.pre_interaction(&p, Interaction::new(0, 1), &true, &false);
        counter.post_interaction(&p, Interaction::new(0, 1), &true, &false);
        assert!(!counter.last_step_changed());
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn recorded_exposes_the_last_interaction_and_forwards_hooks() {
        let p = Toggle;
        let mut rec = Recorded::new(LeaderCounter::new(&p, &[false, true]));
        assert_eq!(rec.last_interaction(), None);
        let (a, b) = (false, true);
        rec.pre_interaction(&p, Interaction::new(0, 1), &a, &b);
        let (mut a, mut b) = (a, b);
        p.interact(&mut a, &mut b);
        rec.post_interaction(&p, Interaction::new(0, 1), &a, &b);
        assert_eq!(rec.last_interaction(), Some(Interaction::new(0, 1)));
        // The inner counter saw the same step.
        assert_eq!(rec.inner().count(), 1);
        assert!(rec.inner().last_step_changed());
        rec.inner_mut().resync(&p, &[false, false]);
        assert_eq!(rec.inner().count(), 0);
    }

    #[test]
    fn resync_reseeds_after_out_of_band_mutation() {
        let p = Toggle;
        let mut counter = LeaderCounter::new(&p, &[true, true]);
        assert_eq!(counter.count(), 2);
        counter.resync(&p, &[false, false]);
        assert_eq!(counter.count(), 0);
        assert!(!counter.last_step_changed());
    }
}
