//! Population-protocol simulation substrate.
//!
//! This crate implements the computational model of Section 2 of the paper
//! *"A Near Time-optimal Population Protocol for Self-stabilizing Leader
//! Election on Rings with a Poly-logarithmic Number of States"*
//! (Yokota, Sudo, Ooshita, Masuzawa; PODC 2023):
//!
//! * a **population** is a weakly connected digraph whose nodes are anonymous
//!   finite-state agents and whose arcs are the possible pairwise
//!   interactions ([`graph`]);
//! * a **protocol** is a deterministic pairwise transition function together
//!   with an output map ([`protocol::Protocol`]);
//! * a **configuration** maps every agent to a state ([`config::Configuration`]);
//! * the **uniformly random scheduler** picks one arc uniformly at random at
//!   every step ([`scheduler::RandomScheduler`]); deterministic sequence
//!   schedulers reproduce the `seq_R`/`seq_L` interaction sequences used in
//!   the paper's proofs ([`schedule`]);
//! * the **execution engine** ([`simulation::Simulation`]) advances a
//!   configuration under a scheduler, measures convergence against arbitrary
//!   criteria ([`convergence`]), records traces ([`trace`]), injects faults
//!   ([`faults`]) and runs batches of trials in parallel ([`batch`]);
//! * the **scenario layer** ([`scenario`]) composes any protocol (type-erased
//!   behind [`scenario::DynProtocol`]), any graph family, an initial-condition
//!   generator, an optional fault plan, a stop criterion and a step budget
//!   into one declarative, runnable [`scenario::Scenario`], swept over
//!   multi-axis grids ([`sweep`]).
//!
//! The crate is protocol-agnostic: the paper's protocol `P_PL` and the
//! baseline protocols live in the `ssle-core` and `ssle-baselines` crates and
//! only depend on the abstractions defined here.
//!
//! # Quick example
//!
//! ```
//! use population::prelude::*;
//!
//! /// A toy (non-self-stabilizing) leader election: every agent starts as a
//! /// leader and a leader meeting another leader demotes the responder.
//! #[derive(Clone, Debug)]
//! struct Fratricide;
//!
//! impl Protocol for Fratricide {
//!     type State = bool; // true = leader
//!     fn interact(&self, initiator: &mut bool, responder: &mut bool) {
//!         if *initiator && *responder {
//!             *responder = false;
//!         }
//!     }
//! }
//!
//! impl LeaderElection for Fratricide {
//!     fn is_leader(&self, state: &bool) -> bool {
//!         *state
//!     }
//! }
//!
//! let graph = CompleteGraph::new(8);
//! let config = Configuration::uniform(8, true);
//! let mut sim = Simulation::new(Fratricide, graph, config, 42);
//! let report = sim.run_until(
//!     |p: &Fratricide, c: &Configuration<bool>| p.count_leaders(c.states()) == 1,
//!     1,
//!     100_000,
//! );
//! assert!(report.converged());
//! ```

// `unsafe` is denied crate-wide and allowed in exactly one audited module:
// [`slot`], the inline state-slot storage behind the erased hot loop.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod batch;
pub mod config;
pub mod convergence;
pub mod error;
pub mod explore;
pub mod faults;
pub mod graph;
pub mod init;
pub mod observer;
pub mod protocol;
pub mod recurrence;
pub mod scenario;
pub mod schedule;
pub mod scheduler;
pub mod simulation;
pub mod slot;
pub mod stats;
pub mod sweep;
pub mod trace;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::agent::AgentId;
    pub use crate::batch::{
        group_by_size, BatchRunner, BatchSummary, Outcome, Trial, TrialOutcome,
    };
    pub use crate::config::Configuration;
    pub use crate::convergence::{ConvergenceReport, Criterion, StableOutputs};
    pub use crate::error::{PopulationError, Result};
    pub use crate::explore::{
        explore, phase_closure, ArcPhases, ClosureLimits, ClosureOutcome, ExploreLimits,
        ExploreVerdict, Explored,
    };
    pub use crate::faults::{FaultInjector, FaultKind};
    pub use crate::graph::{
        graph_rng_seed, preferential_attachment, random_regular, ring_neighbors, small_world,
        torus, torus_dims, weak_reach, weakly_connected, ArbitraryGraph, CompleteGraph,
        DirectedRing, InteractionGraph, UndirectedRing,
    };
    pub use crate::init::Initializer;
    pub use crate::observer::{LeaderCounter, NoObserver, Recorded, StepObserver};
    pub use crate::protocol::{LeaderElection, LeaderOutput, Protocol};
    pub use crate::recurrence::{ConfigDigest, RecurrenceCandidate, RecurrenceDetector};
    pub use crate::scenario::{
        downcast_config, AnyGraph, ByzantineWindow, ChurnEvent, ChurnKind, ChurnPlan, DetectedRun,
        DynLeaderElection, DynProtocol, DynScheduler, DynState, DynStop, FaultEvent, FaultPlan,
        GraphFamily, PreparedScenario, Scenario, ScenarioBuilder, ScenarioRun, SchedulerFamily,
        TriggeredFault,
    };
    pub use crate::schedule::{Interaction, InteractionSeq};
    pub use crate::scheduler::{
        RandomScheduler, RoundRobinScheduler, Scheduler, SequenceScheduler,
    };
    pub use crate::simulation::Simulation;
    pub use crate::stats::RunStats;
    pub use crate::sweep::{SweepAxis, SweepGrid, SweepPoint};
    pub use crate::trace::{Event, Trace};
}

pub use prelude::*;
