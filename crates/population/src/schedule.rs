//! Interactions and deterministic interaction sequences.
//!
//! The paper's proofs repeatedly reason about specific *interaction
//! sequences*: `seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}` (a clockwise
//! sweep) and `seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}` (a
//! counter-clockwise sweep), their concatenation `s · s'` and repetition
//! `s^i` (Section 2).  [`InteractionSeq`] provides exactly these operations,
//! which lets deterministic tests replay the schedules used in the proofs of
//! Lemmas 3.5, 4.9 and 4.12 and check the claimed post-conditions exactly.

use serde::{Deserialize, Serialize};

use crate::agent::AgentId;

/// A single interaction: an ordered pair (initiator, responder).
///
/// On a directed ring, `e_i` denotes the interaction `(u_i, u_{i+1})`; use
/// [`Interaction::ring_arc`] to build it from the index `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interaction {
    initiator: AgentId,
    responder: AgentId,
}

impl Interaction {
    /// Creates an interaction from raw indices.
    pub fn new(initiator: usize, responder: usize) -> Self {
        Interaction {
            initiator: AgentId::new(initiator),
            responder: AgentId::new(responder),
        }
    }

    /// The paper's arc `e_i = (u_i, u_{i+1 mod n})` on a ring of `n` agents.
    pub fn ring_arc(i: usize, n: usize) -> Self {
        Interaction::new(i % n, (i + 1) % n)
    }

    /// The initiator (the paper's `l`, the left agent on a ring arc).
    pub fn initiator(&self) -> AgentId {
        self.initiator
    }

    /// The responder (the paper's `r`, the right agent on a ring arc).
    pub fn responder(&self) -> AgentId {
        self.responder
    }
}

impl std::fmt::Display for Interaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.initiator, self.responder)
    }
}

/// A finite sequence of interactions with the concatenation and repetition
/// operators of Section 2.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InteractionSeq {
    interactions: Vec<Interaction>,
}

impl InteractionSeq {
    /// The empty sequence.
    pub fn new() -> Self {
        InteractionSeq {
            interactions: Vec::new(),
        }
    }

    /// Builds a sequence from explicit interactions.
    pub fn from_interactions(interactions: Vec<Interaction>) -> Self {
        InteractionSeq { interactions }
    }

    /// `seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}`: a clockwise sweep of `j`
    /// consecutive ring arcs starting at `e_i` on a ring of `n` agents.
    pub fn seq_r(i: usize, j: usize, n: usize) -> Self {
        let interactions = (0..j).map(|k| Interaction::ring_arc(i + k, n)).collect();
        InteractionSeq { interactions }
    }

    /// `seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}`: a counter-clockwise
    /// sweep of `j` consecutive ring arcs ending at `e_{i-j}` on a ring of
    /// `n` agents.
    pub fn seq_l(i: usize, j: usize, n: usize) -> Self {
        let interactions = (1..=j)
            .map(|k| Interaction::ring_arc(i + n * k - k, n))
            .collect();
        InteractionSeq { interactions }
    }

    /// The length (number of interactions) of the sequence.
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// Returns `true` if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// The underlying slice of interactions, in order.
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Concatenation `self · other`.
    pub fn concat(mut self, other: &InteractionSeq) -> Self {
        self.interactions.extend_from_slice(&other.interactions);
        self
    }

    /// Repetition `self^times` (the paper's `s^i`).
    ///
    /// # Panics
    ///
    /// Panics if `times == 0`; the paper only defines `s^i` for `i >= 1`.
    pub fn repeat(&self, times: usize) -> Self {
        assert!(times >= 1, "repetition count must be at least 1");
        let mut interactions = Vec::with_capacity(self.interactions.len() * times);
        for _ in 0..times {
            interactions.extend_from_slice(&self.interactions);
        }
        InteractionSeq { interactions }
    }

    /// Iterates over the interactions.
    pub fn iter(&self) -> impl Iterator<Item = &Interaction> {
        self.interactions.iter()
    }

    /// The schedule used by Lemma 3.5 / Section 3.2 to drive one token
    /// through its full trajectory across the segment pair starting at agent
    /// `k`:  `(seq_R(k, 2ψ−1) · seq_L(k+2ψ−1, 2ψ−1))^{2ψ}`.
    pub fn token_trajectory_schedule(k: usize, psi: usize, n: usize) -> Self {
        let right = InteractionSeq::seq_r(k, 2 * psi - 1, n);
        let left = InteractionSeq::seq_l(k + 2 * psi - 1, 2 * psi - 1, n);
        right.concat(&left).repeat(2 * psi)
    }

    /// The full-ring double sweep `seq_R(i, n) · seq_L(i, n)` used throughout
    /// Section 3.2 to propagate `dist` and `last`.
    pub fn full_ring_sweep(i: usize, n: usize) -> Self {
        InteractionSeq::seq_r(i, n, n).concat(&InteractionSeq::seq_l(i, n, n))
    }
}

impl IntoIterator for InteractionSeq {
    type Item = Interaction;
    type IntoIter = std::vec::IntoIter<Interaction>;
    fn into_iter(self) -> Self::IntoIter {
        self.interactions.into_iter()
    }
}

impl FromIterator<Interaction> for InteractionSeq {
    fn from_iter<I: IntoIterator<Item = Interaction>>(iter: I) -> Self {
        InteractionSeq {
            interactions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Interaction> for InteractionSeq {
    fn extend<I: IntoIterator<Item = Interaction>>(&mut self, iter: I) {
        self.interactions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_arc_wraps() {
        assert_eq!(Interaction::ring_arc(5, 6), Interaction::new(5, 0));
        assert_eq!(Interaction::ring_arc(9, 6), Interaction::new(3, 4));
        let e = Interaction::new(2, 3);
        assert_eq!(e.initiator().index(), 2);
        assert_eq!(e.responder().index(), 3);
        assert_eq!(e.to_string(), "(u2, u3)");
    }

    #[test]
    fn seq_r_matches_definition() {
        // seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}
        let n = 8;
        let s = InteractionSeq::seq_r(6, 4, n);
        let expected: Vec<_> = [6, 7, 0, 1]
            .iter()
            .map(|&i| Interaction::ring_arc(i, n))
            .collect();
        assert_eq!(s.interactions(), expected.as_slice());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn seq_l_matches_definition() {
        // seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}
        let n = 8;
        let s = InteractionSeq::seq_l(2, 4, n);
        let expected: Vec<_> = [1usize, 0, 7, 6]
            .iter()
            .map(|&i| Interaction::ring_arc(i, n))
            .collect();
        assert_eq!(s.interactions(), expected.as_slice());
    }

    #[test]
    fn seq_r_of_length_n_covers_every_arc_once() {
        let n = 10;
        let s = InteractionSeq::seq_r(3, n, n);
        assert_eq!(s.len(), n);
        let mut seen = vec![0usize; n];
        for e in s.iter() {
            seen[e.initiator().index()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn seq_l_of_length_n_covers_every_arc_once() {
        let n = 10;
        let s = InteractionSeq::seq_l(3, n, n);
        assert_eq!(s.len(), n);
        let mut seen = vec![0usize; n];
        for e in s.iter() {
            seen[e.initiator().index()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn concat_and_repeat() {
        let n = 4;
        let a = InteractionSeq::seq_r(0, 2, n);
        let b = InteractionSeq::seq_l(0, 1, n);
        let c = a.clone().concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.interactions()[2], Interaction::ring_arc(3, n));
        let r = c.repeat(3);
        assert_eq!(r.len(), 9);
        assert_eq!(&r.interactions()[0..3], c.interactions());
        assert_eq!(&r.interactions()[6..9], c.interactions());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn repeat_zero_panics() {
        InteractionSeq::seq_r(0, 1, 4).repeat(0);
    }

    #[test]
    fn empty_sequence_behaviour() {
        let s = InteractionSeq::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let t: InteractionSeq = std::iter::empty().collect();
        assert_eq!(s, t);
    }

    #[test]
    fn trajectory_schedule_has_expected_length() {
        // (seq_R(k, 2ψ−1) · seq_L(·, 2ψ−1))^{2ψ} has length (4ψ−2)·2ψ.
        let psi = 4;
        let n = 32;
        let s = InteractionSeq::token_trajectory_schedule(0, psi, n);
        assert_eq!(s.len(), (4 * psi - 2) * 2 * psi);
    }

    #[test]
    fn full_ring_sweep_length() {
        let s = InteractionSeq::full_ring_sweep(2, 9);
        assert_eq!(s.len(), 18);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: InteractionSeq = (0..3).map(|i| Interaction::ring_arc(i, 5)).collect();
        s.extend([Interaction::ring_arc(3, 5)]);
        assert_eq!(s.len(), 4);
        let v: Vec<Interaction> = s.into_iter().collect();
        assert_eq!(v.len(), 4);
    }
}
