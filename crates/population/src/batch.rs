//! Parallel batch execution of convergence trials.
//!
//! Convergence-time experiments repeat many independent trials per population
//! size.  [`BatchRunner`] distributes trials over worker threads (each trial
//! is seeded independently, so results are reproducible regardless of the
//! thread count) and [`BatchSummary`] aggregates per-`n` statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use crate::convergence::ConvergenceReport;

/// A single trial: a population size and an RNG seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Trial {
    /// Population size.
    pub n: usize,
    /// RNG seed (drives both the initial configuration and the scheduler).
    pub seed: u64,
}

impl Trial {
    /// Creates a trial.
    pub fn new(n: usize, seed: u64) -> Self {
        Trial { n, seed }
    }

    /// Builds the standard trial grid: `trials_per_n` seeds for every `n`.
    pub fn grid(sizes: &[usize], trials_per_n: usize, base_seed: u64) -> Vec<Trial> {
        let mut out = Vec::with_capacity(sizes.len() * trials_per_n);
        for (si, &n) in sizes.iter().enumerate() {
            for t in 0..trials_per_n {
                out.push(Trial::new(n, base_seed ^ ((si as u64) << 32) ^ t as u64));
            }
        }
        out
    }
}

/// Result of one trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// The trial parameters.
    pub trial: Trial,
    /// The convergence report returned by the per-trial closure.
    pub report: ConvergenceReport,
}

/// Result of running one point of an arbitrary sweep (the generalization of
/// [`TrialOutcome`] to any point type, e.g. [`crate::sweep::SweepPoint`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome<T> {
    /// The sweep point that was run.
    pub point: T,
    /// The convergence report returned by the per-point closure.
    pub report: ConvergenceReport,
}

/// Aggregated outcomes for a single population size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// The population size shared by all outcomes in this summary.
    pub n: usize,
    /// Per-trial outcomes.
    pub outcomes: Vec<TrialOutcome>,
}

impl BatchSummary {
    /// Convergence steps of the trials that converged, as `f64`s.
    pub fn convergence_steps(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.report.converged_at)
            .map(|s| s as f64)
            .collect()
    }

    /// Fraction of trials that converged within their step budget.
    pub fn converged_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.report.converged())
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Mean convergence steps over the converged trials.
    pub fn mean_steps(&self) -> Option<f64> {
        let steps = self.convergence_steps();
        if steps.is_empty() {
            None
        } else {
            Some(steps.iter().sum::<f64>() / steps.len() as f64)
        }
    }

    /// Median convergence steps over the converged trials.
    pub fn median_steps(&self) -> Option<f64> {
        let mut steps = self.convergence_steps();
        if steps.is_empty() {
            return None;
        }
        steps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = steps.len() / 2;
        Some(if steps.len() % 2 == 1 {
            steps[mid]
        } else {
            (steps[mid - 1] + steps[mid]) / 2.0
        })
    }

    /// Maximum convergence steps over the converged trials.
    pub fn max_steps(&self) -> Option<f64> {
        self.convergence_steps()
            .into_iter()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// Runs trials in parallel over a fixed-size thread pool.
#[derive(Clone, Debug)]
pub struct BatchRunner {
    num_threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// Creates a runner using all available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        BatchRunner {
            num_threads: threads,
        }
    }

    /// Creates a runner with an explicit thread count (minimum 1).
    pub fn with_threads(num_threads: usize) -> Self {
        BatchRunner {
            num_threads: num_threads.max(1),
        }
    }

    /// The number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs every point through `run_one`, in parallel, and returns the
    /// results ordered exactly like the input points — the fully generic
    /// parallel map every other runner method is built on.
    ///
    /// The result type is arbitrary: convergence sweeps map points to
    /// [`ConvergenceReport`]s (see [`BatchRunner::run_points`]), while the
    /// worst-case stabilization search maps grid cells, candidate pools and
    /// annealing islands to its own result types through the same machinery.
    ///
    /// Workers claim indices from a shared atomic counter but collect their
    /// results into thread-local chunks that are merged once at join time, so
    /// there is no per-result lock contention.  The output order is the input
    /// order regardless of the thread count, so a deterministic `run_one`
    /// yields results that are bit-identical whether the runner has 1 thread
    /// or 64 (covered by workspace tests).
    pub fn run_map<T, R, F>(&self, points: &[T], run_one: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Send + Sync,
    {
        if points.is_empty() {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let workers = self.num_threads.min(points.len());
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(points.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= points.len() {
                                break;
                            }
                            local.push((idx, run_one(&points[idx])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (idx, result) in handle.join().expect("batch worker panicked") {
                    slots[idx] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|o| o.expect("every point must produce a result"))
            .collect()
    }

    /// Runs every point through `run_one`, in parallel, and returns the
    /// outcomes ordered exactly like the input points (the
    /// [`ConvergenceReport`]-shaped specialization of
    /// [`BatchRunner::run_map`]).
    pub fn run_points<T, F>(&self, points: &[T], run_one: F) -> Vec<Outcome<T>>
    where
        T: Clone + Send + Sync,
        F: Fn(&T) -> ConvergenceReport + Send + Sync,
    {
        self.run_map(points, |point| Outcome {
            point: point.clone(),
            report: run_one(point),
        })
    }

    /// Runs every trial through `run_one`, in parallel, and returns the
    /// outcomes ordered exactly like the input trials.
    pub fn run<F>(&self, trials: &[Trial], run_one: F) -> Vec<TrialOutcome>
    where
        F: Fn(Trial) -> ConvergenceReport + Send + Sync,
    {
        self.run_points(trials, |t: &Trial| run_one(*t))
            .into_iter()
            .map(|o| TrialOutcome {
                trial: o.point,
                report: o.report,
            })
            .collect()
    }

    /// Runs all trials and groups the outcomes by population size, preserving
    /// the order in which sizes first appear in the trial list.
    pub fn run_grouped<F>(&self, trials: &[Trial], run_one: F) -> Vec<BatchSummary>
    where
        F: Fn(Trial) -> ConvergenceReport + Send + Sync,
    {
        group_by_size(self.run(trials, run_one))
    }
}

/// Groups trial outcomes into one [`BatchSummary`] per population size in a
/// single pass, preserving the order in which sizes first appear and moving
/// (not cloning) the outcomes.
pub fn group_by_size(outcomes: Vec<TrialOutcome>) -> Vec<BatchSummary> {
    let mut index: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<BatchSummary> = Vec::new();
    for outcome in outcomes {
        let n = outcome.trial.n;
        let slot = *index.entry(n).or_insert_with(|| {
            groups.push(BatchSummary {
                n,
                outcomes: Vec::new(),
            });
            groups.len() - 1
        });
        groups[slot].outcomes.push(outcome);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(converged_at: Option<u64>) -> ConvergenceReport {
        ConvergenceReport {
            converged_at,
            steps_executed: converged_at.unwrap_or(1000),
            max_steps: 1000,
            check_interval: 1,
            criterion: "test".into(),
        }
    }

    #[test]
    fn trial_grid_covers_all_sizes_with_distinct_seeds() {
        let trials = Trial::grid(&[8, 16, 32], 5, 42);
        assert_eq!(trials.len(), 15);
        let mut seeds: Vec<u64> = trials.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 15, "seeds must all be distinct");
        assert_eq!(trials.iter().filter(|t| t.n == 16).count(), 5);
    }

    #[test]
    fn runner_preserves_trial_order() {
        let trials: Vec<Trial> = (0..50).map(|i| Trial::new(4, i)).collect();
        let runner = BatchRunner::with_threads(4);
        assert_eq!(runner.num_threads(), 4);
        let outcomes = runner.run(&trials, |t| fake_report(Some(t.seed * 10)));
        assert_eq!(outcomes.len(), 50);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.trial.seed, i as u64);
            assert_eq!(o.report.converged_at, Some(i as u64 * 10));
        }
    }

    #[test]
    fn empty_trial_list_is_fine() {
        let runner = BatchRunner::with_threads(2);
        let outcomes = runner.run(&[], |_| fake_report(None));
        assert!(outcomes.is_empty());
    }

    #[test]
    fn grouping_by_population_size() {
        let trials = Trial::grid(&[8, 16], 3, 0);
        let runner = BatchRunner::with_threads(2);
        let groups = runner.run_grouped(&trials, |t| fake_report(Some(t.n as u64 * 100)));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].n, 8);
        assert_eq!(groups[1].n, 16);
        assert_eq!(groups[0].outcomes.len(), 3);
        assert_eq!(groups[0].mean_steps(), Some(800.0));
        assert_eq!(groups[1].median_steps(), Some(1600.0));
        assert_eq!(groups[1].max_steps(), Some(1600.0));
        assert_eq!(groups[0].converged_fraction(), 1.0);
    }

    #[test]
    fn summary_statistics_handle_non_convergence() {
        let summary = BatchSummary {
            n: 8,
            outcomes: vec![
                TrialOutcome {
                    trial: Trial::new(8, 0),
                    report: fake_report(None),
                },
                TrialOutcome {
                    trial: Trial::new(8, 1),
                    report: fake_report(Some(100)),
                },
                TrialOutcome {
                    trial: Trial::new(8, 2),
                    report: fake_report(Some(300)),
                },
            ],
        };
        assert_eq!(summary.converged_fraction(), 2.0 / 3.0);
        assert_eq!(summary.mean_steps(), Some(200.0));
        assert_eq!(summary.median_steps(), Some(200.0));
        let empty = BatchSummary {
            n: 4,
            outcomes: vec![],
        };
        assert_eq!(empty.converged_fraction(), 0.0);
        assert_eq!(empty.mean_steps(), None);
        assert_eq!(empty.median_steps(), None);
        assert_eq!(empty.max_steps(), None);
    }

    #[test]
    fn default_runner_uses_at_least_one_thread() {
        assert!(BatchRunner::default().num_threads() >= 1);
        assert_eq!(BatchRunner::with_threads(0).num_threads(), 1);
    }

    /// A deterministic stand-in for a real per-trial simulation: the outcome
    /// depends only on the trial's `(n, seed)`, like a seeded `Simulation`.
    fn seeded_report(t: Trial) -> ConvergenceReport {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(t.seed ^ ((t.n as u64) << 17));
        let steps: u64 = rng.gen_range(1..10_000);
        fake_report(if steps.is_multiple_of(7) {
            None
        } else {
            Some(steps)
        })
    }

    #[test]
    fn outcomes_are_seed_deterministic_regardless_of_thread_count() {
        let trials = Trial::grid(&[8, 16, 32], 20, 99);
        let serial = BatchRunner::with_threads(1).run(&trials, seeded_report);
        for threads in [2, 3, 8, 64] {
            let parallel = BatchRunner::with_threads(threads).run(&trials, seeded_report);
            assert_eq!(
                serial, parallel,
                "outcomes changed with {threads} worker threads"
            );
        }
    }

    #[test]
    fn grouped_aggregation_matches_a_serial_run() {
        let trials = Trial::grid(&[8, 16], 10, 7);
        let groups = BatchRunner::with_threads(4).run_grouped(&trials, seeded_report);

        // Aggregate the same trials by hand, without the runner.
        for group in &groups {
            let expected: Vec<TrialOutcome> = trials
                .iter()
                .filter(|t| t.n == group.n)
                .map(|&t| TrialOutcome {
                    trial: t,
                    report: seeded_report(t),
                })
                .collect();
            assert_eq!(group.outcomes, expected);
            let expected_steps: Vec<f64> = expected
                .iter()
                .filter_map(|o| o.report.converged_at)
                .map(|s| s as f64)
                .collect();
            assert_eq!(group.convergence_steps(), expected_steps);
            let expected_mean = expected_steps.iter().sum::<f64>() / expected_steps.len() as f64;
            assert_eq!(group.mean_steps(), Some(expected_mean));
        }
    }

    #[test]
    fn run_points_works_with_arbitrary_point_types() {
        #[derive(Clone, Debug, PartialEq)]
        struct Point {
            label: String,
            steps: u64,
        }
        let points: Vec<Point> = (0..20)
            .map(|i| Point {
                label: format!("p{i}"),
                steps: i * 10,
            })
            .collect();
        let runner = BatchRunner::with_threads(4);
        let outcomes = runner.run_points(&points, |p| fake_report(Some(p.steps)));
        assert_eq!(outcomes.len(), 20);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.point, points[i], "outcome order matches input order");
            assert_eq!(o.report.converged_at, Some(i as u64 * 10));
        }
    }

    #[test]
    fn run_map_is_order_preserving_and_thread_count_invariant() {
        // Arbitrary (non-ConvergenceReport) result type: the generic map
        // underpinning the worst-case search sharding.
        let points: Vec<u64> = (0..37).collect();
        let map = |p: &u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(*p);
            (*p, rng.gen::<u64>())
        };
        let serial = BatchRunner::with_threads(1).run_map(&points, map);
        assert_eq!(serial.len(), points.len());
        for (i, (p, _)) in serial.iter().enumerate() {
            assert_eq!(*p, i as u64, "results keep input order");
        }
        for threads in [2, 5, 16] {
            let parallel = BatchRunner::with_threads(threads).run_map(&points, map);
            assert_eq!(serial, parallel, "run_map changed with {threads} threads");
        }
        let empty: Vec<(u64, u64)> = BatchRunner::new().run_map(&[], map);
        assert!(empty.is_empty());
    }

    #[test]
    fn group_by_size_is_single_pass_and_order_preserving() {
        // Sizes interleaved: first-appearance order must be preserved.
        let outcomes: Vec<TrialOutcome> = [16usize, 8, 16, 4, 8, 16]
            .iter()
            .enumerate()
            .map(|(i, &n)| TrialOutcome {
                trial: Trial::new(n, i as u64),
                report: fake_report(Some(i as u64)),
            })
            .collect();
        let groups = group_by_size(outcomes);
        assert_eq!(
            groups.iter().map(|g| g.n).collect::<Vec<_>>(),
            vec![16, 8, 4]
        );
        assert_eq!(groups[0].outcomes.len(), 3);
        assert_eq!(groups[1].outcomes.len(), 2);
        assert_eq!(groups[2].outcomes.len(), 1);
        // Within a group, input order is preserved.
        assert_eq!(
            groups[0]
                .outcomes
                .iter()
                .map(|o| o.trial.seed)
                .collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
    }

    #[test]
    fn median_of_odd_number_of_trials() {
        let summary = BatchSummary {
            n: 8,
            outcomes: vec![
                TrialOutcome {
                    trial: Trial::new(8, 0),
                    report: fake_report(Some(10)),
                },
                TrialOutcome {
                    trial: Trial::new(8, 1),
                    report: fake_report(Some(1000)),
                },
                TrialOutcome {
                    trial: Trial::new(8, 2),
                    report: fake_report(Some(20)),
                },
            ],
        };
        assert_eq!(summary.median_steps(), Some(20.0));
    }
}
