//! Execution traces.
//!
//! A [`Trace`] records interesting events of a run — interactions, leader-set
//! changes, convergence — so that experiments like the Figure 2 token
//! trajectory and the Lemma 3.11 signal-lifetime measurement can be expressed
//! as post-processing over the trace instead of ad-hoc instrumentation inside
//! protocols.

use serde::{Deserialize, Serialize};

use crate::schedule::Interaction;

/// A single recorded event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// An interaction happened at the given step.
    Interaction {
        /// Step index (0-based).
        step: u64,
        /// The scheduled interaction.
        interaction: Interaction,
    },
    /// The set of leaders changed at the given step.
    LeaderSetChanged {
        /// Step index at which the change was observed.
        step: u64,
        /// Indices of the agents outputting `L` after the step.
        leaders: Vec<usize>,
    },
    /// A convergence criterion was satisfied for the first time.
    Converged {
        /// Step index of the first passing check.
        step: u64,
        /// Name of the criterion that passed.
        criterion: String,
    },
    /// Free-form annotation emitted by experiments.
    Annotation {
        /// Step index of the annotation.
        step: u64,
        /// Annotation text.
        text: String,
    },
}

impl Event {
    /// The step at which the event occurred.
    pub fn step(&self) -> u64 {
        match self {
            Event::Interaction { step, .. }
            | Event::LeaderSetChanged { step, .. }
            | Event::Converged { step, .. }
            | Event::Annotation { step, .. } => *step,
        }
    }
}

/// An append-only sequence of [`Event`]s.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace: all `record` calls are ignored.  Simulations
    /// default to a disabled trace so that tracing costs nothing unless asked
    /// for.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Returns `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears all recorded events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The steps at which the leader set changed.
    pub fn leader_change_steps(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::LeaderSetChanged { step, .. } => Some(*step),
                _ => None,
            })
            .collect()
    }

    /// The last step at which the leader set changed, if any.
    pub fn last_leader_change(&self) -> Option<u64> {
        self.leader_change_steps().last().copied()
    }

    /// The first convergence event, if any, as `(step, criterion)`.
    pub fn first_convergence(&self) -> Option<(u64, &str)> {
        self.events.iter().find_map(|e| match e {
            Event::Converged { step, criterion } => Some((*step, criterion.as_str())),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record(Event::Annotation {
            step: 0,
            text: "x".into(),
        });
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(Event::Annotation {
            step: 1,
            text: "y".into(),
        });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn leader_change_queries() {
        let mut t = Trace::new();
        t.record(Event::Interaction {
            step: 0,
            interaction: Interaction::new(0, 1),
        });
        t.record(Event::LeaderSetChanged {
            step: 3,
            leaders: vec![1],
        });
        t.record(Event::LeaderSetChanged {
            step: 9,
            leaders: vec![2],
        });
        t.record(Event::Converged {
            step: 12,
            criterion: "unique-leader".into(),
        });
        assert_eq!(t.leader_change_steps(), vec![3, 9]);
        assert_eq!(t.last_leader_change(), Some(9));
        assert_eq!(t.first_convergence(), Some((12, "unique-leader")));
        assert_eq!(t.events()[0].step(), 0);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn event_step_accessor_covers_all_variants() {
        let events = [
            Event::Interaction {
                step: 1,
                interaction: Interaction::new(0, 1),
            },
            Event::LeaderSetChanged {
                step: 2,
                leaders: vec![],
            },
            Event::Converged {
                step: 3,
                criterion: "c".into(),
            },
            Event::Annotation {
                step: 4,
                text: "t".into(),
            },
        ];
        let steps: Vec<u64> = events.iter().map(|e| e.step()).collect();
        assert_eq!(steps, vec![1, 2, 3, 4]);
    }
}
