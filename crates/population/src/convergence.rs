//! Convergence criteria and reports.
//!
//! Self-stabilization is defined via *safe configurations* (Definition 2.1):
//! the convergence time of a run is the number of steps until the first safe
//! configuration.  Protocol crates provide structural checkers for their safe
//! sets (e.g. `S_PL` for the paper's protocol); this module provides the
//! plumbing — the [`Criterion`] trait, generic criteria and the
//! [`ConvergenceReport`] returned by measurement runs.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use crate::config::Configuration;
use crate::protocol::{LeaderElection, Protocol};

/// A convergence criterion evaluated against a configuration.
///
/// Criteria should be *monotone along executions* for the measured value to
/// be a genuine convergence time (the paper's safe sets are closed, hence
/// monotone).  Non-monotone criteria (such as [`UniqueLeader`]) are still
/// useful as necessary conditions and for protocols without a structural
/// safe-set checker; see [`StableOutputs`] for the stability-based fallback.
pub trait Criterion<P: Protocol>: Send + Sync {
    /// Short name used in traces and reports.
    fn name(&self) -> &str;

    /// Returns `true` if the configuration satisfies the criterion.
    fn is_satisfied(&self, protocol: &P, states: &[P::State]) -> bool;
}

/// Criterion: exactly one agent outputs `L`.
///
/// This is a *necessary* condition for a safe configuration of any SS-LE
/// protocol but not a sufficient one (the configuration might still create or
/// kill leaders later).  Use the structural checkers in the protocol crates
/// when available.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniqueLeader;

impl<P: LeaderElection> Criterion<P> for UniqueLeader {
    fn name(&self) -> &str {
        "unique-leader"
    }

    fn is_satisfied(&self, protocol: &P, states: &[P::State]) -> bool {
        protocol.has_unique_leader(states)
    }
}

/// Criterion defined by an arbitrary predicate over the configuration.
pub struct Predicate<P: Protocol, F> {
    name: String,
    predicate: F,
    _marker: std::marker::PhantomData<fn(&P)>,
}

impl<P: Protocol, F> std::fmt::Debug for Predicate<P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predicate")
            .field("name", &self.name)
            .finish()
    }
}

impl<P, F> Predicate<P, F>
where
    P: Protocol,
    F: Fn(&P, &[P::State]) -> bool + Send + Sync,
{
    /// Creates a named predicate criterion.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        Predicate {
            name: name.into(),
            predicate,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<P, F> Criterion<P> for Predicate<P, F>
where
    P: Protocol,
    F: Fn(&P, &[P::State]) -> bool + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn is_satisfied(&self, protocol: &P, states: &[P::State]) -> bool {
        (self.predicate)(protocol, states)
    }
}

/// Post-hoc convergence estimation for protocols without a structural safe
/// set: the convergence step is estimated as the last step at which the
/// leader set changed, provided the leader set then stayed fixed for a long
/// stability window.
///
/// This matches how empirical studies of leader-election protocols usually
/// report convergence.  It *underestimates* the true convergence-to-safety
/// time in general, which is acceptable for baseline comparisons and noted in
/// `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StableOutputs {
    /// Number of trailing steps during which the leader set must not change.
    pub stability_window: u64,
}

impl StableOutputs {
    /// Creates a stability-based estimator with the given window.
    pub fn new(stability_window: u64) -> Self {
        StableOutputs { stability_window }
    }
}

impl Default for StableOutputs {
    fn default() -> Self {
        StableOutputs {
            stability_window: 10_000,
        }
    }
}

/// The result of a convergence-measurement run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Step at which the criterion was first observed satisfied, if it was.
    pub converged_at: Option<u64>,
    /// Total number of steps executed by the measurement run.
    pub steps_executed: u64,
    /// The step budget of the run.
    pub max_steps: u64,
    /// How often (in steps) the criterion was evaluated.
    pub check_interval: u64,
    /// Name of the criterion that was checked.
    ///
    /// A `Cow` so the engine's internal runs can use the static placeholder
    /// `"predicate"` without allocating a fresh `String` per
    /// [`crate::simulation::Simulation::run_until`] invocation; named
    /// callers overwrite it once with the final (owned) name.
    pub criterion: Cow<'static, str>,
}

impl ConvergenceReport {
    /// Returns `true` if the criterion was satisfied within the budget.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// The measured convergence step.
    ///
    /// # Panics
    ///
    /// Panics if the run did not converge; check [`ConvergenceReport::converged`]
    /// first or use `converged_at` directly.
    pub fn convergence_step(&self) -> u64 {
        self.converged_at
            .expect("run did not converge within the step budget")
    }

    /// Convergence time in parallel time units (steps / n).
    pub fn parallel_convergence_time(&self, n: usize) -> Option<f64> {
        self.converged_at.map(|s| s as f64 / n as f64)
    }
}

/// Helper for [`StableOutputs`]-style post-hoc estimation: given the list of
/// steps at which the leader set changed and the total run length, returns
/// the estimated convergence step if the final stretch was stable for at
/// least `stability_window` steps.
pub fn estimate_stable_convergence(
    leader_change_steps: &[u64],
    total_steps: u64,
    stability_window: u64,
) -> Option<u64> {
    let last_change = leader_change_steps.last().copied().unwrap_or(0);
    if total_steps >= last_change && total_steps - last_change >= stability_window {
        Some(last_change)
    } else {
        None
    }
}

/// Checks the closure half of self-stabilization empirically: evaluates a
/// predicate over evenly spaced checkpoints of the execution suffix and
/// returns `true` only if it holds at every checkpoint.
pub fn holds_at_checkpoints<P, F>(
    protocol: &P,
    checkpoints: &[Configuration<P::State>],
    predicate: F,
) -> bool
where
    P: Protocol,
    F: Fn(&P, &[P::State]) -> bool,
{
    checkpoints.iter().all(|c| predicate(protocol, c.states()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Dummy;
    impl Protocol for Dummy {
        type State = u8;
        fn interact(&self, _i: &mut u8, _r: &mut u8) {}
    }
    impl LeaderElection for Dummy {
        fn is_leader(&self, state: &u8) -> bool {
            *state == 1
        }
    }

    #[test]
    fn unique_leader_criterion() {
        let c = UniqueLeader;
        assert_eq!(Criterion::<Dummy>::name(&c), "unique-leader");
        assert!(c.is_satisfied(&Dummy, &[0, 1, 0]));
        assert!(!c.is_satisfied(&Dummy, &[1, 1, 0]));
        assert!(!c.is_satisfied(&Dummy, &[0, 0, 0]));
    }

    #[test]
    fn predicate_criterion() {
        let p = Predicate::<Dummy, _>::new("all-zero", |_p, s: &[u8]| s.iter().all(|&x| x == 0));
        assert_eq!(p.name(), "all-zero");
        assert!(p.is_satisfied(&Dummy, &[0, 0]));
        assert!(!p.is_satisfied(&Dummy, &[0, 2]));
        assert!(format!("{p:?}").contains("all-zero"));
    }

    #[test]
    fn report_accessors() {
        let r = ConvergenceReport {
            converged_at: Some(500),
            steps_executed: 700,
            max_steps: 1000,
            check_interval: 10,
            criterion: "x".into(),
        };
        assert!(r.converged());
        assert_eq!(r.convergence_step(), 500);
        assert_eq!(r.parallel_convergence_time(100), Some(5.0));

        let nr = ConvergenceReport {
            converged_at: None,
            steps_executed: 1000,
            max_steps: 1000,
            check_interval: 10,
            criterion: "x".into(),
        };
        assert!(!nr.converged());
        assert_eq!(nr.parallel_convergence_time(100), None);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn convergence_step_panics_when_not_converged() {
        let nr = ConvergenceReport {
            converged_at: None,
            steps_executed: 10,
            max_steps: 10,
            check_interval: 1,
            criterion: "x".into(),
        };
        nr.convergence_step();
    }

    #[test]
    fn stable_convergence_estimation() {
        assert_eq!(
            estimate_stable_convergence(&[5, 100], 10_200, 10_000),
            Some(100)
        );
        assert_eq!(estimate_stable_convergence(&[5, 100], 5_000, 10_000), None);
        // Never changed: converged at step 0 once the window has elapsed.
        assert_eq!(estimate_stable_convergence(&[], 10_000, 10_000), Some(0));
        assert_eq!(estimate_stable_convergence(&[], 9_999, 10_000), None);
    }

    #[test]
    fn stable_outputs_default_window() {
        assert_eq!(StableOutputs::default().stability_window, 10_000);
        assert_eq!(StableOutputs::new(5).stability_window, 5);
    }

    #[test]
    fn checkpoint_closure_check() {
        let configs = vec![
            Configuration::from_states(vec![0u8, 1, 0]),
            Configuration::from_states(vec![0u8, 1, 0]),
        ];
        assert!(holds_at_checkpoints(&Dummy, &configs, |p, s| {
            p.has_unique_leader(s)
        }));
        let bad = vec![Configuration::from_states(vec![1u8, 1, 0])];
        assert!(!holds_at_checkpoints(&Dummy, &bad, |p, s| p.has_unique_leader(s)));
    }
}
