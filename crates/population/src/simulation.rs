//! The execution engine.
//!
//! [`Simulation`] owns a protocol, an interaction graph, the current
//! configuration, a seeded RNG and run statistics, and advances the
//! configuration one interaction at a time.  By default each step samples the
//! uniformly random scheduler; deterministic interaction sequences can be
//! applied directly with [`Simulation::apply_sequence`] (used by tests that
//! replay the proof schedules) and arbitrary [`crate::scheduler::Scheduler`]s
//! can drive the run via [`Simulation::step_with_scheduler`].

use std::borrow::Cow;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::Configuration;
use crate::convergence::{ConvergenceReport, Criterion};
use crate::error::{PopulationError, Result};
use crate::graph::InteractionGraph;
use crate::observer::{LeaderCounter, NoObserver, StepObserver};
use crate::protocol::{LeaderElection, Protocol};
use crate::schedule::{Interaction, InteractionSeq};
use crate::scheduler::Scheduler;
use crate::stats::RunStats;
use crate::trace::{Event, Trace};

/// A running execution `Ξ_P(C_0, Γ)` of a protocol on an interaction graph.
#[derive(Clone, Debug)]
pub struct Simulation<P: Protocol, G: InteractionGraph> {
    protocol: P,
    graph: G,
    config: Configuration<P::State>,
    rng: ChaCha8Rng,
    steps: u64,
    stats: RunStats,
    trace: Trace,
    /// Cached `protocol.uses_oracle()` (behind [`Protocol::HAS_ENVIRONMENT`]):
    /// whether the per-step environment hook must run.  Computed once at
    /// construction so the hot loop never pays the (virtual, under erasure)
    /// `uses_oracle` call.
    env_active: bool,
}

impl<P: Protocol, G: InteractionGraph> Simulation<P, G> {
    /// Creates a simulation from a protocol, graph, initial configuration and
    /// RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration size does not match the graph; use
    /// [`Simulation::try_new`] for a fallible constructor.
    pub fn new(protocol: P, graph: G, config: Configuration<P::State>, seed: u64) -> Self {
        Self::try_new(protocol, graph, config, seed).expect("configuration/graph size mismatch")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::ConfigurationSizeMismatch`] if the
    /// configuration does not have exactly one state per agent.
    ///
    /// # Panics
    ///
    /// Panics if the protocol reports [`Protocol::uses_oracle`] without its
    /// type setting [`Protocol::HAS_ENVIRONMENT`]: the environment hook
    /// would be compiled out of the step loop and the oracle silently never
    /// invoked, which is a bug in the protocol implementation, not a
    /// runtime condition.
    pub fn try_new(
        protocol: P,
        graph: G,
        config: Configuration<P::State>,
        seed: u64,
    ) -> Result<Self> {
        if config.len() != graph.num_agents() {
            return Err(PopulationError::ConfigurationSizeMismatch {
                configuration: config.len(),
                graph: graph.num_agents(),
            });
        }
        assert!(
            P::HAS_ENVIRONMENT || !protocol.uses_oracle(),
            "protocol {:?} reports uses_oracle() but its type does not set \
             Protocol::HAS_ENVIRONMENT, so its environment hook would never run",
            protocol.name()
        );
        let n = graph.num_agents();
        let env_active = P::HAS_ENVIRONMENT && protocol.uses_oracle();
        Ok(Simulation {
            protocol,
            graph,
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            steps: 0,
            stats: RunStats::new(n),
            trace: Trace::disabled(),
            env_active,
        })
    }

    /// `true` if the per-step environment (oracle) hook is active for this
    /// run — i.e. the protocol declared [`Protocol::HAS_ENVIRONMENT`] and
    /// reports [`Protocol::uses_oracle`].  When `false`, interactions are
    /// the only thing mutating states, which is what makes incremental
    /// observers ([`crate::observer`]) sound.
    pub fn environment_active(&self) -> bool {
        self.env_active
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The interaction graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration<P::State> {
        &self.config
    }

    /// Mutable access to the current configuration (used by fault injection
    /// and by tests that construct specific intermediate configurations).
    pub fn config_mut(&mut self) -> &mut Configuration<P::State> {
        &mut self.config
    }

    /// Replaces the interaction graph with a same-sized one, keeping the
    /// configuration and all counters.  This is the substrate for topology
    /// churn (edge rewiring, partition/heal events).
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::ConfigurationSizeMismatch`] if the new
    /// graph's agent count differs from the current configuration's length.
    pub fn set_graph(&mut self, graph: G) -> Result<()> {
        if graph.num_agents() != self.config.len() {
            return Err(PopulationError::ConfigurationSizeMismatch {
                configuration: self.config.len(),
                graph: graph.num_agents(),
            });
        }
        self.graph = graph;
        Ok(())
    }

    /// Replaces both the graph and the configuration, resizing the per-agent
    /// statistics buffers (counts of surviving agents are preserved; the step
    /// counter keeps running).  This is the substrate for agent join/leave
    /// churn.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::ConfigurationSizeMismatch`] if the graph
    /// and configuration disagree on the number of agents.
    pub fn resize(&mut self, graph: G, config: Configuration<P::State>) -> Result<()> {
        if graph.num_agents() != config.len() {
            return Err(PopulationError::ConfigurationSizeMismatch {
                configuration: config.len(),
                graph: graph.num_agents(),
            });
        }
        self.stats.resize(config.len());
        self.graph = graph;
        self.config = config;
        Ok(())
    }

    /// Number of steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.graph.num_agents()
    }

    /// Run statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to add annotations).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Enables or disables trace recording (disabled by default).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Executes one step under the uniformly random scheduler.
    ///
    /// Returns the interaction that occurred.
    pub fn step(&mut self) -> Interaction {
        self.step_observed(&mut NoObserver)
    }

    /// Like [`Simulation::step`], invoking `observer` around the transition.
    ///
    /// The observer sees the two scheduled states immediately before and
    /// after the transition function — enough for O(1) incremental
    /// statistics ([`crate::observer::LeaderCounter`]).  The RNG stream,
    /// transition and bookkeeping are exactly those of the unobserved step,
    /// so observation never perturbs the execution.
    pub fn step_observed<O: StepObserver<P>>(&mut self, observer: &mut O) -> Interaction {
        let interaction = self.graph.sample(&mut self.rng);
        self.apply_observed(interaction, observer);
        interaction
    }

    /// Executes one step chosen by an explicit scheduler.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors (e.g. an exhausted deterministic schedule).
    pub fn step_with_scheduler<S: Scheduler<G>>(
        &mut self,
        scheduler: &mut S,
    ) -> Result<Interaction> {
        self.step_chosen_by(|graph, _config, rng| scheduler.next_interaction(graph, rng))
    }

    /// Executes one step whose interaction is chosen by an arbitrary closure
    /// over the graph, the **current configuration** and the simulation's
    /// RNG.  This is the hook behind state-aware adversarial schedulers
    /// ([`crate::scenario::DynScheduler`]): unlike
    /// [`Simulation::step_with_scheduler`], the chooser can inspect agent
    /// states to pick a convergence-hostile arc.
    ///
    /// The chosen pair is validated against the graph, so a buggy scheduler
    /// cannot smuggle in a non-arc interaction.
    ///
    /// # Errors
    ///
    /// Propagates the chooser's error, or [`PopulationError::NotAnArc`] if
    /// the chosen pair is not an arc of the graph.
    pub fn step_chosen_by<F>(&mut self, choose: F) -> Result<Interaction>
    where
        F: FnOnce(&G, &Configuration<P::State>, &mut ChaCha8Rng) -> Result<Interaction>,
    {
        self.step_chosen_by_observed(&mut NoObserver, choose)
    }

    /// Like [`Simulation::step_chosen_by`], invoking `observer` around the
    /// transition (same contract as [`Simulation::step_observed`]).
    ///
    /// # Errors
    ///
    /// Propagates the chooser's error, or [`PopulationError::NotAnArc`] if
    /// the chosen pair is not an arc of the graph.
    pub fn step_chosen_by_observed<O, F>(
        &mut self,
        observer: &mut O,
        choose: F,
    ) -> Result<Interaction>
    where
        O: StepObserver<P>,
        F: FnOnce(&G, &Configuration<P::State>, &mut ChaCha8Rng) -> Result<Interaction>,
    {
        let interaction = choose(&self.graph, &self.config, &mut self.rng)?;
        if !self.graph.is_arc(
            interaction.initiator().index(),
            interaction.responder().index(),
        ) {
            return Err(PopulationError::NotAnArc {
                initiator: interaction.initiator().index(),
                responder: interaction.responder().index(),
            });
        }
        self.apply_observed(interaction, observer);
        Ok(interaction)
    }

    /// Applies one specific interaction (the configuration transition
    /// `C →e C'` of Section 2), bypassing the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the interaction references agents outside the population.
    pub fn apply(&mut self, interaction: Interaction) {
        self.apply_observed(interaction, &mut NoObserver);
    }

    /// Like [`Simulation::apply`], invoking `observer` around the
    /// transition.  [`crate::observer::NoObserver`]'s empty hooks inline
    /// away, so `apply` *is* this function.
    pub fn apply_observed<O: StepObserver<P>>(
        &mut self,
        interaction: Interaction,
        observer: &mut O,
    ) {
        let i = interaction.initiator().index();
        let j = interaction.responder().index();
        assert!(
            i < self.config.len() && j < self.config.len() && i != j,
            "interaction {interaction} out of range for population of {}",
            self.config.len()
        );
        // Environment hook (oracles).  Compiled out entirely for pure
        // protocol types; one predicted branch for erased ones.
        if P::HAS_ENVIRONMENT && self.env_active {
            self.protocol.environment(self.config.states_mut());
        }

        // Split-borrow the two interacting states.
        let states = self.config.states_mut();
        let (a, b) = if i < j {
            let (lo, hi) = states.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = states.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        observer.pre_interaction(&self.protocol, interaction, a, b);
        self.protocol.interact(a, b);
        observer.post_interaction(&self.protocol, interaction, a, b);

        self.stats.record_interaction(i, j);
        self.trace.record(Event::Interaction {
            step: self.steps,
            interaction,
        });
        self.steps += 1;
    }

    /// Runs exactly `k` steps under the uniformly random scheduler.
    pub fn run_steps(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
        // One counter update per burst, never per step: the hot loop pays
        // exactly one relaxed load here when telemetry is disabled.
        ssle_telemetry::metrics::well_known::HOT_STEPS.add(k);
    }

    /// Runs exactly `k` steps under the uniformly random scheduler with an
    /// observer attached.
    pub fn run_steps_observed<O: StepObserver<P>>(&mut self, k: u64, observer: &mut O) {
        for _ in 0..k {
            self.step_observed(observer);
        }
        ssle_telemetry::metrics::well_known::HOT_STEPS.add(k);
    }

    /// Applies every interaction of `seq`, in order.
    pub fn apply_sequence(&mut self, seq: &InteractionSeq) {
        for &interaction in seq.iter() {
            self.apply(interaction);
        }
    }

    /// Runs under the uniformly random scheduler until `predicate` holds
    /// (checked every `check_interval` steps, and once before running) or
    /// until `max_steps` steps have been executed in this call.
    ///
    /// The returned report gives the step count *of this simulation* at the
    /// first passing check.  Because checks are periodic, the reported value
    /// over-estimates the true convergence step by at most `check_interval`.
    pub fn run_until<F>(
        &mut self,
        mut predicate: F,
        check_interval: u64,
        max_steps: u64,
    ) -> ConvergenceReport
    where
        F: FnMut(&P, &Configuration<P::State>) -> bool,
    {
        // The placeholder name is a borrowed `'static` so this function
        // allocates nothing per invocation; named callers (`run_criterion`,
        // the scenario layer) overwrite it once.
        const PREDICATE: Cow<'static, str> = Cow::Borrowed("predicate");
        let check_interval = check_interval.max(1);
        let start = self.steps;
        if predicate(&self.protocol, &self.config) {
            return ConvergenceReport {
                converged_at: Some(self.steps),
                steps_executed: 0,
                max_steps,
                check_interval,
                criterion: PREDICATE,
            };
        }
        let mut executed = 0u64;
        while executed < max_steps {
            let burst = check_interval.min(max_steps - executed);
            self.run_steps(burst);
            executed += burst;
            if predicate(&self.protocol, &self.config) {
                if self.trace.is_enabled() {
                    self.trace.record(Event::Converged {
                        step: self.steps,
                        criterion: "predicate".into(),
                    });
                }
                if ssle_telemetry::enabled() {
                    ssle_telemetry::emit(
                        ssle_telemetry::Event::new("converged").count("step", self.steps),
                    );
                }
                return ConvergenceReport {
                    converged_at: Some(self.steps),
                    steps_executed: executed,
                    max_steps,
                    check_interval,
                    criterion: PREDICATE,
                };
            }
        }
        ConvergenceReport {
            converged_at: None,
            steps_executed: self.steps - start,
            max_steps,
            check_interval,
            criterion: PREDICATE,
        }
    }

    /// Like [`Simulation::run_until`] but driven by a named [`Criterion`].
    pub fn run_criterion<C>(
        &mut self,
        criterion: &C,
        check_interval: u64,
        max_steps: u64,
    ) -> ConvergenceReport
    where
        C: Criterion<P>,
    {
        let name = criterion.name().to_string();
        let mut report = self.run_until(
            |p, c| criterion.is_satisfied(p, c.states()),
            check_interval,
            max_steps,
        );
        report.criterion = Cow::Owned(name);
        report
    }

    /// Consumes the simulation and returns the final configuration.
    pub fn into_config(self) -> Configuration<P::State> {
        self.config
    }
}

impl<P, G> Simulation<P, G>
where
    P: LeaderElection,
    G: InteractionGraph,
{
    /// Number of agents currently outputting `L`.
    pub fn count_leaders(&self) -> usize {
        self.protocol.count_leaders(self.config.states())
    }

    /// Runs under the uniformly random scheduler for `max_steps` steps while
    /// recording every change of the leader set (into the trace too, when
    /// tracing is enabled).  Returns the steps at which the leader set
    /// changed.
    ///
    /// This powers the [`crate::convergence::StableOutputs`] estimator for
    /// baseline protocols without a structural safe-configuration checker.
    ///
    /// For pure protocols an interaction can only change the leader bits of
    /// the two touched agents, so changes are detected incrementally from a
    /// [`LeaderCounter`] observer in O(1) per step (the old implementation
    /// recomputed — and allocated — the full leader-index vector every
    /// step).  Oracle protocols ([`Simulation::environment_active`]) can
    /// mutate any agent per step and keep the O(n) recount path.
    pub fn run_tracking_leader_changes(&mut self, max_steps: u64) -> Vec<u64> {
        if self.env_active {
            return self.run_tracking_leader_changes_recount(max_steps);
        }
        let mut changes = Vec::new();
        let mut counter = LeaderCounter::new(&self.protocol, self.config.states());
        for _ in 0..max_steps {
            self.step_observed(&mut counter);
            if counter.last_step_changed() {
                changes.push(self.steps);
                if self.trace.is_enabled() {
                    let leaders = self.protocol.leader_indices(self.config.states());
                    self.trace.record(Event::LeaderSetChanged {
                        step: self.steps,
                        leaders,
                    });
                }
            }
        }
        changes
    }

    /// The O(n)-per-step fallback of
    /// [`Simulation::run_tracking_leader_changes`], kept for oracle
    /// protocols whose environment hook may silently retarget leadership
    /// between interactions.
    fn run_tracking_leader_changes_recount(&mut self, max_steps: u64) -> Vec<u64> {
        let mut changes = Vec::new();
        let mut current = self.protocol.leader_indices(self.config.states());
        for _ in 0..max_steps {
            self.step();
            let now = self.protocol.leader_indices(self.config.states());
            if now != current {
                changes.push(self.steps);
                // The clone of the index vector is only paid when the trace
                // actually records it.
                if self.trace.is_enabled() {
                    self.trace.record(Event::LeaderSetChanged {
                        step: self.steps,
                        leaders: now.clone(),
                    });
                }
                current = now;
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::UniqueLeader;
    use crate::graph::{CompleteGraph, DirectedRing};

    /// Classic pairwise leader elimination on a complete graph.
    #[derive(Clone, Debug)]
    struct Fratricide;
    impl Protocol for Fratricide {
        type State = bool;
        fn interact(&self, initiator: &mut bool, responder: &mut bool) {
            if *initiator && *responder {
                *responder = false;
            }
        }
        fn name(&self) -> &'static str {
            "fratricide"
        }
    }
    impl LeaderElection for Fratricide {
        fn is_leader(&self, s: &bool) -> bool {
            *s
        }
    }

    /// A protocol that simply copies the initiator's value to the responder —
    /// convenient for checking deterministic sequences on a ring.
    #[derive(Clone, Debug)]
    struct Broadcast;
    impl Protocol for Broadcast {
        type State = u32;
        fn interact(&self, initiator: &mut u32, responder: &mut u32) {
            *responder = *initiator;
        }
    }

    #[test]
    fn mismatched_configuration_is_rejected() {
        let g = DirectedRing::new(4).unwrap();
        let c = Configuration::uniform(3, 0u32);
        assert!(matches!(
            Simulation::try_new(Broadcast, g, c, 0),
            Err(PopulationError::ConfigurationSizeMismatch { .. })
        ));
    }

    #[test]
    fn fratricide_converges_to_unique_leader() {
        let g = CompleteGraph::new(16);
        let c = Configuration::uniform(16, true);
        let mut sim = Simulation::new(Fratricide, g, c, 11);
        let report = sim.run_criterion(&UniqueLeader, 1, 200_000);
        assert!(report.converged());
        assert_eq!(sim.count_leaders(), 1);
        assert_eq!(report.criterion, "unique-leader");
        // Leaders never increase, so the criterion keeps holding.
        sim.run_steps(10_000);
        assert_eq!(sim.count_leaders(), 1);
    }

    #[test]
    fn run_until_returns_immediately_if_already_satisfied() {
        let g = CompleteGraph::new(4);
        let c = Configuration::from_states(vec![true, false, false, false]);
        let mut sim = Simulation::new(Fratricide, g, c, 0);
        let report = sim.run_criterion(&UniqueLeader, 100, 1000);
        assert!(report.converged());
        assert_eq!(report.steps_executed, 0);
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn run_until_respects_budget() {
        let g = CompleteGraph::new(4);
        let c = Configuration::uniform(4, false);
        let mut sim = Simulation::new(Fratricide, g, c, 0);
        // No leader will ever appear; the run must stop at the budget.
        let report = sim.run_criterion(&UniqueLeader, 7, 100);
        assert!(!report.converged());
        assert_eq!(report.steps_executed, 100);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn deterministic_sequence_drives_broadcast_around_ring() {
        let n = 8;
        let g = DirectedRing::new(n).unwrap();
        let mut states = vec![0u32; n];
        states[0] = 42;
        let mut sim = Simulation::new(Broadcast, g, Configuration::from_states(states), 0);
        // seq_R(0, n-1) copies u_0's value all the way round.
        sim.apply_sequence(&InteractionSeq::seq_r(0, n - 1, n));
        assert!(sim.config().states().iter().all(|&x| x == 42));
        assert_eq!(sim.steps(), (n - 1) as u64);
    }

    #[test]
    fn apply_records_stats_and_trace() {
        let g = DirectedRing::new(4).unwrap();
        let mut sim = Simulation::new(Broadcast, g, Configuration::uniform(4, 0u32), 5);
        sim.set_tracing(true);
        sim.apply(Interaction::new(1, 2));
        sim.apply(Interaction::new(2, 3));
        assert_eq!(sim.stats().steps(), 2);
        assert_eq!(sim.stats().interactions_of(2), 2);
        assert_eq!(sim.trace().len(), 2);
        assert_eq!(sim.num_agents(), 4);
        assert!(sim.graph().is_arc(1, 2));
    }

    #[test]
    #[should_panic(expected = "HAS_ENVIRONMENT")]
    fn oracle_without_has_environment_is_rejected_at_construction() {
        /// Claims an oracle at runtime but forgot the compile-time opt-in:
        /// its environment hook would silently never run.
        #[derive(Clone, Debug)]
        struct Misconfigured;
        impl Protocol for Misconfigured {
            type State = bool;
            fn interact(&self, _i: &mut bool, _r: &mut bool) {}
            fn environment(&self, states: &mut [bool]) {
                states.fill(true);
            }
            fn uses_oracle(&self) -> bool {
                true
            }
        }
        let g = CompleteGraph::new(4);
        let _ = Simulation::new(Misconfigured, g, Configuration::uniform(4, false), 0);
    }

    #[test]
    fn scheduler_arc_membership_is_enforced() {
        use crate::scheduler::SequenceScheduler;
        let g = DirectedRing::new(4).unwrap();
        let mut sim = Simulation::new(Broadcast, g, Configuration::uniform(4, 0u32), 5);
        // (0, 2) is not an arc of the directed ring.
        let mut bad =
            SequenceScheduler::new(InteractionSeq::from_interactions(vec![Interaction::new(
                0, 2,
            )]));
        let err = sim.step_with_scheduler(&mut bad).unwrap_err();
        assert!(matches!(err, PopulationError::NotAnArc { .. }));
    }

    #[test]
    fn step_with_random_scheduler_object() {
        use crate::scheduler::RandomScheduler;
        let g = DirectedRing::new(4).unwrap();
        let mut sim = Simulation::new(Broadcast, g, Configuration::uniform(4, 0u32), 5);
        let mut sched = RandomScheduler::new();
        for _ in 0..10 {
            sim.step_with_scheduler(&mut sched).unwrap();
        }
        assert_eq!(sim.steps(), 10);
    }

    #[test]
    fn leader_change_tracking() {
        let g = CompleteGraph::new(8);
        let c = Configuration::uniform(8, true);
        let mut sim = Simulation::new(Fratricide, g, c, 3);
        let changes = sim.run_tracking_leader_changes(50_000);
        assert!(!changes.is_empty());
        assert_eq!(sim.count_leaders(), 1);
        // Changes are strictly increasing.
        assert!(changes.windows(2).all(|w| w[0] < w[1]));
        // 7 demotions are needed to get from 8 leaders to 1.
        assert_eq!(changes.len(), 7);
    }

    #[test]
    fn same_seed_reproduces_the_same_execution() {
        let g = CompleteGraph::new(8);
        let c = Configuration::uniform(8, true);
        let mut a = Simulation::new(Fratricide, g, c.clone(), 99);
        let mut b = Simulation::new(Fratricide, g, c, 99);
        a.run_steps(1000);
        b.run_steps(1000);
        assert_eq!(a.config().states(), b.config().states());
    }

    #[test]
    fn into_config_returns_final_states() {
        let g = DirectedRing::new(3).unwrap();
        let sim = Simulation::new(Broadcast, g, Configuration::from_states(vec![1, 2, 3]), 0);
        assert_eq!(sim.into_config().into_states(), vec![1, 2, 3]);
    }

    #[test]
    fn reports_reflect_check_interval_granularity() {
        let g = CompleteGraph::new(32);
        let c = Configuration::uniform(32, true);
        let mut sim = Simulation::new(Fratricide, g, c, 17);
        let interval = 500;
        let report = sim.run_criterion(&UniqueLeader, interval, 5_000_000);
        assert!(report.converged());
        assert_eq!(report.convergence_step() % interval, 0);
    }
}
