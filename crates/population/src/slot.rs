//! Inline state slots: the flat storage behind the erased run path.
//!
//! [`DynState`] is the type-erased per-agent state used by the
//! [`crate::scenario`] layer.  Its first incarnation was a plain
//! `Box<dyn ErasedState>`: correct, but every access paid a heap-pointer
//! chase and every transition two of them, with the states of a population
//! scattered across the allocator — millions of cache misses per trial once
//! every figure binary started running through the erased path.
//!
//! This module replaces the box with a **fixed-size inline slot**:
//!
//! * a [`DynState`] is `{ ops: &'static StateOps, storage: [40 bytes] }` —
//!   48 bytes total, so a `Configuration<DynState>` is one contiguous,
//!   cache-friendly buffer;
//! * states with `size <= 40` and `align <= 8` (every Table 1 protocol state;
//!   the largest, `PplState`, is exactly 40 bytes) are stored **in-line** in
//!   the slot — no heap allocation, no pointer chase;
//! * oversized or over-aligned states transparently fall back to a boxed
//!   representation behind the same API ([`DynState::is_inline`] tells which
//!   path a value took, [`fits_inline`] decides per type at compile time);
//! * per-type behaviour (clone/drop/eq/debug/type-identity) lives in a
//!   `&'static` ops table — a hand-rolled vtable — so `DynState` itself needs
//!   no trait object.
//!
//! Type identity is checked on every downcast exactly as `dyn Any` would:
//! each `DynState` stores its `TypeId` by value, so the check is a
//! constant-folded 16-byte compare (no indirect call), and mixing states of
//! different protocols still fails loudly rather than reinterpreting
//! memory.
//!
//! This is the only module in the crate that uses `unsafe`; every unsafe
//! block is justified inline and the invariants are summarized on
//! [`DynState`].

#![allow(unsafe_code)]

use std::any::{Any, TypeId};
use std::fmt;
use std::mem::{align_of, needs_drop, size_of, MaybeUninit};

/// Number of bytes a state may occupy to be stored in-line.
///
/// Sized to fit the largest Table 1 protocol state (`PplState`, 40 bytes)
/// so that all four measured protocols take the inline path; see the
/// `all_table1_states_take_the_inline_path` test in
/// `crates/bench/tests/scenario_equivalence.rs`, which pins this.
pub const INLINE_SLOT_BYTES: usize = 40;

/// Maximum alignment of an inline state.
pub const INLINE_SLOT_ALIGN: usize = 8;

/// The raw slot: 40 bytes with 8-byte alignment, always reserved in-line.
type RawSlot = [MaybeUninit<u64>; INLINE_SLOT_BYTES / 8];

/// Returns `true` if values of type `S` are stored in-line in the slot
/// (rather than boxed).  This is a compile-time property of `S`.
pub const fn fits_inline<S>() -> bool {
    size_of::<S>() <= INLINE_SLOT_BYTES && align_of::<S>() <= INLINE_SLOT_ALIGN
}

/// The bounds a typed state must satisfy to be erased into a [`DynState`]:
/// exactly the [`crate::protocol::Protocol::State`] bounds plus `'static`.
///
/// Blanket-implemented; user code never implements it directly.
pub trait SlotState: Any + Clone + PartialEq + fmt::Debug + Send + Sync {}

impl<S> SlotState for S where S: Any + Clone + PartialEq + fmt::Debug + Send + Sync {}

/// Either the state value itself (inline) or a pointer to its heap box.
///
/// Which variant is live is a compile-time property of the stored type
/// (`fits_inline::<S>()`), recorded in the ops table — the union carries no
/// discriminant of its own.
union Storage {
    /// In-line representation: the state's bytes, written at offset 0.
    inline: RawSlot,
    /// Boxed fallback: an owning pointer created by `Box::into_raw`.
    boxed: *mut u8,
}

/// The hand-rolled vtable of one erased state type.
struct StateOps {
    /// `true` if values of this type live in-line in the slot.
    inline: bool,
    /// `true` if dropping a value of this type runs any code (lets
    /// `Drop for DynState` skip the indirect call for plain-old-data states,
    /// which all the protocol states are).
    needs_drop: bool,
    /// Drops the stored value (in place for inline, freeing the box
    /// otherwise).  Safety: `storage` must hold a live value of this type.
    drop: unsafe fn(&mut Storage),
    /// Clones the stored value into a fresh storage of the same
    /// representation.  Safety: `storage` must hold a live value of this type.
    clone: unsafe fn(&Storage) -> Storage,
    /// Structural equality.  Safety: both storages must hold live values of
    /// this type.
    eq: unsafe fn(&Storage, &Storage) -> bool,
    /// Debug-formats the stored value.  Safety: `storage` must hold a live
    /// value of this type.
    debug: unsafe fn(&Storage, &mut fmt::Formatter<'_>) -> fmt::Result,
    /// FNV-1a digest of the stored value's `Debug` byte stream, salted.
    /// Safety: `storage` must hold a live value of this type.
    digest: unsafe fn(&Storage, u64) -> u64,
}

/// Per-type ops-table factory: `&Ops::<S>::TABLE` is the promoted `'static`
/// vtable of `S`.
struct Ops<S>(std::marker::PhantomData<S>);

impl<S: SlotState> Ops<S> {
    const TABLE: StateOps = StateOps {
        inline: fits_inline::<S>(),
        needs_drop: !fits_inline::<S>() || needs_drop::<S>(),
        drop: drop_storage::<S>,
        clone: clone_storage::<S>,
        eq: eq_storage::<S>,
        debug: debug_storage::<S>,
        digest: digest_storage::<S>,
    };
}

/// Writes `state` into a fresh storage, in-line if it fits.
fn make_storage<S: SlotState>(state: S) -> Storage {
    if fits_inline::<S>() {
        let mut slot: RawSlot = [MaybeUninit::uninit(); INLINE_SLOT_BYTES / 8];
        // SAFETY: `fits_inline::<S>()` guarantees `S` fits in the slot's size
        // and alignment, so the cast pointer is valid and suitably aligned
        // for one `S`; the slot is freshly uninitialized, so nothing is
        // overwritten.
        unsafe { slot.as_mut_ptr().cast::<S>().write(state) };
        Storage { inline: slot }
    } else {
        Storage {
            boxed: Box::into_raw(Box::new(state)).cast(),
        }
    }
}

/// Pointer to the live `S` inside `storage`.
///
/// # Safety
///
/// `storage` must have been created by `make_storage::<S>` (i.e. hold a live
/// value of exactly type `S`).
unsafe fn value_ptr<S: SlotState>(storage: &Storage) -> *const S {
    if fits_inline::<S>() {
        // SAFETY (union read): the inline variant is live per the contract.
        unsafe { storage.inline.as_ptr().cast::<S>() }
    } else {
        // SAFETY (union read): the boxed variant is live per the contract.
        unsafe { storage.boxed.cast::<S>() }
    }
}

/// Mutable variant of [`value_ptr`]; same safety contract.
unsafe fn value_ptr_mut<S: SlotState>(storage: &mut Storage) -> *mut S {
    if fits_inline::<S>() {
        // SAFETY (union read): the inline variant is live per the contract.
        unsafe { storage.inline.as_mut_ptr().cast::<S>() }
    } else {
        // SAFETY (union read): the boxed variant is live per the contract.
        unsafe { storage.boxed.cast::<S>() }
    }
}

/// Ops-table entry: drop.  Safety contract as on [`StateOps::drop`].
unsafe fn drop_storage<S: SlotState>(storage: &mut Storage) {
    if fits_inline::<S>() {
        // SAFETY: the slot holds a live `S`; dropping it in place ends its
        // lifetime exactly once (the caller never touches it again).
        unsafe { std::ptr::drop_in_place(value_ptr_mut::<S>(storage)) };
    } else {
        // SAFETY: the pointer came from `Box::into_raw` in `make_storage`
        // and has not been freed; re-owning the box drops and frees it.
        drop(unsafe { Box::from_raw(storage.boxed.cast::<S>()) });
    }
}

/// Ops-table entry: clone.  Safety contract as on [`StateOps::clone`].
unsafe fn clone_storage<S: SlotState>(storage: &Storage) -> Storage {
    // SAFETY: the storage holds a live `S` per the contract.
    make_storage(unsafe { &*value_ptr::<S>(storage) }.clone())
}

/// Ops-table entry: equality.  Safety contract as on [`StateOps::eq`].
unsafe fn eq_storage<S: SlotState>(a: &Storage, b: &Storage) -> bool {
    // SAFETY: both storages hold live `S` values per the contract.
    unsafe { *value_ptr::<S>(a) == *value_ptr::<S>(b) }
}

/// Ops-table entry: debug.  Safety contract as on [`StateOps::debug`].
unsafe fn debug_storage<S: SlotState>(
    storage: &Storage,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    // SAFETY: the storage holds a live `S` per the contract.
    write!(f, "{:?}", unsafe { &*value_ptr::<S>(storage) })
}

/// FNV-1a over the bytes a value writes through `fmt::Write` — the
/// no-allocation hasher behind the `digest` op (the `Debug` output is hashed
/// as it is produced, never materialized).
struct FnvWriter {
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl FnvWriter {
    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }
}

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.mix_bytes(s.as_bytes());
        Ok(())
    }
}

/// Ops-table entry: digest.  Safety contract as on [`StateOps::digest`].
unsafe fn digest_storage<S: SlotState>(storage: &Storage, salt: u64) -> u64 {
    use fmt::Write as _;
    let mut writer = FnvWriter { hash: FNV_OFFSET };
    writer.mix_bytes(&salt.to_le_bytes());
    // SAFETY: the storage holds a live `S` per the contract.
    write!(writer, "{:?}", unsafe { &*value_ptr::<S>(storage) })
        .expect("hashing a Debug stream cannot fail");
    writer.hash
}

/// A type-erased per-agent state with inline small-state storage.
///
/// Satisfies the [`crate::protocol::Protocol::State`] bounds, so
/// `Configuration<DynState>` plugs into the ordinary
/// [`crate::simulation::Simulation`] engine — as one flat 48-bytes-per-agent
/// buffer rather than a vector of heap pointers.
///
/// # Invariants (maintained by every constructor and upheld by the unsafe
/// blocks in this module)
///
/// * `storage` always holds a live value of exactly the type identified by
///   `type_id`, which is also the type `ops` was instantiated for.
/// * The representation (inline vs boxed) matches `fits_inline` for that
///   type, i.e. `ops.inline`.
/// * The stored type is `Send + Sync` (required by [`DynState::new`]), which
///   justifies the manual `Send`/`Sync` impls below.
///
/// The type id is stored by value (not behind the ops table) so the two
/// downcasts of every erased interaction are a constant-folded 16-byte
/// compare instead of an indirect call; together with the 40-byte slot and
/// the ops pointer this makes `DynState` exactly one 64-byte cache line.
pub struct DynState {
    ops: &'static StateOps,
    type_id: TypeId,
    storage: Storage,
}

// SAFETY: a `DynState` owns exactly one value of a type that was required to
// be `Send + Sync` at construction ([`SlotState`]); the raw pointer in the
// boxed variant is an owning pointer to that value, never shared.
unsafe impl Send for DynState {}
// SAFETY: as above; `&DynState` only exposes `&S` views of a `Sync` value.
unsafe impl Sync for DynState {}

impl DynState {
    /// Erases a typed state, storing it in-line if it fits the slot.
    pub fn new<S: SlotState>(state: S) -> Self {
        DynState {
            ops: &Ops::<S>::TABLE,
            type_id: TypeId::of::<S>(),
            storage: make_storage(state),
        }
    }

    /// `true` if this value is stored in-line (no heap allocation).
    pub fn is_inline(&self) -> bool {
        self.ops.inline
    }

    /// `true` if the stored value has type `S`.
    #[inline]
    fn is<S: SlotState>(&self) -> bool {
        self.type_id == TypeId::of::<S>()
    }

    /// Borrows the underlying state if it has type `S`.
    #[inline]
    pub fn downcast_ref<S: SlotState>(&self) -> Option<&S> {
        if self.is::<S>() {
            // SAFETY: the type check passed, so the storage holds a live `S`
            // (struct invariant); the reference borrows `self`.
            Some(unsafe { &*value_ptr::<S>(&self.storage) })
        } else {
            None
        }
    }

    /// A salted 64-bit digest of the stored value, computed by streaming its
    /// `Debug` output through an FNV-1a hasher (no allocation).
    ///
    /// Equal states always produce equal digests (derived `Debug` output is a
    /// deterministic function of the value); unequal states *may* collide, so
    /// digests are recurrence **candidates** only — callers must confirm with
    /// `==` before trusting a match.  The digest is meaningful only when the
    /// state's `Debug` representation is injective, which every
    /// `#[derive(Debug)]` state satisfies.
    pub fn digest(&self, salt: u64) -> u64 {
        // SAFETY: the storage holds a live value of the ops table's type.
        unsafe { (self.ops.digest)(&self.storage, salt) }
    }

    /// Mutably borrows the underlying state if it has type `S`.
    #[inline]
    pub fn downcast_mut<S: SlotState>(&mut self) -> Option<&mut S> {
        if self.is::<S>() {
            // SAFETY: as in `downcast_ref`, plus exclusivity from `&mut self`.
            Some(unsafe { &mut *value_ptr_mut::<S>(&mut self.storage) })
        } else {
            None
        }
    }
}

impl Drop for DynState {
    fn drop(&mut self) {
        if self.ops.needs_drop {
            // SAFETY: the storage holds a live value of the ops table's type
            // (struct invariant) and is never used after `drop`.
            unsafe { (self.ops.drop)(&mut self.storage) };
        }
    }
}

impl Clone for DynState {
    fn clone(&self) -> Self {
        DynState {
            ops: self.ops,
            type_id: self.type_id,
            // SAFETY: the storage holds a live value of the ops table's type.
            storage: unsafe { (self.ops.clone)(&self.storage) },
        }
    }
}

impl PartialEq for DynState {
    fn eq(&self, other: &Self) -> bool {
        // Different stored types never compare equal.
        self.type_id == other.type_id
            // SAFETY: both storages hold live values of the same type.
            && unsafe { (self.ops.eq)(&self.storage, &other.storage) }
    }
}

impl fmt::Debug for DynState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // SAFETY: the storage holds a live value of the ops table's type.
        unsafe { (self.ops.debug)(&self.storage, f) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A state that is far too big for the slot: exercises the boxed path.
    #[derive(Clone, Debug, PartialEq)]
    struct Big([u64; 16]);

    /// A small state with a non-trivial drop: exercises inline drop.
    #[derive(Clone, Debug)]
    struct Counting(Arc<AtomicUsize>);

    impl PartialEq for Counting {
        fn eq(&self, other: &Self) -> bool {
            Arc::ptr_eq(&self.0, &other.0)
        }
    }

    impl Drop for Counting {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn small_states_are_inline_and_big_states_are_boxed() {
        assert!(fits_inline::<bool>());
        assert!(fits_inline::<u64>());
        assert!(fits_inline::<[u8; 40]>());
        assert!(!fits_inline::<[u8; 41]>());
        assert!(!fits_inline::<Big>());
        assert!(fits_inline::<()>(), "zero-sized states are inline");

        assert!(DynState::new(5u32).is_inline());
        assert!(DynState::new(()).is_inline());
        assert!(!DynState::new(Big([0; 16])).is_inline());
    }

    #[test]
    fn digests_agree_for_equal_states_and_salt_is_load_bearing() {
        // Inline path.
        assert_eq!(
            DynState::new(42u32).digest(7),
            DynState::new(42u32).digest(7)
        );
        assert_ne!(
            DynState::new(42u32).digest(7),
            DynState::new(43u32).digest(7)
        );
        assert_ne!(
            DynState::new(42u32).digest(0),
            DynState::new(42u32).digest(1),
            "the salt must perturb the digest"
        );
        // Boxed path.
        let big = Big([3; 16]);
        assert_eq!(
            DynState::new(big.clone()).digest(9),
            DynState::new(big.clone()).digest(9)
        );
        assert_ne!(
            DynState::new(big).digest(9),
            DynState::new(Big([4; 16])).digest(9)
        );
    }

    #[test]
    fn dyn_state_is_exactly_one_cache_line() {
        // ops pointer (8) + type id (16) + slot (40) = 64 bytes.
        assert_eq!(size_of::<DynState>(), 64);
        assert_eq!(align_of::<DynState>(), INLINE_SLOT_ALIGN);
    }

    #[test]
    fn clone_eq_debug_and_downcast_inline() {
        let a = DynState::new(5u32);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, DynState::new(6u32));
        assert_ne!(
            a,
            DynState::new(5u64),
            "different types never compare equal"
        );
        assert_eq!(format!("{a:?}"), "5");
        assert_eq!(a.downcast_ref::<u32>(), Some(&5));
        assert_eq!(a.downcast_ref::<u64>(), None);
        let mut c = a.clone();
        *c.downcast_mut::<u32>().unwrap() = 9;
        assert_eq!(c.downcast_ref::<u32>(), Some(&9));
        assert_eq!(a.downcast_ref::<u32>(), Some(&5), "clones are independent");
    }

    #[test]
    fn clone_eq_debug_and_downcast_boxed() {
        let a = DynState::new(Big([7; 16]));
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, DynState::new(Big([8; 16])));
        assert!(format!("{a:?}").starts_with("Big"));
        assert_eq!(a.downcast_ref::<Big>(), Some(&Big([7; 16])));
        assert_eq!(a.downcast_ref::<u32>(), None);
        let mut c = b.clone();
        c.downcast_mut::<Big>().unwrap().0[0] = 1;
        assert_ne!(b, c, "boxed clones are independent");
    }

    #[test]
    fn inline_drop_runs_exactly_once_per_value() {
        let drops = Arc::new(AtomicUsize::new(0));
        assert!(fits_inline::<Counting>(), "Arc-sized state must be inline");
        {
            let a = DynState::new(Counting(Arc::clone(&drops)));
            let _b = a.clone();
            let _c = a.clone();
        }
        // 3 DynState values dropped => 3 Counting drops (no double frees,
        // no leaks: each would show up as a wrong count here or under miri).
        assert_eq!(drops.load(Ordering::SeqCst), 3);
        assert_eq!(Arc::strong_count(&drops), 1);
    }

    #[test]
    fn boxed_drop_frees_the_box() {
        /// The array only exists to push the size past the slot.
        #[derive(Clone, Debug)]
        struct BigCounting(#[allow(dead_code)] [u64; 8], Arc<AtomicUsize>);
        impl PartialEq for BigCounting {
            fn eq(&self, _: &Self) -> bool {
                true
            }
        }
        impl Drop for BigCounting {
            fn drop(&mut self) {
                self.1.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        assert!(!fits_inline::<BigCounting>());
        {
            let a = DynState::new(BigCounting([0; 8], Arc::clone(&drops)));
            let _b = a.clone();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        assert_eq!(Arc::strong_count(&drops), 1);
    }

    #[test]
    fn vectors_of_dyn_states_behave_like_typed_vectors() {
        // The shape `Configuration<DynState>` relies on.
        let states: Vec<DynState> = (0..64u32).map(DynState::new).collect();
        let cloned = states.clone();
        assert_eq!(states, cloned);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.downcast_ref::<u32>(), Some(&(i as u32)));
            assert!(s.is_inline());
        }
    }

    #[test]
    fn over_aligned_states_fall_back_to_the_box() {
        #[derive(Clone, Debug, PartialEq)]
        #[repr(align(16))]
        struct Wide(u8);
        assert!(
            !fits_inline::<Wide>(),
            "align 16 exceeds the slot's align 8"
        );
        let a = DynState::new(Wide(3));
        assert!(!a.is_inline());
        assert_eq!(a.downcast_ref::<Wide>(), Some(&Wide(3)));
    }

    #[test]
    fn send_and_sync_across_threads() {
        let a = DynState::new(41u64);
        let handle = std::thread::spawn(move || a.downcast_ref::<u64>().copied());
        assert_eq!(handle.join().unwrap(), Some(41));
    }
}
