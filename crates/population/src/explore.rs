//! Exhaustive explicit-state exploration of small populations.
//!
//! For populations small enough that the reachable configuration space fits
//! in memory (n ≤ ~8 for the protocols in this workspace), sampling is the
//! wrong tool: the space can simply be enumerated.  This module provides two
//! BFS walks over erased configurations:
//!
//! * [`explore`] — forward BFS over **all** arcs from the initial
//!   configuration, then a backward multi-source BFS from every
//!   stop-satisfying configuration.  The combination decides stabilization
//!   exactly: if every reachable configuration has a finite interaction
//!   distance to the stop set, the protocol converges almost surely under
//!   the uniformly random scheduler and the maximum such distance is the
//!   **exact** worst-case stabilization time (the optimal schedule from the
//!   worst reachable configuration — a certified lower bound on what any
//!   scheduler needs from there).  Otherwise the parent chain to a doomed
//!   configuration is a replayable counterexample trace.
//! * [`phase_closure`] — BFS over the exact product system
//!   (configuration × scheduler phase) induced by an [`ArcPhases`]
//!   structure.  Starting from a recurrent configuration
//!   ([`crate::recurrence::RecurrenceCandidate`]), every step branches over
//!   every arc the scheduler could pick in the active phase; if the closure
//!   is finite and contains no stop configuration, **no** run of that
//!   scheduler from that configuration can ever converge — a certified
//!   livelock, independent of the scheduler's internal randomness.
//!
//! Configurations are interned by their `Debug` rendering (NUL-separated per
//! agent), which is injective for every `#[derive(Debug)]` state type — the
//! same contract [`DynState::digest`] relies on.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;

use crate::config::Configuration;
use crate::protocol::Protocol;
use crate::scenario::DynProtocol;
use crate::schedule::Interaction;
use crate::slot::DynState;

/// Exact interning key of a configuration: the NUL-separated `Debug`
/// renderings of its states.  Injective whenever the state's `Debug` output
/// is (every derived `Debug` qualifies).
fn config_key(config: &Configuration<DynState>) -> String {
    let mut key = String::new();
    for state in config.states() {
        write!(key, "{state:?}\u{0}").expect("writing to a String cannot fail");
    }
    key
}

/// Applies one interaction arc to a copy of `config` and returns the
/// successor configuration.
fn apply_arc(
    protocol: &DynProtocol,
    config: &Configuration<DynState>,
    arc: Interaction,
) -> Configuration<DynState> {
    let mut next = config.clone();
    let (i, j) = (arc.initiator().index(), arc.responder().index());
    debug_assert_ne!(i, j, "interaction arcs join distinct agents");
    let states = next.states_mut();
    if i < j {
        let (head, tail) = states.split_at_mut(j);
        protocol.interact(&mut head[i], &mut tail[0]);
    } else {
        let (head, tail) = states.split_at_mut(i);
        protocol.interact(&mut tail[0], &mut head[j]);
    }
    next
}

/// Size bounds for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum number of distinct configurations to intern before giving up
    /// with [`ExploreVerdict::Truncated`].
    pub max_configs: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_configs: 1 << 17,
        }
    }
}

/// The decision reached by [`explore`].
#[derive(Clone, Debug)]
pub enum ExploreVerdict {
    /// Every reachable configuration can reach the stop set: the protocol
    /// stabilizes almost surely under the uniformly random scheduler.
    Stabilizes {
        /// The exact worst-case stabilization time: the maximum over all
        /// reachable configurations of the minimum number of interactions to
        /// a stop configuration.
        exact_worst_steps: u64,
        /// A configuration attaining `exact_worst_steps` (the first in BFS
        /// order, so the value is deterministic).
        worst_config: Configuration<DynState>,
    },
    /// Some reachable configuration cannot reach the stop set at all.
    NonStabilizing {
        /// Number of reachable configurations with no path to the stop set.
        doomed: usize,
        /// A shortest interaction trace from the initial configuration to a
        /// doomed one (empty when the initial configuration is itself
        /// doomed).  Replaying it through a [`SequenceScheduler`] reproduces
        /// the witness.
        ///
        /// [`SequenceScheduler`]: crate::scheduler::SequenceScheduler
        counterexample: Vec<Interaction>,
    },
    /// The reachable space exceeded [`ExploreLimits::max_configs`]; nothing
    /// was decided.
    Truncated,
}

/// The result of [`explore`].
#[derive(Clone, Debug)]
pub struct Explored {
    /// Number of distinct reachable configurations interned (complete unless
    /// the verdict is [`ExploreVerdict::Truncated`]).
    pub reachable: usize,
    /// How many of them satisfy the stop predicate.
    pub stop_configs: usize,
    /// The decision.
    pub verdict: ExploreVerdict,
}

/// Exhaustively explores the configuration space reachable from `init`
/// under arbitrary schedules over `arcs`, and decides stabilization with
/// respect to `stop` (see the module docs for the exact semantics of the
/// verdicts).
///
/// The walk is fully deterministic: configurations are numbered in BFS
/// order, ties in the worst-case distance break toward the earliest
/// configuration.
pub fn explore(
    protocol: &DynProtocol,
    arcs: &[Interaction],
    init: &Configuration<DynState>,
    stop: &mut dyn FnMut(&[DynState]) -> bool,
    limits: &ExploreLimits,
) -> Explored {
    let mut configs = vec![init.clone()];
    let mut index = HashMap::new();
    index.insert(config_key(init), 0usize);
    let mut is_stop = vec![stop(init.states())];
    // parent[id] = (predecessor id, arc) along a BFS-shortest path from the
    // initial configuration; preds[id] = every one-step predecessor.
    let mut parent: Vec<Option<(usize, Interaction)>> = vec![None];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new()];
    let mut truncated = false;
    let mut cursor = 0usize;
    'bfs: while cursor < configs.len() {
        for &arc in arcs {
            let next = apply_arc(protocol, &configs[cursor], arc);
            let nid = match index.entry(config_key(&next)) {
                Entry::Occupied(entry) => *entry.get(),
                Entry::Vacant(entry) => {
                    if configs.len() >= limits.max_configs {
                        truncated = true;
                        break 'bfs;
                    }
                    let nid = configs.len();
                    entry.insert(nid);
                    is_stop.push(stop(next.states()));
                    configs.push(next);
                    parent.push(Some((cursor, arc)));
                    preds.push(Vec::new());
                    nid
                }
            };
            preds[nid].push(cursor);
        }
        cursor += 1;
    }
    let reachable = configs.len();
    let stop_configs = is_stop.iter().filter(|&&s| s).count();
    if truncated {
        return Explored {
            reachable,
            stop_configs,
            verdict: ExploreVerdict::Truncated,
        };
    }
    // Backward multi-source BFS from the stop set over predecessor edges:
    // dist[id] = minimum number of interactions from configs[id] to a stop
    // configuration, None if unreachable.
    let mut dist: Vec<Option<u64>> = is_stop.iter().map(|&s| s.then_some(0u64)).collect();
    let mut queue: VecDeque<usize> = (0..reachable).filter(|&id| is_stop[id]).collect();
    while let Some(id) = queue.pop_front() {
        let d = dist[id].expect("queued configurations have a distance");
        for &p in &preds[id] {
            if dist[p].is_none() {
                dist[p] = Some(d + 1);
                queue.push_back(p);
            }
        }
    }
    let doomed = dist.iter().filter(|d| d.is_none()).count();
    if doomed > 0 {
        // The first doomed configuration in BFS order; its parent chain is a
        // shortest witness trace from the initial configuration.
        let first = (0..reachable)
            .find(|&id| dist[id].is_none())
            .expect("doomed > 0");
        let mut counterexample = Vec::new();
        let mut at = first;
        while let Some((prev, arc)) = parent[at] {
            counterexample.push(arc);
            at = prev;
        }
        counterexample.reverse();
        return Explored {
            reachable,
            stop_configs,
            verdict: ExploreVerdict::NonStabilizing {
                doomed,
                counterexample,
            },
        };
    }
    let (worst_id, exact_worst_steps) = dist
        .iter()
        .enumerate()
        .map(|(id, d)| (id, d.expect("no configuration is doomed")))
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .expect("the initial configuration is always reachable");
    Explored {
        reachable,
        stop_configs,
        verdict: ExploreVerdict::Stabilizes {
            exact_worst_steps,
            worst_config: configs[worst_id].clone(),
        },
    }
}

/// The phase structure of a deterministic-phase scheduler, for
/// [`phase_closure`]: `groups[g]` is the set of arcs the scheduler can pick
/// while group `g` is active, each group stays active for `epoch_len`
/// consecutive steps, and groups rotate cyclically.  The scheduler's phase
/// (as reported by [`DynScheduler::phase`]) is its step counter modulo
/// `groups.len() × epoch_len`, so group `phase / epoch_len` is active at a
/// given phase.
///
/// [`DynScheduler::phase`]: crate::scenario::DynScheduler::phase
#[derive(Clone, Debug)]
pub struct ArcPhases {
    groups: Vec<Vec<Interaction>>,
    epoch_len: u64,
}

impl ArcPhases {
    /// A single group holding every arc, active forever: the exact phase
    /// structure of every memoryless scheduler (uniform, weighted, greedy),
    /// for which any arc may be picked at any step.
    pub fn unrestricted(arcs: Vec<Interaction>) -> Self {
        ArcPhases {
            groups: vec![arcs],
            epoch_len: 1,
        }
    }

    /// Cyclic groups, each active for `epoch_len` consecutive steps (clamped
    /// to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn cyclic(groups: Vec<Vec<Interaction>>, epoch_len: u64) -> Self {
        assert!(
            !groups.is_empty(),
            "phase structure needs at least one group"
        );
        ArcPhases {
            groups,
            epoch_len: epoch_len.max(1),
        }
    }

    /// The arc groups.
    pub fn groups(&self) -> &[Vec<Interaction>] {
        &self.groups
    }

    /// Steps each group stays active.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// The phase period: `groups.len() × epoch_len` (saturating).
    pub fn rotation(&self) -> u64 {
        self.epoch_len.saturating_mul(self.groups.len() as u64)
    }

    /// The group active at `phase` (which must be below the rotation).
    fn group_of(&self, phase: u64) -> usize {
        ((phase / self.epoch_len) as usize).min(self.groups.len() - 1)
    }
}

/// Size bounds for [`phase_closure`].  Configurations dominate memory
/// (64 bytes per agent each); nodes are (configuration, phase) pairs and
/// dominate time.
#[derive(Clone, Copy, Debug)]
pub struct ClosureLimits {
    /// Maximum number of distinct configurations to intern.
    pub max_configs: usize,
    /// Maximum number of (configuration, phase) nodes to visit.  Nodes are
    /// cheap — a bitset membership test plus a cached successor lookup — so
    /// the default admits the full product of the configuration cap with a
    /// rotation in the thousands (the tracked epoch-partition cells).
    pub max_nodes: usize,
}

impl Default for ClosureLimits {
    fn default() -> Self {
        ClosureLimits {
            max_configs: 4096,
            max_nodes: 1 << 24,
        }
    }
}

/// Visited-node set of the product walk: a lazily-allocated per-configuration
/// bitset over the phase dimension whenever the rotation is small enough to
/// index directly (the overwhelmingly common case — epoch schedulers rotate
/// in the thousands of steps), a hash set otherwise.
enum VisitedNodes {
    Bits {
        rows: Vec<Option<Box<[u64]>>>,
        rotation: usize,
        count: usize,
    },
    Set(HashSet<(usize, u64)>),
}

impl VisitedNodes {
    /// Rotations up to this use the bitset (512 KiB per configuration at
    /// the cap); beyond it the per-row allocation would dwarf the walk.
    const MAX_BITSET_ROTATION: u64 = 1 << 22;

    fn new(rotation: u64) -> Self {
        if rotation <= Self::MAX_BITSET_ROTATION {
            VisitedNodes::Bits {
                rows: Vec::new(),
                rotation: rotation as usize,
                count: 0,
            }
        } else {
            VisitedNodes::Set(HashSet::new())
        }
    }

    /// Marks `(cid, phase)` visited; `true` if it was new.
    fn insert(&mut self, cid: usize, phase: u64) -> bool {
        match self {
            VisitedNodes::Bits {
                rows,
                rotation,
                count,
            } => {
                if rows.len() <= cid {
                    rows.resize_with(cid + 1, || None);
                }
                let words = rows[cid]
                    .get_or_insert_with(|| vec![0u64; rotation.div_ceil(64)].into_boxed_slice());
                let (word, bit) = ((phase / 64) as usize, phase % 64);
                let fresh = words[word] & (1 << bit) == 0;
                if fresh {
                    words[word] |= 1 << bit;
                    *count += 1;
                }
                fresh
            }
            VisitedNodes::Set(set) => set.insert((cid, phase)),
        }
    }

    fn len(&self) -> usize {
        match self {
            VisitedNodes::Bits { count, .. } => *count,
            VisitedNodes::Set(set) => set.len(),
        }
    }
}

/// The result of [`phase_closure`].
#[derive(Clone, Copy, Debug)]
pub struct ClosureOutcome {
    /// `true` if the walk exhausted the closure within the limits; `false`
    /// means nothing was decided.
    pub closed: bool,
    /// `true` if no configuration in the (explored part of the) closure
    /// satisfies the stop predicate.  Only meaningful when `closed`.
    pub stop_free: bool,
    /// Distinct configurations interned.
    pub configs: usize,
    /// (configuration, phase) nodes visited.
    pub nodes: usize,
}

impl ClosureOutcome {
    /// `true` if the closure certifies a livelock: it is finite, fully
    /// explored, and no reachable configuration satisfies the stop
    /// predicate — so no run of the scheduler from the start configuration
    /// can ever converge, regardless of its internal randomness.
    pub fn certifies_livelock(&self) -> bool {
        self.closed && self.stop_free
    }
}

/// Exhaustively walks the exact product system (configuration × phase) of a
/// deterministic-phase scheduler from `start` at `start_phase`: every step
/// branches over every arc of the active group and advances the phase by
/// one.  See [`ClosureOutcome::certifies_livelock`] for what a successful
/// walk proves.
///
/// The walk aborts as soon as a stop configuration is interned (`stop_free:
/// false` — certification is already impossible) or a limit is exceeded
/// (`closed: false`).
pub fn phase_closure(
    protocol: &DynProtocol,
    phases: &ArcPhases,
    start: &Configuration<DynState>,
    start_phase: u64,
    stop: &mut dyn FnMut(&[DynState]) -> bool,
    limits: &ClosureLimits,
) -> ClosureOutcome {
    let rotation = phases.rotation();
    let start_phase = start_phase % rotation;
    let mut configs: Vec<Configuration<DynState>> = Vec::new();
    let mut is_stop: Vec<bool> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();

    /// Interns `config`, evaluating `stop` once per new configuration;
    /// `None` when the configuration cap would be exceeded.
    fn intern(
        config: Configuration<DynState>,
        configs: &mut Vec<Configuration<DynState>>,
        is_stop: &mut Vec<bool>,
        index: &mut HashMap<String, usize>,
        stop: &mut dyn FnMut(&[DynState]) -> bool,
        max_configs: usize,
    ) -> Option<usize> {
        match index.entry(config_key(&config)) {
            Entry::Occupied(entry) => Some(*entry.get()),
            Entry::Vacant(entry) => {
                if configs.len() >= max_configs {
                    return None;
                }
                let id = configs.len();
                entry.insert(id);
                is_stop.push(stop(config.states()));
                configs.push(config);
                Some(id)
            }
        }
    }

    let start_id = intern(
        start.clone(),
        &mut configs,
        &mut is_stop,
        &mut index,
        stop,
        limits.max_configs,
    )
    .expect("the first configuration always fits");
    let mut visited = VisitedNodes::new(rotation);
    let mut queue: VecDeque<(usize, u64)> = VecDeque::new();
    visited.insert(start_id, start_phase);
    queue.push_back((start_id, start_phase));
    if is_stop[start_id] {
        return ClosureOutcome {
            closed: true,
            stop_free: false,
            configs: configs.len(),
            nodes: visited.len(),
        };
    }
    // Successor cache: the active group — hence the successor set — is
    // shared by every phase of an epoch, so it is computed once per
    // (configuration, group) and the walk itself touches no configuration
    // data.  An arc whose interaction leaves both endpoints unchanged
    // contributes the configuration itself, detected on copies of the two
    // endpoint slots without cloning or interning anything — on a near-fixed
    // orbit that shortcut covers almost every arc.
    let mut successors: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut closed = true;
    'walk: while let Some((cid, phase)) = queue.pop_front() {
        let group = phases.group_of(phase);
        let next_phase = (phase + 1) % rotation;
        let succ = match successors.entry((cid, group)) {
            Entry::Occupied(entry) => entry.into_mut(),
            Entry::Vacant(entry) => {
                let mut out: Vec<usize> = Vec::new();
                // An empty group cannot change the configuration, but time
                // (and the phase) still advances.
                if phases.groups()[group].is_empty() {
                    out.push(cid);
                }
                for &arc in &phases.groups()[group] {
                    let (i, j) = (arc.initiator().index(), arc.responder().index());
                    let states = configs[cid].states();
                    let mut initiator = states[i].clone();
                    let mut responder = states[j].clone();
                    protocol.interact(&mut initiator, &mut responder);
                    let nid = if initiator == states[i] && responder == states[j] {
                        cid
                    } else {
                        let mut next = configs[cid].clone();
                        next.states_mut()[i] = initiator;
                        next.states_mut()[j] = responder;
                        match intern(
                            next,
                            &mut configs,
                            &mut is_stop,
                            &mut index,
                            stop,
                            limits.max_configs,
                        ) {
                            Some(nid) => nid,
                            None => {
                                closed = false;
                                break 'walk;
                            }
                        }
                    };
                    if is_stop[nid] {
                        return ClosureOutcome {
                            closed: true,
                            stop_free: false,
                            configs: configs.len(),
                            nodes: visited.len(),
                        };
                    }
                    out.push(nid);
                }
                out.sort_unstable();
                out.dedup();
                entry.insert(out)
            }
        };
        for &nid in succ.iter() {
            if visited.insert(nid, next_phase) {
                if visited.len() > limits.max_nodes {
                    closed = false;
                    break 'walk;
                }
                queue.push_back((nid, next_phase));
            }
        }
    }
    ClosureOutcome {
        closed,
        stop_free: true,
        configs: configs.len(),
        nodes: visited.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LeaderElection;

    /// Pairwise leader elimination: a leader meeting a leader demotes the
    /// responder.
    #[derive(Clone, Debug)]
    struct Fratricide;
    impl Protocol for Fratricide {
        type State = bool;
        fn interact(&self, initiator: &mut bool, responder: &mut bool) {
            if *initiator && *responder {
                *responder = false;
            }
        }
    }
    impl LeaderElection for Fratricide {
        fn is_leader(&self, state: &bool) -> bool {
            *state
        }
    }

    fn erased(values: &[bool]) -> Configuration<DynState> {
        Configuration::from_states(values.iter().map(|&v| DynState::new(v)).collect())
    }

    fn complete_arcs(n: usize) -> Vec<Interaction> {
        let mut arcs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    arcs.push(Interaction::new(i, j));
                }
            }
        }
        arcs
    }

    fn unique_leader(states: &[DynState]) -> bool {
        states
            .iter()
            .filter(|s| s.downcast_ref::<bool>() == Some(&true))
            .count()
            == 1
    }

    #[test]
    fn fratricide_stabilizes_with_exact_worst_case() {
        let protocol = DynProtocol::erase(Fratricide);
        let result = explore(
            &protocol,
            &complete_arcs(3),
            &erased(&[true, true, true]),
            &mut unique_leader,
            &ExploreLimits::default(),
        );
        // Reachable: the all-leaders start, the three 2-leader and the three
        // 1-leader configurations.
        assert_eq!(result.reachable, 7);
        assert_eq!(result.stop_configs, 3);
        match result.verdict {
            ExploreVerdict::Stabilizes {
                exact_worst_steps,
                ref worst_config,
            } => {
                assert_eq!(
                    exact_worst_steps, 2,
                    "three leaders need exactly two demotions"
                );
                assert_eq!(worst_config, &erased(&[true, true, true]));
            }
            ref other => panic!("expected Stabilizes, got {other:?}"),
        }
    }

    /// Infect-then-burn: a `1` infects a `0` responder, but two `1`s
    /// annihilate — so the all-ones stop configuration can be overshot into
    /// a doomed all-zeros one.
    #[derive(Clone, Debug)]
    struct InfectBurn;
    impl Protocol for InfectBurn {
        type State = u8;
        fn interact(&self, initiator: &mut u8, responder: &mut u8) {
            if *initiator == 1 && *responder == 0 {
                *responder = 1;
            } else if *initiator == 1 && *responder == 1 {
                *initiator = 0;
                *responder = 0;
            }
        }
    }

    #[test]
    fn doomed_configurations_yield_a_counterexample_trace() {
        let protocol = DynProtocol::erase_protocol(InfectBurn);
        let init = Configuration::from_states(vec![DynState::new(1u8), DynState::new(0u8)]);
        let mut all_ones =
            |states: &[DynState]| states.iter().all(|s| s.downcast_ref::<u8>() == Some(&1));
        let result = explore(
            &protocol,
            &complete_arcs(2),
            &init,
            &mut all_ones,
            &ExploreLimits::default(),
        );
        match result.verdict {
            ExploreVerdict::NonStabilizing {
                doomed,
                ref counterexample,
            } => {
                assert_eq!(doomed, 1, "only the all-zeros configuration is doomed");
                // Replay the trace: it must land in a doomed configuration.
                let mut config = init.clone();
                for &arc in counterexample {
                    config = apply_arc(&protocol, &config, arc);
                }
                assert!(
                    config
                        .states()
                        .iter()
                        .all(|s| s.downcast_ref::<u8>() == Some(&0)),
                    "the counterexample must reach the doomed all-zeros configuration"
                );
            }
            ref other => panic!("expected NonStabilizing, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_reported_not_guessed() {
        let protocol = DynProtocol::erase(Fratricide);
        let result = explore(
            &protocol,
            &complete_arcs(3),
            &erased(&[true, true, true]),
            &mut unique_leader,
            &ExploreLimits { max_configs: 2 },
        );
        assert!(matches!(result.verdict, ExploreVerdict::Truncated));
        assert!(result.reachable <= 2);
    }

    #[test]
    fn a_dead_configuration_certifies_under_the_unrestricted_closure() {
        // All-false is a fixed point of Fratricide and never has a unique
        // leader: a certified livelock even for the uniform scheduler.
        let protocol = DynProtocol::erase(Fratricide);
        let outcome = phase_closure(
            &protocol,
            &ArcPhases::unrestricted(complete_arcs(3)),
            &erased(&[false, false, false]),
            0,
            &mut unique_leader,
            &ClosureLimits::default(),
        );
        assert!(outcome.certifies_livelock());
        assert_eq!(outcome.configs, 1);
    }

    #[test]
    fn a_live_configuration_is_not_certified() {
        // All-leaders reaches a unique leader, so the closure must hit the
        // stop set and refuse to certify.
        let protocol = DynProtocol::erase(Fratricide);
        let outcome = phase_closure(
            &protocol,
            &ArcPhases::unrestricted(complete_arcs(3)),
            &erased(&[true, true, true]),
            0,
            &mut unique_leader,
            &ClosureLimits::default(),
        );
        assert!(!outcome.certifies_livelock());
        assert!(!outcome.stop_free);
    }

    /// The responder flips, unconditionally.
    #[derive(Clone, Debug)]
    struct Toggle;
    impl Protocol for Toggle {
        type State = bool;
        fn interact(&self, _initiator: &mut bool, responder: &mut bool) {
            *responder = !*responder;
        }
    }

    #[test]
    fn cyclic_phases_certify_a_periodic_livelock() {
        // Two groups, one arc each, epoch length 1: the product system
        // cycles through a finite set of configurations forever.
        let protocol = DynProtocol::erase_protocol(Toggle);
        let phases = ArcPhases::cyclic(
            vec![vec![Interaction::new(0, 1)], vec![Interaction::new(1, 0)]],
            1,
        );
        let mut never = |_: &[DynState]| false;
        let outcome = phase_closure(
            &protocol,
            &phases,
            &erased(&[false, false]),
            0,
            &mut never,
            &ClosureLimits::default(),
        );
        assert!(outcome.certifies_livelock());
        assert!(outcome.configs <= 4);
    }

    #[test]
    fn closure_limits_refuse_rather_than_certify() {
        let protocol = DynProtocol::erase(Fratricide);
        let outcome = phase_closure(
            &protocol,
            &ArcPhases::unrestricted(complete_arcs(3)),
            &erased(&[true, true, true]),
            0,
            &mut |_| false,
            &ClosureLimits {
                max_configs: 2,
                max_nodes: 1 << 20,
            },
        );
        assert!(!outcome.closed);
        assert!(!outcome.certifies_livelock());
    }
}
