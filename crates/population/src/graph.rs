//! Interaction graphs.
//!
//! A population is a weakly connected digraph `G(V, E)`; an arc `(u, v) ∈ E`
//! means that `u` can interact with `v` with `u` as the initiator and `v` as
//! the responder (Section 2).  The paper's main protocol runs on the
//! **directed ring** `E = {(u_i, u_{i+1 mod n})}`; the ring-orientation
//! protocol of Section 5 runs on the **undirected ring** which contains both
//! arc directions.  Complete graphs and arbitrary arc sets are provided for
//! tests and for contrasting topologies.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::agent::AgentId;
use crate::error::{PopulationError, Result};
use crate::schedule::Interaction;

/// A set of possible interactions between agents.
///
/// The uniformly random scheduler samples one arc uniformly at random per
/// step via [`InteractionGraph::sample`]; for the standard topologies this is
/// O(1) and allocation-free.
pub trait InteractionGraph: Clone + Send + Sync {
    /// Number of agents in the population.
    fn num_agents(&self) -> usize;

    /// Number of arcs (ordered pairs that may interact).
    fn num_arcs(&self) -> usize;

    /// Returns `true` iff `(initiator, responder)` is an arc.
    fn is_arc(&self, initiator: usize, responder: usize) -> bool;

    /// Samples an arc uniformly at random.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction;

    /// Enumerates all arcs.  Used by exhaustive tests and by analysis code;
    /// the default implementation is quadratic and should be overridden when
    /// a cheaper enumeration exists.
    fn arcs(&self) -> Vec<Interaction> {
        let n = self.num_agents();
        let mut out = Vec::with_capacity(self.num_arcs());
        for i in 0..n {
            for j in 0..n {
                if i != j && self.is_arc(i, j) {
                    out.push(Interaction::new(i, j));
                }
            }
        }
        out
    }

    /// A short human-readable description used in reports.
    fn describe(&self) -> String;
}

/// The directed ring `V = {u_0, ..., u_{n-1}}`,
/// `E = {(u_i, u_{i+1 mod n})}` — the topology of the paper's Sections 2–4.
///
/// # Examples
///
/// ```
/// use population::graph::{DirectedRing, InteractionGraph};
///
/// let ring = DirectedRing::new(8).unwrap();
/// assert_eq!(ring.num_agents(), 8);
/// assert_eq!(ring.num_arcs(), 8);
/// assert!(ring.is_arc(3, 4));
/// assert!(ring.is_arc(7, 0));
/// assert!(!ring.is_arc(4, 3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectedRing {
    n: usize,
}

impl DirectedRing {
    /// Creates a directed ring of `n >= 2` agents.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall {
                requested: n,
                minimum: 2,
            });
        }
        Ok(DirectedRing { n })
    }

    /// The ring size `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: rings have at least two agents.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The arc `e_i = (u_i, u_{i+1 mod n})` (the paper's notation).
    pub fn arc(&self, i: usize) -> Interaction {
        Interaction::new(i % self.n, (i + 1) % self.n)
    }
}

impl InteractionGraph for DirectedRing {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.n
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        initiator < self.n && responder == (initiator + 1) % self.n
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        let i = rng.gen_range(0..self.n);
        Interaction::new(i, (i + 1) % self.n)
    }

    fn arcs(&self) -> Vec<Interaction> {
        (0..self.n).map(|i| self.arc(i)).collect()
    }

    fn describe(&self) -> String {
        format!("directed ring, n = {}", self.n)
    }
}

/// The undirected ring: both `(u_i, u_{i+1})` and `(u_{i+1}, u_i)` are arcs
/// for every `i`.  This is the topology of Section 5 (ring orientation),
/// where the initiator/responder roles provide the protocol's only source of
/// symmetry breaking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UndirectedRing {
    n: usize,
}

impl UndirectedRing {
    /// Creates an undirected ring of `n >= 2` agents.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall {
                requested: n,
                minimum: 2,
            });
        }
        Ok(UndirectedRing { n })
    }

    /// The ring size `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: rings have at least two agents.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl InteractionGraph for UndirectedRing {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        2 * self.n
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        if initiator >= self.n || responder >= self.n {
            return false;
        }
        responder == (initiator + 1) % self.n || initiator == (responder + 1) % self.n
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        let i = rng.gen_range(0..self.n);
        let right = rng.gen_bool(0.5);
        if right {
            Interaction::new(i, (i + 1) % self.n)
        } else {
            Interaction::new((i + 1) % self.n, i)
        }
    }

    fn arcs(&self) -> Vec<Interaction> {
        let mut out = Vec::with_capacity(2 * self.n);
        for i in 0..self.n {
            out.push(Interaction::new(i, (i + 1) % self.n));
            out.push(Interaction::new((i + 1) % self.n, i));
        }
        out
    }

    fn describe(&self) -> String {
        format!("undirected ring, n = {}", self.n)
    }
}

/// The complete interaction graph: every ordered pair of distinct agents is
/// an arc.  Not used by the paper's protocol (SS-LE is impossible on complete
/// graphs without extra assumptions) but useful for substrate tests and for
/// contrasting experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompleteGraph {
    n: usize,
}

impl CompleteGraph {
    /// Creates a complete graph over `n >= 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "complete graph needs at least 2 agents");
        CompleteGraph { n }
    }
}

impl InteractionGraph for CompleteGraph {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.n * (self.n - 1)
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        initiator != responder && initiator < self.n && responder < self.n
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        let i = rng.gen_range(0..self.n);
        let mut j = rng.gen_range(0..self.n - 1);
        if j >= i {
            j += 1;
        }
        Interaction::new(i, j)
    }

    fn describe(&self) -> String {
        format!("complete graph, n = {}", self.n)
    }
}

/// An arbitrary interaction graph given by an explicit arc list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbitraryGraph {
    n: usize,
    arcs: Vec<Interaction>,
}

impl ArbitraryGraph {
    /// Creates a graph over `n` agents with the given arcs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n < 2`, if the arc list is empty, or if any arc
    /// references an agent outside `0..n`.
    pub fn new(n: usize, arcs: Vec<Interaction>) -> Result<Self> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall {
                requested: n,
                minimum: 2,
            });
        }
        if arcs.is_empty() {
            return Err(PopulationError::EmptyArcSet);
        }
        for a in &arcs {
            if a.initiator().index() >= n || a.responder().index() >= n {
                return Err(PopulationError::AgentOutOfRange {
                    index: a.initiator().index().max(a.responder().index()),
                    population: n,
                });
            }
        }
        Ok(ArbitraryGraph { n, arcs })
    }

    /// Builds the arbitrary-graph representation of a directed ring; useful
    /// for testing that the two representations behave identically.
    pub fn directed_ring(n: usize) -> Result<Self> {
        let ring = DirectedRing::new(n)?;
        ArbitraryGraph::new(n, ring.arcs())
    }
}

impl InteractionGraph for ArbitraryGraph {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        let probe = Interaction::new(initiator, responder);
        self.arcs.contains(&probe)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        self.arcs[rng.gen_range(0..self.arcs.len())]
    }

    fn arcs(&self) -> Vec<Interaction> {
        self.arcs.clone()
    }

    fn describe(&self) -> String {
        format!("arbitrary graph, n = {}, |E| = {}", self.n, self.arcs.len())
    }
}

/// Convenience helper: the pair of ring neighbours of agent `i` on a ring of
/// `n` agents, as `(left, right)`.
pub fn ring_neighbors(i: usize, n: usize) -> (AgentId, AgentId) {
    let a = AgentId::new(i % n);
    (a.counter_clockwise_neighbor(n), a.clockwise_neighbor(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn directed_ring_arcs_are_the_paper_arcs() {
        let ring = DirectedRing::new(5).unwrap();
        let arcs = ring.arcs();
        assert_eq!(arcs.len(), 5);
        for (i, a) in arcs.iter().enumerate() {
            assert_eq!(a.initiator().index(), i);
            assert_eq!(a.responder().index(), (i + 1) % 5);
        }
        assert_eq!(ring.arc(4), Interaction::new(4, 0));
        assert_eq!(ring.arc(7), Interaction::new(2, 3));
        assert!(ring.describe().contains("directed ring"));
        assert_eq!(ring.len(), 5);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ring_rejects_tiny_populations() {
        assert!(DirectedRing::new(0).is_err());
        assert!(DirectedRing::new(1).is_err());
        assert!(UndirectedRing::new(1).is_err());
        assert!(DirectedRing::new(2).is_ok());
    }

    #[test]
    fn directed_ring_sampling_is_roughly_uniform() {
        let ring = DirectedRing::new(4).unwrap();
        let mut rng = rng();
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for _ in 0..trials {
            let arc = ring.sample(&mut rng);
            assert!(ring.is_arc(arc.initiator().index(), arc.responder().index()));
            counts[arc.initiator().index()] += 1;
        }
        let expected = trials as f64 / 4.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "count {c} deviates from uniform expectation {expected}"
            );
        }
    }

    #[test]
    fn undirected_ring_has_both_directions() {
        let ring = UndirectedRing::new(6).unwrap();
        assert_eq!(ring.num_arcs(), 12);
        assert!(ring.is_arc(2, 3));
        assert!(ring.is_arc(3, 2));
        assert!(ring.is_arc(5, 0));
        assert!(ring.is_arc(0, 5));
        assert!(!ring.is_arc(0, 2));
        assert_eq!(ring.arcs().len(), 12);
        assert_eq!(ring.len(), 6);
        assert!(!ring.is_empty());
        assert!(ring.describe().contains("undirected"));
    }

    #[test]
    fn undirected_ring_samples_both_roles() {
        let ring = UndirectedRing::new(3).unwrap();
        let mut rng = rng();
        let mut forward = 0usize;
        let mut backward = 0usize;
        for _ in 0..10_000 {
            let arc = ring.sample(&mut rng);
            let i = arc.initiator().index();
            let j = arc.responder().index();
            assert!(ring.is_arc(i, j));
            if j == (i + 1) % 3 {
                forward += 1;
            } else {
                backward += 1;
            }
        }
        assert!(forward > 4000 && backward > 4000, "{forward} vs {backward}");
    }

    #[test]
    fn complete_graph_counts_and_membership() {
        let g = CompleteGraph::new(5);
        assert_eq!(g.num_arcs(), 20);
        assert_eq!(g.arcs().len(), 20);
        assert!(g.is_arc(0, 4));
        assert!(!g.is_arc(2, 2));
        let mut rng = rng();
        for _ in 0..1000 {
            let arc = g.sample(&mut rng);
            assert_ne!(arc.initiator(), arc.responder());
        }
        assert!(g.describe().contains("complete"));
    }

    #[test]
    fn arbitrary_graph_validation() {
        assert!(ArbitraryGraph::new(1, vec![Interaction::new(0, 1)]).is_err());
        assert!(ArbitraryGraph::new(3, vec![]).is_err());
        assert!(ArbitraryGraph::new(3, vec![Interaction::new(0, 7)]).is_err());
        let g =
            ArbitraryGraph::new(3, vec![Interaction::new(0, 1), Interaction::new(1, 2)]).unwrap();
        assert!(g.is_arc(0, 1));
        assert!(!g.is_arc(2, 0));
        assert_eq!(g.num_arcs(), 2);
        assert!(g.describe().contains("arbitrary"));
    }

    #[test]
    fn arbitrary_ring_matches_directed_ring() {
        let a = ArbitraryGraph::directed_ring(7).unwrap();
        let b = DirectedRing::new(7).unwrap();
        assert_eq!(a.arcs(), b.arcs());
        assert_eq!(a.num_agents(), b.num_agents());
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(a.is_arc(i, j), b.is_arc(i, j));
            }
        }
    }

    #[test]
    fn ring_neighbors_helper() {
        let (l, r) = ring_neighbors(0, 6);
        assert_eq!(l.index(), 5);
        assert_eq!(r.index(), 1);
        let (l, r) = ring_neighbors(5, 6);
        assert_eq!(l.index(), 4);
        assert_eq!(r.index(), 0);
    }
}
