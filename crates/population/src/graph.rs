//! Interaction graphs.
//!
//! A population is a weakly connected digraph `G(V, E)`; an arc `(u, v) ∈ E`
//! means that `u` can interact with `v` with `u` as the initiator and `v` as
//! the responder (Section 2).  The paper's main protocol runs on the
//! **directed ring** `E = {(u_i, u_{i+1 mod n})}`; the ring-orientation
//! protocol of Section 5 runs on the **undirected ring** which contains both
//! arc directions.  Complete graphs and arbitrary arc sets are provided for
//! tests and for contrasting topologies.

use std::collections::HashSet;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::agent::AgentId;
use crate::error::{PopulationError, Result};
use crate::schedule::Interaction;

/// A set of possible interactions between agents.
///
/// The uniformly random scheduler samples one arc uniformly at random per
/// step via [`InteractionGraph::sample`]; for the standard topologies this is
/// O(1) and allocation-free.
pub trait InteractionGraph: Clone + Send + Sync {
    /// Number of agents in the population.
    fn num_agents(&self) -> usize;

    /// Number of arcs (ordered pairs that may interact).
    fn num_arcs(&self) -> usize;

    /// Returns `true` iff `(initiator, responder)` is an arc.
    fn is_arc(&self, initiator: usize, responder: usize) -> bool;

    /// Samples an arc uniformly at random.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction;

    /// Enumerates all arcs.  Used by exhaustive tests and by analysis code;
    /// the default implementation is quadratic and should be overridden when
    /// a cheaper enumeration exists.
    fn arcs(&self) -> Vec<Interaction> {
        let n = self.num_agents();
        let mut out = Vec::with_capacity(self.num_arcs());
        for i in 0..n {
            for j in 0..n {
                if i != j && self.is_arc(i, j) {
                    out.push(Interaction::new(i, j));
                }
            }
        }
        out
    }

    /// A short human-readable description used in reports.
    fn describe(&self) -> String;
}

/// The directed ring `V = {u_0, ..., u_{n-1}}`,
/// `E = {(u_i, u_{i+1 mod n})}` — the topology of the paper's Sections 2–4.
///
/// # Examples
///
/// ```
/// use population::graph::{DirectedRing, InteractionGraph};
///
/// let ring = DirectedRing::new(8).unwrap();
/// assert_eq!(ring.num_agents(), 8);
/// assert_eq!(ring.num_arcs(), 8);
/// assert!(ring.is_arc(3, 4));
/// assert!(ring.is_arc(7, 0));
/// assert!(!ring.is_arc(4, 3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectedRing {
    n: usize,
}

impl DirectedRing {
    /// Creates a directed ring of `n >= 2` agents.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall {
                requested: n,
                minimum: 2,
            });
        }
        Ok(DirectedRing { n })
    }

    /// The ring size `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: rings have at least two agents.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The arc `e_i = (u_i, u_{i+1 mod n})` (the paper's notation).
    pub fn arc(&self, i: usize) -> Interaction {
        Interaction::new(i % self.n, (i + 1) % self.n)
    }
}

impl InteractionGraph for DirectedRing {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.n
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        initiator < self.n && responder == (initiator + 1) % self.n
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        let i = rng.gen_range(0..self.n);
        Interaction::new(i, (i + 1) % self.n)
    }

    fn arcs(&self) -> Vec<Interaction> {
        (0..self.n).map(|i| self.arc(i)).collect()
    }

    fn describe(&self) -> String {
        format!("directed ring, n = {}", self.n)
    }
}

/// The undirected ring: both `(u_i, u_{i+1})` and `(u_{i+1}, u_i)` are arcs
/// for every `i`.  This is the topology of Section 5 (ring orientation),
/// where the initiator/responder roles provide the protocol's only source of
/// symmetry breaking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UndirectedRing {
    n: usize,
}

impl UndirectedRing {
    /// Creates an undirected ring of `n >= 2` agents.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall {
                requested: n,
                minimum: 2,
            });
        }
        Ok(UndirectedRing { n })
    }

    /// The ring size `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: rings have at least two agents.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl InteractionGraph for UndirectedRing {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        2 * self.n
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        if initiator >= self.n || responder >= self.n {
            return false;
        }
        responder == (initiator + 1) % self.n || initiator == (responder + 1) % self.n
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        let i = rng.gen_range(0..self.n);
        let right = rng.gen_bool(0.5);
        if right {
            Interaction::new(i, (i + 1) % self.n)
        } else {
            Interaction::new((i + 1) % self.n, i)
        }
    }

    fn arcs(&self) -> Vec<Interaction> {
        let mut out = Vec::with_capacity(2 * self.n);
        for i in 0..self.n {
            out.push(Interaction::new(i, (i + 1) % self.n));
            out.push(Interaction::new((i + 1) % self.n, i));
        }
        out
    }

    fn describe(&self) -> String {
        format!("undirected ring, n = {}", self.n)
    }
}

/// The complete interaction graph: every ordered pair of distinct agents is
/// an arc.  Not used by the paper's protocol (SS-LE is impossible on complete
/// graphs without extra assumptions) but useful for substrate tests and for
/// contrasting experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompleteGraph {
    n: usize,
}

impl CompleteGraph {
    /// Creates a complete graph over `n >= 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "complete graph needs at least 2 agents");
        CompleteGraph { n }
    }
}

impl InteractionGraph for CompleteGraph {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.n * (self.n - 1)
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        initiator != responder && initiator < self.n && responder < self.n
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        let i = rng.gen_range(0..self.n);
        let mut j = rng.gen_range(0..self.n - 1);
        if j >= i {
            j += 1;
        }
        Interaction::new(i, j)
    }

    fn describe(&self) -> String {
        format!("complete graph, n = {}", self.n)
    }
}

/// An arbitrary interaction graph given by an explicit arc list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbitraryGraph {
    n: usize,
    arcs: Vec<Interaction>,
}

impl ArbitraryGraph {
    /// Creates a graph over `n` agents with the given arcs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n < 2`, if the arc list is empty, if any arc
    /// references an agent outside `0..n`, or if any arc is a self-loop
    /// (interactions are between distinct agents, and the simulation's
    /// split-borrow interaction step relies on it).
    pub fn new(n: usize, arcs: Vec<Interaction>) -> Result<Self> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall {
                requested: n,
                minimum: 2,
            });
        }
        if arcs.is_empty() {
            return Err(PopulationError::EmptyArcSet);
        }
        for a in &arcs {
            if a.initiator().index() >= n || a.responder().index() >= n {
                return Err(PopulationError::AgentOutOfRange {
                    index: a.initiator().index().max(a.responder().index()),
                    population: n,
                });
            }
            if a.initiator() == a.responder() {
                return Err(PopulationError::SelfLoopArc {
                    agent: a.initiator().index(),
                });
            }
        }
        Ok(ArbitraryGraph { n, arcs })
    }

    /// Builds the arbitrary-graph representation of a directed ring; useful
    /// for testing that the two representations behave identically.
    pub fn directed_ring(n: usize) -> Result<Self> {
        let ring = DirectedRing::new(n)?;
        ArbitraryGraph::new(n, ring.arcs())
    }
}

impl InteractionGraph for ArbitraryGraph {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    fn is_arc(&self, initiator: usize, responder: usize) -> bool {
        let probe = Interaction::new(initiator, responder);
        self.arcs.contains(&probe)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interaction {
        self.arcs[rng.gen_range(0..self.arcs.len())]
    }

    fn arcs(&self) -> Vec<Interaction> {
        self.arcs.clone()
    }

    fn describe(&self) -> String {
        format!("arbitrary graph, n = {}, |E| = {}", self.n, self.arcs.len())
    }
}

/// Convenience helper: the pair of ring neighbours of agent `i` on a ring of
/// `n` agents, as `(left, right)`.
pub fn ring_neighbors(i: usize, n: usize) -> (AgentId, AgentId) {
    let a = AgentId::new(i % n);
    (a.counter_clockwise_neighbor(n), a.clockwise_neighbor(n))
}

// ---------------------------------------------------------------------------
// Generated graph families.
//
// Each generator below is a pure function of its arguments: the randomized
// ones derive a `ChaCha8Rng` from a SplitMix64 scramble of `(seed, n)`, so
// the same sweep point produces bit-identical arc sets regardless of thread
// count or evaluation order.  All generators produce simple digraphs (no
// self-loops, no duplicate arcs) that are strongly connected by construction,
// so every stop predicate reachable on a ring is reachable here too.
// ---------------------------------------------------------------------------

/// One round of the SplitMix64 output scramble; used to decorrelate seeds
/// derived from nearby `(seed, n)` coordinates.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed a generated family uses for population size `n`: a SplitMix64
/// scramble of the family seed, the size, and a per-family salt.  Exposed so
/// external spec layers can pin the exact stream a graph was built from.
pub fn graph_rng_seed(seed: u64, n: usize, salt: u64) -> u64 {
    splitmix64(
        seed.wrapping_add(salt)
            .wrapping_add((n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

const SMALL_WORLD_SALT: u64 = 0x534D_414C_4C57_4C44; // "SMALLWLD"
const PREFERENTIAL_SALT: u64 = 0x5052_4546_4154_5443; // "PREFATTC"
const REGULAR_SALT: u64 = 0x5245_4755_4C41_5247; // "REGULARG"

/// The grid dimensions `(rows, cols)` used by [`torus`] for `n` agents:
/// `rows` is the largest divisor of `n` not exceeding `√n`, so the grid is as
/// close to square as `n` allows.  Prime `n` degenerates to a `1 × n` torus,
/// i.e. an undirected ring.
pub fn torus_dims(n: usize) -> (usize, usize) {
    let mut h = 1;
    while (h + 1) * (h + 1) <= n {
        h += 1;
    }
    while h > 1 && !n.is_multiple_of(h) {
        h -= 1;
    }
    (h, n / h)
}

/// A 2-D torus (wrapped grid) over `n` agents with arcs in both directions,
/// dimensioned by [`torus_dims`].  Deterministic: no randomness is involved.
///
/// # Errors
///
/// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
pub fn torus(n: usize) -> Result<ArbitraryGraph> {
    if n < 2 {
        return Err(PopulationError::PopulationTooSmall {
            requested: n,
            minimum: 2,
        });
    }
    let (h, w) = torus_dims(n);
    let id = |r: usize, c: usize| r * w + c;
    let mut arcs = Vec::new();
    for r in 0..h {
        for c in 0..w {
            let u = id(r, c);
            for v in [id(r, (c + 1) % w), id((r + 1) % h, c)] {
                if u != v {
                    arcs.push(Interaction::new(u, v));
                    arcs.push(Interaction::new(v, u));
                }
            }
        }
    }
    arcs.sort_unstable_by_key(|a| (a.initiator().index(), a.responder().index()));
    arcs.dedup();
    ArbitraryGraph::new(n, arcs)
}

/// A Watts–Strogatz small-world graph: a ring lattice where every agent is
/// linked to its `max(1, k/2)` nearest neighbours per side (clamped to avoid
/// duplicate chords on tiny rings), with each chord of distance `>= 2`
/// rewired with probability `rewire_per_mille / 1000`.  The distance-1 ring
/// backbone is never rewired, so the graph stays strongly connected.  Arcs
/// are emitted in both directions.
///
/// # Errors
///
/// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
pub fn small_world(n: usize, k: usize, rewire_per_mille: u16, seed: u64) -> Result<ArbitraryGraph> {
    if n < 2 {
        return Err(PopulationError::PopulationTooSmall {
            requested: n,
            minimum: 2,
        });
    }
    let half = (k / 2).min((n - 1) / 2).max(1);
    let p = u64::from(rewire_per_mille.min(1000));
    let mut rng = ChaCha8Rng::seed_from_u64(graph_rng_seed(seed, n, SMALL_WORLD_SALT));
    // Undirected edge list in deterministic order; `present` mirrors it for
    // O(1) membership checks (never iterated, so hashing order is harmless).
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * half);
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(n * half);
    let key = |a: usize, b: usize| (a.min(b), a.max(b));
    for i in 0..n {
        for d in 1..=half {
            let e = key(i, (i + d) % n);
            if e.0 != e.1 && present.insert(e) {
                edges.push(e);
            }
        }
    }
    for edge in edges.iter_mut() {
        let (u, v) = *edge;
        let ring_dist = (v - u).min(n - (v - u));
        if ring_dist < 2 || rng.gen_range(0..1000) >= p {
            continue;
        }
        for _ in 0..16 {
            let w = rng.gen_range(0..n);
            let e = key(u, w);
            if w != u && !present.contains(&e) {
                present.remove(&key(u, v));
                present.insert(e);
                *edge = e;
                break;
            }
        }
    }
    let mut arcs = Vec::with_capacity(2 * edges.len());
    for (u, v) in edges {
        arcs.push(Interaction::new(u, v));
        arcs.push(Interaction::new(v, u));
    }
    arcs.sort_unstable_by_key(|a| (a.initiator().index(), a.responder().index()));
    ArbitraryGraph::new(n, arcs)
}

/// A Barabási–Albert preferential-attachment graph: a complete core of
/// `min(m + 1, n)` agents, then each new agent attaches `m` undirected edges
/// to existing agents chosen proportionally to their degree (with bounded
/// rejection for duplicates; at least one edge per new agent is guaranteed,
/// so the graph is connected).  Arcs are emitted in both directions.
///
/// # Errors
///
/// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Result<ArbitraryGraph> {
    if n < 2 {
        return Err(PopulationError::PopulationTooSmall {
            requested: n,
            minimum: 2,
        });
    }
    let m = m.max(1);
    let core = (m + 1).min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(graph_rng_seed(seed, n, PREFERENTIAL_SALT));
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // `targets` holds one entry per edge endpoint, so uniform draws from it
    // are degree-proportional.
    let mut targets: Vec<usize> = Vec::new();
    for u in 0..core {
        for v in (u + 1)..core {
            edges.push((u, v));
            targets.push(u);
            targets.push(v);
        }
    }
    for t in core..n {
        let want = m.min(t);
        let mut chosen: Vec<usize> = Vec::with_capacity(want);
        let mut attempts = 0;
        while chosen.len() < want && attempts < 16 * want {
            attempts += 1;
            let pick = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        if chosen.is_empty() {
            chosen.push(t - 1);
        }
        for v in chosen {
            edges.push((v, t));
            targets.push(v);
            targets.push(t);
        }
    }
    let mut arcs = Vec::with_capacity(2 * edges.len());
    for (u, v) in edges {
        arcs.push(Interaction::new(u, v));
        arcs.push(Interaction::new(v, u));
    }
    arcs.sort_unstable_by_key(|a| (a.initiator().index(), a.responder().index()));
    ArbitraryGraph::new(n, arcs)
}

/// A random directed `d`-regular graph built as the union of `d` random
/// Hamiltonian cycles (each a uniformly shuffled cycle over all agents), so
/// every agent has out-degree and in-degree exactly `d` and the graph is
/// strongly connected by construction.  `degree` is clamped to `1..=n-1`.
/// Cycles that would duplicate an existing arc are redrawn.
///
/// # Errors
///
/// Returns [`PopulationError::PopulationTooSmall`] if `n < 2`, and
/// [`PopulationError::GraphGenerationFailed`] if 64 consecutive redraws of a
/// cycle all collide with already-committed arcs (only possible when `degree`
/// is close to `n`).
pub fn random_regular(n: usize, degree: usize, seed: u64) -> Result<ArbitraryGraph> {
    if n < 2 {
        return Err(PopulationError::PopulationTooSmall {
            requested: n,
            minimum: 2,
        });
    }
    let degree = degree.clamp(1, n - 1);
    let mut rng = ChaCha8Rng::seed_from_u64(graph_rng_seed(seed, n, REGULAR_SALT));
    let mut arcs: Vec<Interaction> = Vec::with_capacity(n * degree);
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(n * degree);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..degree {
        let mut committed = false;
        for _attempt in 0..64 {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let collides = (0..n).any(|i| present.contains(&(order[i], order[(i + 1) % n])));
            if collides {
                continue;
            }
            for i in 0..n {
                let (u, v) = (order[i], order[(i + 1) % n]);
                present.insert((u, v));
                arcs.push(Interaction::new(u, v));
            }
            committed = true;
            break;
        }
        if !committed {
            return Err(PopulationError::GraphGenerationFailed {
                family: "random-regular",
            });
        }
    }
    arcs.sort_unstable_by_key(|a| (a.initiator().index(), a.responder().index()));
    ArbitraryGraph::new(n, arcs)
}

/// How many agents are reachable from agent 0 when every arc is treated as
/// undirected.  `n` agents with no arcs yields `min(n, 1)`.
pub fn weak_reach(n: usize, arcs: &[Interaction]) -> usize {
    if n == 0 {
        return 0;
    }
    let mut adj = vec![Vec::new(); n];
    for a in arcs {
        let (i, j) = (a.initiator().index(), a.responder().index());
        adj[i].push(j);
        adj[j].push(i);
    }
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut stack = vec![0];
    let mut reached = 1;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                reached += 1;
                stack.push(v);
            }
        }
    }
    reached
}

/// Whether the arc set forms a weakly connected graph over `n` agents.
pub fn weakly_connected(n: usize, arcs: &[Interaction]) -> bool {
    weak_reach(n, arcs) == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn directed_ring_arcs_are_the_paper_arcs() {
        let ring = DirectedRing::new(5).unwrap();
        let arcs = ring.arcs();
        assert_eq!(arcs.len(), 5);
        for (i, a) in arcs.iter().enumerate() {
            assert_eq!(a.initiator().index(), i);
            assert_eq!(a.responder().index(), (i + 1) % 5);
        }
        assert_eq!(ring.arc(4), Interaction::new(4, 0));
        assert_eq!(ring.arc(7), Interaction::new(2, 3));
        assert!(ring.describe().contains("directed ring"));
        assert_eq!(ring.len(), 5);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ring_rejects_tiny_populations() {
        assert!(DirectedRing::new(0).is_err());
        assert!(DirectedRing::new(1).is_err());
        assert!(UndirectedRing::new(1).is_err());
        assert!(DirectedRing::new(2).is_ok());
    }

    #[test]
    fn directed_ring_sampling_is_roughly_uniform() {
        let ring = DirectedRing::new(4).unwrap();
        let mut rng = rng();
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for _ in 0..trials {
            let arc = ring.sample(&mut rng);
            assert!(ring.is_arc(arc.initiator().index(), arc.responder().index()));
            counts[arc.initiator().index()] += 1;
        }
        let expected = trials as f64 / 4.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "count {c} deviates from uniform expectation {expected}"
            );
        }
    }

    #[test]
    fn undirected_ring_has_both_directions() {
        let ring = UndirectedRing::new(6).unwrap();
        assert_eq!(ring.num_arcs(), 12);
        assert!(ring.is_arc(2, 3));
        assert!(ring.is_arc(3, 2));
        assert!(ring.is_arc(5, 0));
        assert!(ring.is_arc(0, 5));
        assert!(!ring.is_arc(0, 2));
        assert_eq!(ring.arcs().len(), 12);
        assert_eq!(ring.len(), 6);
        assert!(!ring.is_empty());
        assert!(ring.describe().contains("undirected"));
    }

    #[test]
    fn undirected_ring_samples_both_roles() {
        let ring = UndirectedRing::new(3).unwrap();
        let mut rng = rng();
        let mut forward = 0usize;
        let mut backward = 0usize;
        for _ in 0..10_000 {
            let arc = ring.sample(&mut rng);
            let i = arc.initiator().index();
            let j = arc.responder().index();
            assert!(ring.is_arc(i, j));
            if j == (i + 1) % 3 {
                forward += 1;
            } else {
                backward += 1;
            }
        }
        assert!(forward > 4000 && backward > 4000, "{forward} vs {backward}");
    }

    #[test]
    fn complete_graph_counts_and_membership() {
        let g = CompleteGraph::new(5);
        assert_eq!(g.num_arcs(), 20);
        assert_eq!(g.arcs().len(), 20);
        assert!(g.is_arc(0, 4));
        assert!(!g.is_arc(2, 2));
        let mut rng = rng();
        for _ in 0..1000 {
            let arc = g.sample(&mut rng);
            assert_ne!(arc.initiator(), arc.responder());
        }
        assert!(g.describe().contains("complete"));
    }

    #[test]
    fn arbitrary_graph_validation() {
        assert!(ArbitraryGraph::new(1, vec![Interaction::new(0, 1)]).is_err());
        assert!(ArbitraryGraph::new(3, vec![]).is_err());
        assert!(ArbitraryGraph::new(3, vec![Interaction::new(0, 7)]).is_err());
        let g =
            ArbitraryGraph::new(3, vec![Interaction::new(0, 1), Interaction::new(1, 2)]).unwrap();
        assert!(g.is_arc(0, 1));
        assert!(!g.is_arc(2, 0));
        assert_eq!(g.num_arcs(), 2);
        assert!(g.describe().contains("arbitrary"));
    }

    #[test]
    fn arbitrary_ring_matches_directed_ring() {
        let a = ArbitraryGraph::directed_ring(7).unwrap();
        let b = DirectedRing::new(7).unwrap();
        assert_eq!(a.arcs(), b.arcs());
        assert_eq!(a.num_agents(), b.num_agents());
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(a.is_arc(i, j), b.is_arc(i, j));
            }
        }
    }

    #[test]
    fn self_loops_are_rejected() {
        let err = ArbitraryGraph::new(3, vec![Interaction::new(0, 1), Interaction::new(2, 2)])
            .unwrap_err();
        assert_eq!(err, PopulationError::SelfLoopArc { agent: 2 });
    }

    fn degrees(g: &ArbitraryGraph) -> (Vec<usize>, Vec<usize>) {
        let n = g.num_agents();
        let (mut out_deg, mut in_deg) = (vec![0; n], vec![0; n]);
        for a in g.arcs() {
            out_deg[a.initiator().index()] += 1;
            in_deg[a.responder().index()] += 1;
        }
        (out_deg, in_deg)
    }

    #[test]
    fn torus_dims_prefer_square() {
        assert_eq!(torus_dims(16), (4, 4));
        assert_eq!(torus_dims(12), (3, 4));
        assert_eq!(torus_dims(6), (2, 3));
        assert_eq!(torus_dims(7), (1, 7));
        assert_eq!(torus_dims(2), (1, 2));
    }

    #[test]
    fn torus_is_regular_and_connected() {
        for n in [4, 6, 9, 12, 16, 64] {
            let g = torus(n).unwrap();
            assert!(weakly_connected(n, &g.arcs()), "torus n={n} disconnected");
            let (out_deg, in_deg) = degrees(&g);
            let (h, w) = torus_dims(n);
            // Both-direction arcs to the right and down neighbours: degree 4
            // on a proper torus, collapsing to 2 on a 1-row (ring) or 2-row /
            // 2-col (doubled edge) torus.
            let expect = match (h, w) {
                (1, _) | (_, 1) => 2,
                (2, 2) => 2,
                (2, _) | (_, 2) => 3,
                _ => 4,
            };
            for i in 0..n {
                assert_eq!(out_deg[i], expect, "torus n={n} agent {i} out-degree");
                assert_eq!(in_deg[i], expect, "torus n={n} agent {i} in-degree");
            }
        }
    }

    #[test]
    fn torus_two_by_two_is_a_four_cycle() {
        let g = torus(4).unwrap();
        assert_eq!(torus_dims(4), (2, 2));
        assert_eq!(g.num_arcs(), 8);
        assert!(g.is_arc(0, 1) && g.is_arc(1, 0));
        assert!(g.is_arc(0, 2) && g.is_arc(2, 0));
        assert!(!g.is_arc(0, 3));
    }

    #[test]
    fn small_world_is_deterministic_and_connected() {
        for n in [4, 8, 32] {
            let a = small_world(n, 4, 300, 0xFEED).unwrap();
            let b = small_world(n, 4, 300, 0xFEED).unwrap();
            assert_eq!(a, b, "same seed must give identical graphs");
            let c = small_world(n, 4, 300, 0xFEED + 1).unwrap();
            if n > 4 {
                assert_ne!(a, c, "different seed should rewire differently");
            }
            assert!(
                weakly_connected(n, &a.arcs()),
                "small world n={n} disconnected"
            );
            let half = (4usize / 2).min((n - 1) / 2).max(1);
            assert!(a.num_arcs() <= 2 * n * half);
            assert!(a.num_arcs() >= 2 * n, "ring backbone must survive");
        }
    }

    #[test]
    fn small_world_keeps_ring_backbone() {
        let g = small_world(16, 6, 1000, 0xABCD).unwrap();
        for i in 0..16 {
            assert!(g.is_arc(i, (i + 1) % 16), "backbone arc {i} missing");
            assert!(g.is_arc((i + 1) % 16, i), "backbone arc {i} missing");
        }
    }

    #[test]
    fn preferential_attachment_is_deterministic_and_connected() {
        for n in [4, 8, 32] {
            let a = preferential_attachment(n, 2, 0xBEEF).unwrap();
            let b = preferential_attachment(n, 2, 0xBEEF).unwrap();
            assert_eq!(a, b);
            assert!(weakly_connected(n, &a.arcs()), "pa n={n} disconnected");
            // Arc-count bounds: complete core plus up to m per later agent,
            // two arcs per undirected edge.
            let core = 3.min(n);
            let max_edges = core * (core - 1) / 2 + 2 * n.saturating_sub(core);
            assert!(a.num_arcs() <= 2 * max_edges);
            assert!(a.num_arcs() >= 2 * (n - 1), "must at least span a tree");
        }
    }

    #[test]
    fn random_regular_has_exact_degree() {
        for (n, d) in [(4, 2), (8, 3), (16, 4), (5, 1)] {
            let g = random_regular(n, d, 0x5EED).unwrap();
            assert_eq!(g, random_regular(n, d, 0x5EED).unwrap());
            assert!(
                weakly_connected(n, &g.arcs()),
                "regular n={n} d={d} disconnected"
            );
            let (out_deg, in_deg) = degrees(&g);
            for i in 0..n {
                assert_eq!(out_deg[i], d, "n={n} d={d} agent {i} out-degree");
                assert_eq!(in_deg[i], d, "n={n} d={d} agent {i} in-degree");
            }
        }
    }

    #[test]
    fn random_regular_clamps_degree() {
        // degree 0 and degree >= n are clamped into 1..=n-1.
        let g = random_regular(4, 0, 1).unwrap();
        let (out_deg, _) = degrees(&g);
        assert!(out_deg.iter().all(|&d| d == 1));
        let g = random_regular(3, 9, 1).unwrap();
        let (out_deg, _) = degrees(&g);
        assert!(out_deg.iter().all(|&d| d == 2));
    }

    #[test]
    fn weak_reach_counts_components() {
        let arcs = vec![Interaction::new(0, 1), Interaction::new(2, 3)];
        assert_eq!(weak_reach(4, &arcs), 2);
        assert!(!weakly_connected(4, &arcs));
        assert!(weakly_connected(2, &[Interaction::new(1, 0)]));
    }

    #[test]
    fn graph_rng_seed_scrambles_coordinates() {
        let a = graph_rng_seed(1, 8, SMALL_WORLD_SALT);
        let b = graph_rng_seed(1, 9, SMALL_WORLD_SALT);
        let c = graph_rng_seed(2, 8, SMALL_WORLD_SALT);
        let d = graph_rng_seed(1, 8, REGULAR_SALT);
        assert!(a != b && a != c && a != d);
        assert_eq!(a, graph_rng_seed(1, 8, SMALL_WORLD_SALT));
    }

    #[test]
    fn ring_neighbors_helper() {
        let (l, r) = ring_neighbors(0, 6);
        assert_eq!(l.index(), 5);
        assert_eq!(r.index(), 1);
        let (l, r) = ring_neighbors(5, 6);
        assert_eq!(l.index(), 4);
        assert_eq!(r.index(), 0);
    }
}
