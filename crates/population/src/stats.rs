//! Per-run statistics.
//!
//! [`RunStats`] accumulates cheap counters during an execution: total steps,
//! per-agent interaction counts, and the derived *parallel time* (steps
//! divided by `n`, the conventional unit in the population-protocol
//! literature).

use serde::{Deserialize, Serialize};

/// Counters accumulated during a single execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    steps: u64,
    interactions_per_agent: Vec<u64>,
    initiator_counts: Vec<u64>,
    responder_counts: Vec<u64>,
}

impl RunStats {
    /// Creates statistics for a population of `n` agents.
    pub fn new(n: usize) -> Self {
        RunStats {
            steps: 0,
            interactions_per_agent: vec![0; n],
            initiator_counts: vec![0; n],
            responder_counts: vec![0; n],
        }
    }

    /// Records one interaction between `initiator` and `responder`.
    pub fn record_interaction(&mut self, initiator: usize, responder: usize) {
        self.steps += 1;
        self.interactions_per_agent[initiator] += 1;
        self.interactions_per_agent[responder] += 1;
        self.initiator_counts[initiator] += 1;
        self.responder_counts[responder] += 1;
    }

    /// Total number of steps (interactions) recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Population size.
    pub fn num_agents(&self) -> usize {
        self.interactions_per_agent.len()
    }

    /// Parallel time: steps divided by the number of agents.
    pub fn parallel_time(&self) -> f64 {
        if self.interactions_per_agent.is_empty() {
            return 0.0;
        }
        self.steps as f64 / self.interactions_per_agent.len() as f64
    }

    /// How many interactions agent `i` took part in (as either role).
    pub fn interactions_of(&self, i: usize) -> u64 {
        self.interactions_per_agent[i]
    }

    /// How many times agent `i` was the initiator.
    pub fn initiator_count(&self, i: usize) -> u64 {
        self.initiator_counts[i]
    }

    /// How many times agent `i` was the responder.
    pub fn responder_count(&self, i: usize) -> u64 {
        self.responder_counts[i]
    }

    /// The smallest per-agent interaction count — useful to check the
    /// `Θ(n log n)` coupon-collector bound quoted in the introduction
    /// ("it requires Θ(n log n) steps in expectation to let every node have
    /// an interaction at least once").
    pub fn min_interactions(&self) -> u64 {
        self.interactions_per_agent
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// The largest per-agent interaction count.
    pub fn max_interactions(&self) -> u64 {
        self.interactions_per_agent
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Resizes the per-agent counters to a population of `n` agents,
    /// preserving counts for agents that survive.  Used by churn events:
    /// joining agents start with zero counts, leaving agents (always the
    /// highest indices) drop theirs.  `steps` is unaffected.
    pub fn resize(&mut self, n: usize) {
        self.interactions_per_agent.resize(n, 0);
        self.initiator_counts.resize(n, 0);
        self.responder_counts.resize(n, 0);
    }

    /// Resets all counters, keeping the population size.
    pub fn reset(&mut self) {
        self.steps = 0;
        for v in [
            &mut self.interactions_per_agent,
            &mut self.initiator_counts,
            &mut self.responder_counts,
        ] {
            for x in v.iter_mut() {
                *x = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = RunStats::new(4);
        s.record_interaction(0, 1);
        s.record_interaction(0, 1);
        s.record_interaction(3, 0);
        assert_eq!(s.steps(), 3);
        assert_eq!(s.num_agents(), 4);
        assert_eq!(s.interactions_of(0), 3);
        assert_eq!(s.interactions_of(1), 2);
        assert_eq!(s.interactions_of(2), 0);
        assert_eq!(s.initiator_count(0), 2);
        assert_eq!(s.responder_count(0), 1);
        assert_eq!(s.min_interactions(), 0);
        assert_eq!(s.max_interactions(), 3);
        assert!((s.parallel_time() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counts_but_keeps_size() {
        let mut s = RunStats::new(3);
        s.record_interaction(0, 1);
        s.reset();
        assert_eq!(s.steps(), 0);
        assert_eq!(s.num_agents(), 3);
        assert_eq!(s.interactions_of(0), 0);
    }

    #[test]
    fn resize_preserves_surviving_counts() {
        let mut s = RunStats::new(3);
        s.record_interaction(0, 2);
        s.resize(5);
        assert_eq!(s.num_agents(), 5);
        assert_eq!(s.interactions_of(0), 1);
        assert_eq!(s.interactions_of(4), 0);
        assert_eq!(s.steps(), 1);
        s.resize(2);
        assert_eq!(s.num_agents(), 2);
        assert_eq!(s.interactions_of(0), 1);
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn empty_population_parallel_time_is_zero() {
        let s = RunStats::new(0);
        assert_eq!(s.parallel_time(), 0.0);
        assert_eq!(s.min_interactions(), 0);
    }
}
