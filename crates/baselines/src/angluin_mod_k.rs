//! Baseline \[5\]: Angluin, Aspnes, Fischer, Jiang 2008 — SS-LE on rings whose
//! size is *not* a multiple of a given constant `k`, with `O(1)` states and
//! `Θ(n³)` expected convergence.
//!
//! ## Mechanism (reconstruction)
//!
//! Every agent carries a label in `Z_k`.  Call agent `r` a **defect** when
//! its label differs from `left.label + 1 (mod k)`.  The sum of the label
//! jumps around the ring is fixed at `−n (mod k) ≠ 0` because `k ∤ n`, so
//! *at least one defect always exists* — the defects are the leaders, and no
//! leader-creation mechanism (and no oracle, and no knowledge of `n`) is
//! needed.  This is exactly the role the "ring size not a multiple of `k`"
//! assumption plays in \[5\].
//!
//! Whenever the arc entering a defect is activated, the defect is absorbed
//! locally (`r.label ← l.label + 1`), which pushes the label jump one agent
//! clockwise: defects perform random walks at rate `1/n` per step and merge
//! when they collide (their jumps add modulo `k`, and a zero sum annihilates
//! both).  Two defects at distance `Θ(n)` need `Θ(n²)` of their own moves —
//! `Θ(n³)` steps — to meet, which is where the `Θ(n³)` bound of Table 1 comes
//! from; the benchmark measures exactly this.
//!
//! ## Known deviation
//!
//! In this reconstruction the final unique defect keeps performing its random
//! walk forever, so the *identity* of the leader keeps changing after the
//! leader *count* has converged to one; the original protocol of \[5\]
//! stabilises the leader's position as well.  The convergence-time experiment
//! measures the time until the defect count reaches one (after which it can
//! never change again), which is the quantity Table 1 compares.  See
//! `DESIGN.md` §4.

use population::{Configuration, LeaderElection, Protocol};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-agent state: a label in `Z_k` plus the cached defect/leader bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModKState {
    /// The agent's label in `Z_k`.
    pub label: u8,
    /// Cached output bit: `true` iff the agent observed itself to be a defect
    /// at its most recent interaction as a responder.
    pub leader: bool,
}

impl ModKState {
    /// Creates a state with the given label and a cleared leader bit.
    pub fn new(label: u8) -> Self {
        ModKState {
            label,
            leader: false,
        }
    }

    /// Samples a state uniformly.
    pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, k: u8) -> Self {
        ModKState {
            label: rng.gen_range(0..k),
            leader: rng.gen(),
        }
    }
}

/// The mod-`k` defect protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AngluinModK {
    k: u8,
}

impl AngluinModK {
    /// Creates the protocol for modulus `k ≥ 2`.
    ///
    /// The protocol is an SS-LE protocol only on rings whose size is not a
    /// multiple of `k` (Table 1, row \[5\]).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: u8) -> Self {
        assert!(k >= 2, "the modulus k must be at least 2");
        AngluinModK { k }
    }

    /// The modulus `k`.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// Returns `true` if the protocol's assumption holds for a ring of `n`
    /// agents (`k ∤ n`).
    pub fn assumption_holds(&self, n: usize) -> bool {
        !n.is_multiple_of(self.k as usize)
    }

    /// Exact number of states per agent: `2k` — the `O(1)` entry of Table 1.
    pub fn states_per_agent(&self) -> u128 {
        2 * self.k as u128
    }
}

impl Default for AngluinModK {
    fn default() -> Self {
        AngluinModK::new(2)
    }
}

impl Protocol for AngluinModK {
    type State = ModKState;

    fn interact(&self, l: &mut ModKState, r: &mut ModKState) {
        let expected = (l.label + 1) % self.k;
        // The responder records whether it currently is a defect (this is its
        // leader output) and then absorbs the defect, pushing the label jump
        // one position clockwise.
        r.leader = r.label != expected;
        r.label = expected;
        // The initiator's cached bit can only be refreshed when *it* is the
        // responder; nothing to do for `l` here.
    }

    fn name(&self) -> &'static str {
        "[5] Angluin et al. 2008 (k does not divide n)"
    }
}

impl LeaderElection for AngluinModK {
    fn is_leader(&self, state: &ModKState) -> bool {
        state.leader
    }
}

/// The positions of the *defects* of a configuration: agents whose label is
/// not their left neighbour's plus one (mod `k`).  This is the ground-truth
/// leader set (the cached `leader` bits lag behind it by one interaction).
pub fn defects(config: &Configuration<ModKState>, k: u8) -> Vec<usize> {
    let n = config.len();
    (0..n)
        .filter(|&i| config[i].label != (config.left_of(i).label + 1) % k)
        .collect()
}

/// Convergence criterion for the experiments: exactly one defect remains.
/// Defects can merge but never vanish entirely (the label-jump sum is
/// `−n ≠ 0 (mod k)`), so once the count reaches one it stays one forever.
pub fn has_unique_defect(config: &Configuration<ModKState>, k: u8) -> bool {
    defects(config, k).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{DirectedRing, Simulation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructor_and_assumption() {
        let p = AngluinModK::new(2);
        assert_eq!(p.k(), 2);
        assert!(p.assumption_holds(7));
        assert!(!p.assumption_holds(8));
        assert_eq!(p.states_per_agent(), 4);
        assert!(Protocol::name(&p).contains("[5]"));
        assert_eq!(AngluinModK::default().k(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn modulus_one_is_rejected() {
        AngluinModK::new(1);
    }

    #[test]
    fn responder_absorbs_the_defect_and_reports_it() {
        let p = AngluinModK::new(3);
        let mut l = ModKState::new(1);
        let mut r = ModKState::new(0); // expected 2: defect
        p.interact(&mut l, &mut r);
        assert!(r.leader);
        assert_eq!(r.label, 2);
        // A consistent responder clears its bit.
        let mut l = ModKState::new(1);
        let mut r = ModKState::new(2);
        r.leader = true;
        p.interact(&mut l, &mut r);
        assert!(!r.leader);
        assert_eq!(r.label, 2);
    }

    #[test]
    fn defect_count_never_reaches_zero_when_k_does_not_divide_n() {
        // Exhaustive small case: n = 5, k = 2; run from many random initial
        // configurations and check the invariant at every step.
        let n = 5;
        let k = 2;
        let p = AngluinModK::new(k);
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let config = Configuration::from_fn(n, |_| ModKState::sample_uniform(&mut rng, k));
            let mut sim = Simulation::new(p, DirectedRing::new(n).unwrap(), config, seed);
            for _ in 0..200 {
                sim.run_steps(50);
                let d = defects(sim.config(), k).len();
                assert!(d >= 1, "defect count hit zero (seed {seed})");
            }
        }
    }

    #[test]
    fn defect_count_is_monotonically_non_increasing() {
        let n = 15;
        let k = 2;
        let p = AngluinModK::new(k);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = Configuration::from_fn(n, |_| ModKState::sample_uniform(&mut rng, k));
        let mut sim = Simulation::new(p, DirectedRing::new(n).unwrap(), config, 3);
        let mut last = defects(sim.config(), k).len();
        for _ in 0..400 {
            sim.run_steps(100);
            let now = defects(sim.config(), k).len();
            assert!(now <= last, "defects increased from {last} to {now}");
            last = now;
        }
    }

    #[test]
    fn converges_to_a_unique_defect() {
        let n = 13; // k = 2 does not divide 13
        let k = 2;
        let p = AngluinModK::new(k);
        assert!(p.assumption_holds(n));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let config = Configuration::from_fn(n, |_| ModKState::sample_uniform(&mut rng, k));
        let mut sim = Simulation::new(p, DirectedRing::new(n).unwrap(), config, 11);
        let report = sim.run_until(
            |_p, c: &Configuration<ModKState>| has_unique_defect(c, k),
            (n * n) as u64,
            50_000_000,
        );
        assert!(report.converged());
        // Once unique, always unique.
        sim.run_steps(100_000);
        assert!(has_unique_defect(sim.config(), k));
    }

    #[test]
    fn on_a_divisible_ring_all_defects_can_vanish() {
        // Control experiment: with k | n the assumption fails and the defect
        // count *can* reach zero (start from the perfectly consistent
        // labelling), i.e. the protocol correctly relies on its assumption.
        let n = 8;
        let k = 2;
        let config = Configuration::from_fn(n, |i| ModKState::new((i % 2) as u8));
        assert_eq!(defects(&config, k).len(), 0);
        assert!(!has_unique_defect(&config, k));
    }

    #[test]
    fn cached_leader_bits_eventually_track_the_unique_defect() {
        let n = 9;
        let k = 2;
        let p = AngluinModK::new(k);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let config = Configuration::from_fn(n, |_| ModKState::sample_uniform(&mut rng, k));
        let mut sim = Simulation::new(p, DirectedRing::new(n).unwrap(), config, 2);
        sim.run_until(
            |_p, c: &Configuration<ModKState>| has_unique_defect(c, k),
            100,
            50_000_000,
        );
        // After plenty more interactions, the number of set leader bits is
        // small (the unique defect plus possibly one stale bit about to be
        // refreshed).
        sim.run_steps(200_000);
        let bits = sim.protocol().count_leaders(sim.config().states());
        assert!(bits <= 2, "stale leader bits did not decay: {bits}");
    }
}
