//! Baseline \[28\]: Yokota, Sudo, Masuzawa 2021 — time-optimal SS-LE on rings
//! with `Θ(n²)` convergence and `O(n)` states.
//!
//! The 2021 protocol detects the absence of a leader "in a naive way using
//! `O(n)` states, given knowledge `N = n + O(n)`: each agent computes the
//! distance from the nearest left leader and detects the absence of a leader
//! when the computed distance is `N` or larger" (Section 3.1 of the 2023
//! paper).  Leader elimination is the same bullets-and-shields war that the
//! 2023 paper reuses verbatim as `EliminateLeaders()` (Algorithm 5).
//!
//! This module reconstructs exactly that: an exact distance counter capped at
//! `N` plus Algorithm 5.  Its per-agent state count is `Θ(N) = Θ(n)` and its
//! convergence time is `Θ(n²)` — the row of Table 1 labelled \[28\].

use population::{LeaderElection, Protocol};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ssle_core::state::bullet;

/// Per-agent state of the `O(n)`-state baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct YokotaState {
    /// Output variable: `true` iff the agent outputs `L`.
    pub leader: bool,
    /// Exact distance to the nearest left leader, capped at `N`.
    pub dist: u32,
    /// Bullet carried by this agent (`0` none, `1` dummy, `2` live).
    pub bullet: u8,
    /// Whether the agent is shielded.
    pub shield: bool,
    /// Whether the agent carries a bullet-absence signal.
    pub signal_b: bool,
}

impl YokotaState {
    /// A clean follower.
    pub fn follower() -> Self {
        YokotaState {
            leader: false,
            dist: 0,
            bullet: bullet::NONE,
            shield: false,
            signal_b: false,
        }
    }

    /// A clean (shielded) leader.
    pub fn leader() -> Self {
        YokotaState {
            leader: true,
            shield: true,
            ..YokotaState::follower()
        }
    }

    /// The "create a leader" assignment, identical to the 2023 protocol's
    /// Lines 6/18: become a shielded leader and fire a live bullet.
    pub fn become_leader(&mut self) {
        self.leader = true;
        self.bullet = bullet::LIVE;
        self.shield = true;
        self.signal_b = false;
    }

    /// Samples a state uniformly from the whole state space (for arbitrary
    /// initial configurations).
    pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, cap: u32) -> Self {
        YokotaState {
            leader: rng.gen(),
            dist: rng.gen_range(0..=cap),
            bullet: rng.gen_range(0..=2),
            shield: rng.gen(),
            signal_b: rng.gen(),
        }
    }
}

/// The `O(n)`-state, `Θ(n²)`-time baseline protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YokotaLinear {
    cap: u32,
}

impl YokotaLinear {
    /// Creates the protocol with distance cap `N` (the knowledge
    /// `N = n + O(n)`; any `N ≥ n` is valid, and `N = n` is used by the
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 2, "the distance cap N must be at least 2");
        YokotaLinear { cap }
    }

    /// The canonical parameters for a ring of `n` agents: `N = n`.
    pub fn for_ring(n: usize) -> Self {
        YokotaLinear::new(n as u32)
    }

    /// The distance cap `N`.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Exact number of states per agent: `2 (leader) × (N+1) (dist) × 3
    /// (bullet) × 2 (shield) × 2 (signal_B)` — the `Θ(n)` entry of Table 1.
    pub fn states_per_agent(&self) -> u128 {
        2 * (self.cap as u128 + 1) * 3 * 2 * 2
    }

    /// Algorithm 5 (`EliminateLeaders`), shared with the 2023 protocol.
    fn eliminate(l: &mut YokotaState, r: &mut YokotaState) {
        if l.leader && l.signal_b {
            l.bullet = bullet::LIVE;
            l.shield = true;
            l.signal_b = false;
        }
        if r.leader && r.signal_b {
            r.bullet = bullet::DUMMY;
            r.shield = false;
            r.signal_b = false;
        }
        if l.bullet > bullet::NONE && r.leader {
            if l.bullet == bullet::LIVE && !r.shield {
                r.leader = false;
            }
            l.bullet = bullet::NONE;
        } else if l.bullet > bullet::NONE {
            if r.bullet == bullet::NONE {
                r.bullet = l.bullet;
            }
            l.bullet = bullet::NONE;
            r.signal_b = false;
        }
        l.signal_b = l.signal_b || r.signal_b || r.leader;
    }
}

impl Protocol for YokotaLinear {
    type State = YokotaState;

    fn interact(&self, l: &mut YokotaState, r: &mut YokotaState) {
        // CreateLeader, O(n)-state version: exact distance propagation with
        // detection at the cap.
        if r.leader {
            r.dist = 0;
        } else {
            r.dist = (l.dist + 1).min(self.cap);
            if r.dist == self.cap {
                // The nearest left leader would be at distance >= N >= n:
                // impossible on a ring of n agents that has a leader.
                r.become_leader();
                r.dist = 0;
            }
        }
        Self::eliminate(l, r);
    }

    fn name(&self) -> &'static str {
        "[28] Yokota et al. 2021 (O(n) states)"
    }
}

impl LeaderElection for YokotaLinear {
    fn is_leader(&self, state: &YokotaState) -> bool {
        state.leader
    }
}

/// Structural safe-configuration check used to measure convergence: exactly
/// one leader, every agent's `dist` equals its true distance to the nearest
/// left leader (capped at `N`), and every live bullet is peaceful (its
/// nearest left leader is shielded and no bullet-absence signal lies
/// between).  From such a configuration the protocol never creates another
/// leader (all distances stay below `N`) and never kills the last one.
pub fn is_safe(config: &population::Configuration<YokotaState>, cap: u32) -> bool {
    let n = config.len();
    let leaders: Vec<usize> = config.indices_where(|s| s.leader);
    if leaders.len() != 1 {
        return false;
    }
    let leader = leaders[0];
    // Correct (capped) distances.
    let dist_ok = (0..n).all(|i| {
        let true_dist = ((i + n - leader) % n) as u32;
        config[i].dist == true_dist.min(cap)
    });
    if !dist_ok {
        return false;
    }
    // n must be below the cap for the distances to stay below N forever.
    if n as u32 > cap {
        return false;
    }
    // Peaceful live bullets.
    (0..n).all(|i| {
        if config[i].bullet != bullet::LIVE {
            return true;
        }
        let d = (i + n - leader) % n;
        config[leader].shield && (0..=d).all(|j| !config[(i + n - j) % n].signal_b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{Configuration, DirectedRing, Simulation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn safe_config(n: usize, leader: usize) -> Configuration<YokotaState> {
        Configuration::from_fn(n, |i| {
            let mut s = if i == leader {
                YokotaState::leader()
            } else {
                YokotaState::follower()
            };
            s.dist = ((i + n - leader) % n) as u32;
            s
        })
    }

    #[test]
    fn constructor_and_state_count() {
        let p = YokotaLinear::for_ring(100);
        assert_eq!(p.cap(), 100);
        assert_eq!(p.states_per_agent(), 2 * 101 * 3 * 2 * 2);
        assert!(Protocol::name(&p).contains("[28]"));
        assert!(p.is_leader(&YokotaState::leader()));
        assert!(!p.is_leader(&YokotaState::follower()));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_cap_is_rejected() {
        YokotaLinear::new(1);
    }

    #[test]
    fn distance_propagates_and_detection_fires_at_the_cap() {
        let p = YokotaLinear::new(5);
        let mut l = YokotaState::follower();
        let mut r = YokotaState::follower();
        l.dist = 2;
        p.interact(&mut l, &mut r);
        assert_eq!(r.dist, 3);
        assert!(!r.leader);
        // At the cap the responder concludes there is no leader and becomes
        // one itself.
        let mut l = YokotaState::follower();
        let mut r = YokotaState::follower();
        l.dist = 4;
        p.interact(&mut l, &mut r);
        assert!(r.leader);
        assert_eq!(r.dist, 0);
        assert_eq!(r.bullet, bullet::LIVE);
        assert!(r.shield);
    }

    #[test]
    fn leader_responder_resets_distance() {
        let p = YokotaLinear::new(8);
        let mut l = YokotaState::follower();
        l.dist = 7;
        let mut r = YokotaState::leader();
        r.dist = 3;
        p.interact(&mut l, &mut r);
        assert_eq!(r.dist, 0);
        assert!(r.leader);
    }

    #[test]
    fn safe_configurations_are_recognised_and_closed() {
        let n = 16;
        let protocol = YokotaLinear::for_ring(n);
        let config = safe_config(n, 5);
        assert!(is_safe(&config, protocol.cap()));
        let mut sim = Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, 3);
        for _ in 0..40 {
            sim.run_steps(5_000);
            assert!(is_safe(sim.config(), protocol.cap()));
            assert_eq!(
                sim.protocol().leader_indices(sim.config().states()),
                vec![5]
            );
        }
    }

    #[test]
    fn broken_configurations_are_rejected_by_the_checker() {
        let n = 8;
        let cap = 8;
        let mut c = safe_config(n, 0);
        c[3].dist = 7;
        assert!(!is_safe(&c, cap));
        let mut c = safe_config(n, 0);
        c[4].leader = true;
        assert!(!is_safe(&c, cap));
        let c = Configuration::uniform(n, YokotaState::follower());
        assert!(!is_safe(&c, cap));
        // A cap smaller than n can never be safe.
        assert!(!is_safe(&safe_config(n, 0), 4));
    }

    #[test]
    fn converges_from_all_followers_and_all_leaders() {
        for (name, init) in [
            ("followers", YokotaState::follower()),
            ("leaders", YokotaState::leader()),
        ] {
            let n = 16;
            let protocol = YokotaLinear::for_ring(n);
            let cap = protocol.cap();
            let config = Configuration::uniform(n, init);
            let mut sim = Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, 7);
            let report = sim.run_until(
                |_p, c: &Configuration<YokotaState>| is_safe(c, cap),
                (n * n) as u64,
                20_000_000,
            );
            assert!(report.converged(), "did not converge from all-{name}");
        }
    }

    #[test]
    fn converges_from_uniformly_random_configurations() {
        let n = 24;
        let protocol = YokotaLinear::for_ring(n);
        let cap = protocol.cap();
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let config = Configuration::from_fn(n, |_| YokotaState::sample_uniform(&mut rng, cap));
            let mut sim =
                Simulation::new(protocol, DirectedRing::new(n).unwrap(), config, seed + 50);
            let report = sim.run_until(
                |_p, c: &Configuration<YokotaState>| is_safe(c, cap),
                (n * n) as u64,
                40_000_000,
            );
            assert!(report.converged(), "seed {seed}");
        }
    }

    #[test]
    fn uniform_sampling_respects_the_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..1000 {
            let s = YokotaState::sample_uniform(&mut rng, 9);
            assert!(s.dist <= 9);
            assert!(s.bullet <= 2);
        }
    }
}
