//! Baseline \[11\]: Chen, Chen 2019 — constant-state SS-LE on general rings
//! with super-exponential expected convergence time.
//!
//! The Chen–Chen protocol embeds a prefix of the **Thue–Morse string** on the
//! ring; the string is *cube-free* (it contains no factor `www`), so a safe
//! configuration with a leader never exhibits a cube, while a leaderless ring
//! necessarily repeats its length-`n` window and therefore contains one —
//! detecting a cube is how the absence of a leader is discovered
//! (Section 3.1 of the 2023 paper).
//!
//! Reimplementing the full constant-state cube-detection machinery is out of
//! scope (its super-exponential running time also makes it impossible to
//! benchmark beyond toy sizes); Table 1's row for \[11\] is therefore reported
//! analytically by the harness rather than measured (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`).  This module provides the combinatorial substrate the
//! protocol rests on — Thue–Morse generation and cube detection — together
//! with tests of the properties the argument uses.

/// The first `len` symbols of the Thue–Morse string `t(i) = parity of the
/// number of 1-bits of i`.
pub fn thue_morse_prefix(len: usize) -> Vec<bool> {
    (0..len).map(|i| (i.count_ones() % 2) == 1).collect()
}

/// Returns the starting index of a *cube* `www` (a non-empty factor repeated
/// three times consecutively) in `s`, or `None` if `s` is cube-free.
pub fn find_cube(s: &[bool]) -> Option<(usize, usize)> {
    let n = s.len();
    for w in 1..=n / 3 {
        for start in 0..=(n - 3 * w) {
            let first = &s[start..start + w];
            if first == &s[start + w..start + 2 * w] && first == &s[start + 2 * w..start + 3 * w] {
                return Some((start, w));
            }
        }
    }
    None
}

/// Returns `true` if `s` contains no cube.
pub fn is_cube_free(s: &[bool]) -> bool {
    find_cube(s).is_none()
}

/// Returns the starting index and period of a cube in the *circular* word
/// `s` (reading up to three full turns), or `None`.
///
/// This is the leaderless situation on a ring: the window of length `n`
/// repeats forever, so the circular word always contains a cube of period
/// `n` — and often much shorter ones.  The Chen–Chen detector looks for
/// exactly these.
pub fn find_circular_cube(s: &[bool]) -> Option<(usize, usize)> {
    let n = s.len();
    if n == 0 {
        return None;
    }
    let tripled: Vec<bool> = s.iter().chain(s.iter()).chain(s.iter()).copied().collect();
    for w in 1..=n {
        for start in 0..n {
            if start + 3 * w > tripled.len() {
                break;
            }
            let first = &tripled[start..start + w];
            if first == &tripled[start + w..start + 2 * w]
                && first == &tripled[start + 2 * w..start + 3 * w]
            {
                return Some((start, w));
            }
        }
    }
    None
}

/// The analytic Table 1 row for \[11\]: `O(1)` states.  (Eight states suffice
/// for the published protocol's agents; we report the order of magnitude
/// rather than an exact count because we do not reimplement the transition
/// table.)
pub fn states_per_agent_order() -> u128 {
    8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thue_morse_prefix_matches_known_values() {
        // 0 1 1 0 1 0 0 1 1 0 0 1 0 1 1 0 ...
        let expected = [
            false, true, true, false, true, false, false, true, true, false, false, true, false,
            true, true, false,
        ];
        assert_eq!(thue_morse_prefix(16), expected);
        assert_eq!(thue_morse_prefix(0).len(), 0);
    }

    #[test]
    fn thue_morse_prefixes_are_cube_free() {
        // The classical theorem (Thue 1912) the Chen–Chen detector relies on.
        for len in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let s = thue_morse_prefix(len);
            assert!(is_cube_free(&s), "length {len} prefix contains a cube");
        }
    }

    #[test]
    fn explicit_cubes_are_found() {
        // 000
        let s = [false, false, false];
        assert_eq!(find_cube(&s), Some((0, 1)));
        // 010101 = (01)^3
        let s = [false, true, false, true, false, true];
        assert_eq!(find_cube(&s), Some((0, 2)));
        // A cube hidden in the middle.
        let mut v = thue_morse_prefix(10);
        v.extend_from_slice(&[true, true, true]);
        v.extend_from_slice(&thue_morse_prefix(5));
        let (start, w) = find_cube(&v).expect("cube must be found");
        assert_eq!(w, 1);
        assert!((9..=10).contains(&start), "start = {start}");
    }

    #[test]
    fn near_cubes_are_not_reported() {
        // 0101 1010: squares but no cubes.
        let s = [false, true, false, true, true, false, true, false];
        assert!(is_cube_free(&s));
    }

    #[test]
    fn circular_reading_always_finds_a_cube_for_short_leaderless_windows() {
        // On a leaderless ring the length-n window repeats, so the circular
        // word contains a cube even when the linear window is cube-free —
        // this is exactly the Lemma-3.2-style argument of [11].
        for n in 1..64usize {
            let window = thue_morse_prefix(n);
            assert!(
                find_circular_cube(&window).is_some(),
                "no circular cube for n = {n}"
            );
        }
    }

    #[test]
    fn circular_cube_of_the_trivial_window() {
        assert_eq!(find_circular_cube(&[]), None);
        assert_eq!(find_circular_cube(&[true]), Some((0, 1)));
    }

    #[test]
    fn state_order_is_constant() {
        assert_eq!(states_per_agent_order(), 8);
    }
}
