//! # ssle-baselines
//!
//! Baseline self-stabilizing leader-election protocols for rings, used to
//! reproduce the comparison of Table 1 of the paper:
//!
//! | row | protocol | assumption | convergence | #states | module |
//! |-----|----------|-----------|-------------|---------|--------|
//! | \[5\]  | Angluin, Aspnes, Fischer, Jiang 2008 | `n` not a multiple of a given `k` | `Θ(n³)` | `O(1)` | [`angluin_mod_k`] |
//! | \[15\] | Fischer, Jiang 2006 | oracle `Ω?` | `Θ(n³)` | `O(1)` | [`fischer_jiang`] |
//! | \[11\] | Chen, Chen 2019 | none | exponential | `O(1)` | [`thue_morse`] (utilities + analysis only) |
//! | \[28\] | Yokota, Sudo, Masuzawa 2021 | knowledge `ψ` | `Θ(n²)` | `O(n)` | [`yokota_linear`] |
//! | this work | Yokota, Sudo, Ooshita, Masuzawa 2023 | knowledge `ψ` | `O(n² log n)` | `polylog(n)` | `ssle-core` |
//!
//! The original papers give prose-level protocol descriptions; the versions
//! here are **shape-faithful reconstructions** (same assumptions, same state
//! complexity class, same qualitative mechanism), not transition-table
//! transcriptions.  Known deviations are documented on each module and in
//! `DESIGN.md` §4; `EXPERIMENTS.md` reports the exponents actually measured
//! for the reconstructions next to the bounds claimed by the original papers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod angluin_mod_k;
pub mod fischer_jiang;
pub mod thue_morse;
pub mod yokota_linear;

pub use angluin_mod_k::{AngluinModK, ModKState};
pub use fischer_jiang::{FischerJiang, FjState};
pub use yokota_linear::{YokotaLinear, YokotaState};
