//! Baseline \[15\]: Fischer, Jiang 2006 — SS-LE on rings with the eventual
//! leader detector `Ω?` and `O(1)` states.
//!
//! Fischer and Jiang introduced both the oracle `Ω?` (which eventually tells
//! every agent whether a leader exists) and the bullets-and-shields war that
//! Algorithm 5 of the 2023 paper descends from.  Their ring protocol
//! converges in `Θ(n³)` expected steps when the oracle reports instantly
//! (footnote in Section 1 of the 2023 paper).
//!
//! ## Reconstruction notes (see `DESIGN.md` §4)
//!
//! * **Oracle.**  The oracle is simulated exactly the way the `Θ(n³)` bound
//!   assumes: the environment hook inspects the global configuration every
//!   step and sets each agent's `oracle_no_leader` flag to "there is no
//!   leader anywhere".  An agent whose flag is set becomes a leader at its
//!   next interaction.
//! * **Elimination.**  Leaders fight with live/dummy bullets and shields as
//!   in Algorithm 5, but *without* the bullet-absence signal `signal_B`
//!   (that signal is the 2021/2023 refinement): the oracle also reports
//!   whether any bullet is still in flight, and leaders may fire only when
//!   none is — so firing proceeds in global rounds, each of which requires
//!   every bullet to complete its flight.
//! * The measured convergence exponent of this reconstruction is reported in
//!   `EXPERIMENTS.md` next to the original's `Θ(n³)` bound; the qualitative
//!   Table 1 ordering (slower than \[28\] and this work) is what the benchmark
//!   reproduces.

use population::{Configuration, LeaderElection, Protocol};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ssle_core::state::bullet;

/// Per-agent state of the Fischer–Jiang reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FjState {
    /// Output variable: `true` iff the agent outputs `L`.
    pub leader: bool,
    /// Bullet carried by the agent (`0` none, `1` dummy, `2` live).
    pub bullet: u8,
    /// Whether the agent is shielded.
    pub shield: bool,
    /// Whether the agent is allowed to fire (set by the oracle when no bullet
    /// is in flight anywhere; cleared when the agent fires).
    pub may_fire: bool,
    /// The oracle `Ω?` output as last reported to this agent: `true` means
    /// "no leader exists in the population".
    pub oracle_no_leader: bool,
}

impl FjState {
    /// A clean follower.
    pub fn follower() -> Self {
        FjState {
            leader: false,
            bullet: bullet::NONE,
            shield: false,
            may_fire: false,
            oracle_no_leader: false,
        }
    }

    /// A clean leader (shielded, allowed to fire).
    pub fn leader() -> Self {
        FjState {
            leader: true,
            shield: true,
            may_fire: true,
            ..FjState::follower()
        }
    }

    /// Samples a state uniformly from the state space.
    pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        FjState {
            leader: rng.gen(),
            bullet: rng.gen_range(0..=2),
            shield: rng.gen(),
            may_fire: rng.gen(),
            oracle_no_leader: rng.gen(),
        }
    }
}

/// The Fischer–Jiang reconstruction (oracle + bullets and shields).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FischerJiang;

impl FischerJiang {
    /// Creates the protocol.
    pub fn new() -> Self {
        FischerJiang
    }

    /// Exact number of states per agent: `2⁴ × 3` — the `O(1)` entry of
    /// Table 1.
    pub fn states_per_agent(&self) -> u128 {
        2 * 3 * 2 * 2 * 2
    }
}

impl Protocol for FischerJiang {
    type State = FjState;

    /// The oracle `Ω?` runs through the environment hook every step.
    const HAS_ENVIRONMENT: bool = true;

    fn interact(&self, l: &mut FjState, r: &mut FjState) {
        // Oracle-triggered creation: an agent told that no leader exists
        // becomes a shielded leader that immediately fires a live bullet
        // (the same entry move as Lines 6/18 of the 2023 paper).
        for v in [&mut *l, &mut *r] {
            if v.oracle_no_leader && !v.leader {
                v.leader = true;
                v.shield = true;
                v.may_fire = false;
                v.bullet = bullet::LIVE;
            }
        }

        // Firing: a leader that the oracle has cleared to fire does so when
        // it interacts, choosing live-and-shielded as the initiator and
        // dummy-and-unshielded as the responder — the same
        // scheduler-randomness coin as Algorithm 5.
        if l.leader && l.may_fire && l.bullet == bullet::NONE {
            l.bullet = bullet::LIVE;
            l.shield = true;
            l.may_fire = false;
        }
        if r.leader && r.may_fire && r.bullet == bullet::NONE {
            r.bullet = bullet::DUMMY;
            r.shield = false;
            r.may_fire = false;
        }

        // Bullet movement and resolution (as in Algorithm 5, Lines 55–60).
        if l.bullet > bullet::NONE && r.leader {
            if l.bullet == bullet::LIVE && !r.shield {
                r.leader = false;
                r.may_fire = false;
            }
            l.bullet = bullet::NONE;
        } else if l.bullet > bullet::NONE {
            if r.bullet == bullet::NONE {
                r.bullet = l.bullet;
            }
            l.bullet = bullet::NONE;
        }
    }

    fn environment(&self, states: &mut [FjState]) {
        // The ideal oracle Ω?: report instantly to every agent whether a
        // leader exists anywhere, and whether any bullet is still in flight
        // (the firing gate that replaces the 2021/2023 signal_B mechanism).
        let no_leader = !states.iter().any(|s| s.leader);
        let no_bullet = states.iter().all(|s| s.bullet == bullet::NONE);
        for s in states.iter_mut() {
            s.oracle_no_leader = no_leader;
            if no_bullet {
                s.may_fire = true;
            }
        }
    }

    fn uses_oracle(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "[15] Fischer-Jiang 2006 (oracle)"
    }
}

impl LeaderElection for FischerJiang {
    fn is_leader(&self, state: &FjState) -> bool {
        state.leader
    }
}

/// Convergence estimate used by the experiments: exactly one leader and no
/// live bullet threatening it (every live bullet would hit a shielded
/// leader).  Combined with leader-set stability over a long suffix this
/// matches the stability-based measurement described in `EXPERIMENTS.md`.
pub fn has_stable_unique_leader(config: &Configuration<FjState>) -> bool {
    let leaders: Vec<usize> = config.indices_where(|s| s.leader);
    if leaders.len() != 1 {
        return false;
    }
    let n = config.len();
    let leader = leaders[0];
    // Any live bullet will reach the unique leader; it is harmless only if
    // the leader is shielded.
    let live_exists = (0..n).any(|i| config[i].bullet == bullet::LIVE);
    !live_exists || config[leader].shield
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{Configuration, DirectedRing, Simulation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn accessors_and_state_count() {
        let p = FischerJiang::new();
        assert!(p.uses_oracle());
        assert_eq!(p.states_per_agent(), 48);
        assert!(Protocol::name(&p).contains("[15]"));
        assert!(p.is_leader(&FjState::leader()));
        assert!(!p.is_leader(&FjState::follower()));
    }

    #[test]
    fn oracle_reports_absence_to_every_agent() {
        let p = FischerJiang::new();
        let mut states = vec![FjState::follower(); 5];
        p.environment(&mut states);
        assert!(states.iter().all(|s| s.oracle_no_leader));
        assert!(
            states.iter().all(|s| s.may_fire),
            "no bullets: everyone cleared to fire"
        );
        states[2].leader = true;
        states[3].bullet = bullet::DUMMY;
        states.iter_mut().for_each(|s| s.may_fire = false);
        p.environment(&mut states);
        assert!(states.iter().all(|s| !s.oracle_no_leader));
        assert!(
            states.iter().all(|s| !s.may_fire),
            "a bullet in flight blocks new fire permissions"
        );
    }

    #[test]
    fn oracle_flag_triggers_leader_creation() {
        let p = FischerJiang::new();
        let mut l = FjState::follower();
        let mut r = FjState::follower();
        l.oracle_no_leader = true;
        p.interact(&mut l, &mut r);
        assert!(l.leader);
        assert!(l.shield);
    }

    #[test]
    fn live_bullets_kill_unshielded_leaders_but_spare_shielded_ones() {
        let p = FischerJiang::new();
        // Kill.
        let mut l = FjState::follower();
        l.bullet = bullet::LIVE;
        let mut r = FjState::leader();
        r.shield = false;
        r.may_fire = false;
        p.interact(&mut l, &mut r);
        assert!(!r.leader);
        assert_eq!(l.bullet, bullet::NONE);
        // Survive (the bullet is absorbed either way).
        let mut l = FjState::follower();
        l.bullet = bullet::LIVE;
        let mut r = FjState::leader();
        r.shield = true;
        r.may_fire = false;
        p.interact(&mut l, &mut r);
        assert!(r.leader);
        assert_eq!(l.bullet, bullet::NONE);
        assert!(
            !r.may_fire,
            "permission comes from the oracle, not from bullet arrival"
        );
    }

    #[test]
    fn bullets_move_right_over_followers() {
        let p = FischerJiang::new();
        let mut l = FjState::follower();
        l.bullet = bullet::DUMMY;
        let mut r = FjState::follower();
        p.interact(&mut l, &mut r);
        assert_eq!(l.bullet, bullet::NONE);
        assert_eq!(r.bullet, bullet::DUMMY);
    }

    #[test]
    fn fire_permission_produces_live_or_dummy_by_role() {
        let p = FischerJiang::new();
        let mut l = FjState::leader();
        let mut r = FjState::follower();
        p.interact(&mut l, &mut r);
        // Fired live as initiator, bullet moved onto r.
        assert!(l.shield);
        assert!(!l.may_fire);
        assert_eq!(r.bullet, bullet::LIVE);

        let mut l = FjState::follower();
        let mut r = FjState::leader();
        p.interact(&mut l, &mut r);
        assert_eq!(r.bullet, bullet::DUMMY);
        assert!(!r.shield);
    }

    #[test]
    fn converges_with_oracle_from_adversarial_configurations() {
        let n = 16;
        let p = FischerJiang::new();
        let initials: Vec<(&str, Configuration<FjState>)> = vec![
            (
                "all-followers",
                Configuration::uniform(n, FjState::follower()),
            ),
            ("all-leaders", Configuration::uniform(n, FjState::leader())),
            ("random", {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                Configuration::from_fn(n, |_| FjState::sample_uniform(&mut rng))
            }),
        ];
        for (name, config) in initials {
            let mut sim = Simulation::new(p, DirectedRing::new(n).unwrap(), config, 9);
            let changes = sim.run_tracking_leader_changes(10_000_000);
            assert_eq!(sim.count_leaders(), 1, "{name}: should end with one leader");
            // The leader set must have been stable for a long suffix.
            let last = changes.last().copied().unwrap_or(0);
            assert!(
                sim.steps() - last > 100_000,
                "{name}: leader set still churning near the end"
            );
            assert!(has_stable_unique_leader(sim.config()), "{name}");
        }
    }

    #[test]
    fn stability_predicate() {
        let n = 8;
        let mut c = Configuration::uniform(n, FjState::follower());
        assert!(!has_stable_unique_leader(&c));
        c[2] = FjState::leader();
        assert!(has_stable_unique_leader(&c));
        c[5].bullet = bullet::LIVE;
        assert!(has_stable_unique_leader(&c), "shielded leader survives");
        c[2].shield = false;
        assert!(!has_stable_unique_leader(&c));
        c[3] = FjState::leader();
        assert!(!has_stable_unique_leader(&c));
    }
}
