//! Property tests: every wire message survives the line encoding exactly.
//!
//! The fabric's byte-identity claim rests on the wire never altering a
//! payload, so the round-trip properties here cover full-width `u64` seqs
//! (where JSON's f64 numbers would round), nested spec trees with
//! escape-requiring strings, and every [`WorkError`] variant.

use analysis::json::JsonValue;
use proptest::prelude::*;
use ssle_fabric::wire::{WorkError, WorkResult, WorkUnit};

/// A palette of strings that exercise the JSON escaper: quotes,
/// backslashes, control characters, non-ASCII.
const STRINGS: &[&str] = &[
    "",
    "plain",
    "with \"quotes\"",
    "back\\slash",
    "new\nline and tab\t",
    "nul\u{0}char",
    "ünïcode ▷ ring",
];

fn string_strategy() -> impl Strategy<Value = String> {
    (0usize..STRINGS.len()).prop_map(|i| STRINGS[i].to_string())
}

/// A bounded-depth JSON tree: scalars at the leaves, one object and one
/// array layer above them.  Numbers stay in the exactly-representable
/// range; full-width integers travel as decimal strings per the workspace
/// convention, which the seq field already covers.
fn spec_strategy() -> impl Strategy<Value = JsonValue> {
    (
        any::<bool>(),
        -1_000_000i64..1_000_000i64,
        0usize..STRINGS.len(),
        any::<u64>(),
        0usize..4usize,
    )
        .prop_map(|(b, num, si, big, shape)| {
            let scalar = JsonValue::Number(num as f64 / 8.0);
            let exact = JsonValue::String(big.to_string());
            let s = JsonValue::String(STRINGS[si].to_string());
            match shape {
                0 => scalar,
                1 => JsonValue::Array(vec![scalar, JsonValue::Bool(b), s, exact]),
                2 => JsonValue::object()
                    .with("flag", b)
                    .with("x", scalar)
                    .with("label", s)
                    .with("seed", exact),
                _ => JsonValue::object().with(
                    "nested",
                    JsonValue::Array(vec![
                        JsonValue::object().with("inner", s).with("n", scalar),
                        JsonValue::Null,
                        JsonValue::Bool(b),
                    ]),
                ),
            }
        })
}

fn error_strategy() -> impl Strategy<Value = WorkError> {
    (0usize..4usize, string_strategy(), string_strategy()).prop_map(|(variant, a, b)| match variant
    {
        0 => WorkError::UnknownJob { job: a },
        1 => WorkError::BadSpec { detail: a },
        2 => WorkError::SchemaMismatch {
            requested: a,
            supported: b,
        },
        _ => WorkError::Failed { detail: a },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn work_units_round_trip(
        seq in any::<u64>(),
        job in string_strategy(),
        spec in spec_strategy(),
    ) {
        let unit = WorkUnit::new(seq, job, spec);
        let line = unit.to_line();
        prop_assert!(!line.contains('\n'), "wire lines must stay single lines");
        let back = WorkUnit::from_line(&line);
        prop_assert!(back.is_ok(), "parse failed: {:?} for line {line}", back.err());
        prop_assert_eq!(back.unwrap(), unit);
    }

    #[test]
    fn ok_results_round_trip(seq in any::<u64>(), payload in spec_strategy()) {
        let result = WorkResult::ok(seq, payload);
        let line = result.to_line();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(WorkResult::from_line(&line).unwrap(), result);
    }

    #[test]
    fn err_results_round_trip(seq in any::<u64>(), error in error_strategy()) {
        let result = WorkResult::err(seq, error);
        let line = result.to_line();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(WorkResult::from_line(&line).unwrap(), result);
    }

    #[test]
    fn seq_is_exact_at_full_width(seq in any::<u64>()) {
        // The decimal-string convention: the wire must carry any u64
        // exactly, including values a JSON number (f64) would round.
        let unit = WorkUnit::new(seq, "j", JsonValue::Null);
        prop_assert_eq!(WorkUnit::from_line(&unit.to_line()).unwrap().seq, seq);
    }

    #[test]
    fn cache_key_is_seq_free_and_spec_sensitive(
        seq_a in any::<u64>(),
        seq_b in any::<u64>(),
        spec in spec_strategy(),
    ) {
        let a = WorkUnit::new(seq_a, "job", spec.clone());
        let b = WorkUnit::new(seq_b, "job", spec.clone());
        prop_assert_eq!(a.cache_key(), b.cache_key());
        let other = WorkUnit::new(seq_a, "job", JsonValue::object().with("spec", spec));
        prop_assert_ne!(a.cache_key(), other.cache_key());
    }
}
