//! End-to-end coordinator tests against the real `fabric_demo_worker`
//! subprocess: deterministic merge order, typed error pass-through,
//! crash/timeout retry, bounded-restart exhaustion, and cache/resume
//! semantics including the warm-rerun-executes-zero-units guarantee.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use analysis::json::JsonValue;
use ssle_fabric::cache::ResultCache;
use ssle_fabric::coordinator::{run_units, CoordinatorOptions, UnitFailure, WorkerCommand};
use ssle_fabric::wire::{WorkError, WorkUnit};
use ssle_fabric::CRASH_ONCE_ENV;

fn demo_worker() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_fabric_demo_worker"))
}

fn echo_unit(seq: u64, value: &str) -> WorkUnit {
    WorkUnit::new(
        seq,
        "demo",
        JsonValue::object()
            .with("mode", "echo")
            .with("value", value),
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssle-fabric-coord-test-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn results_merge_in_unit_order_across_workers() {
    let units: Vec<WorkUnit> = (0..12).map(|i| echo_unit(i, &format!("v{i}"))).collect();
    let outcome = run_units(&demo_worker(), &units, &CoordinatorOptions::new(3)).unwrap();
    assert_eq!(outcome.executed, 12);
    assert_eq!(outcome.cached, 0);
    let payloads = outcome.into_payloads().unwrap();
    for (i, payload) in payloads.iter().enumerate() {
        assert_eq!(
            payload.get("value").and_then(JsonValue::as_str),
            Some(format!("v{i}").as_str()),
            "slot {i} must hold unit {i}'s result whatever worker ran it"
        );
    }
}

#[test]
fn typed_job_errors_are_final_and_do_not_kill_the_run() {
    let units = vec![
        echo_unit(0, "ok0"),
        WorkUnit::new(1, "demo", JsonValue::object().with("mode", "error")),
        WorkUnit::new(2, "not-a-job", JsonValue::Null),
        WorkUnit::new(3, "demo", JsonValue::object().with("mode", "panic")),
        echo_unit(4, "ok4"),
    ];
    let outcome = run_units(&demo_worker(), &units, &CoordinatorOptions::new(2)).unwrap();
    // Typed errors count as executed answers, are never retried, and leave
    // the other slots intact.
    assert_eq!(outcome.worker_restarts, 0, "typed errors must not respawn");
    assert!(outcome.results[0].is_ok());
    assert!(outcome.results[4].is_ok());
    assert!(matches!(
        outcome.results[1],
        Err(UnitFailure::Worker(WorkError::Failed { .. }))
    ));
    assert!(matches!(
        outcome.results[2],
        Err(UnitFailure::Worker(WorkError::UnknownJob { .. }))
    ));
    match &outcome.results[3] {
        Err(UnitFailure::Worker(WorkError::Failed { detail })) => {
            assert!(detail.contains("demo panic requested"), "got: {detail}")
        }
        other => panic!("expected contained panic, got {other:?}"),
    }
    assert_eq!(outcome.failures().len(), 3);
}

#[test]
fn a_crashed_workers_unit_is_retried_on_a_fresh_worker() {
    let dir = scratch_dir("crash-retry");
    fs::create_dir_all(&dir).unwrap();
    let sentinel = dir.join("crash-once.sentinel");
    // The first unit any worker touches aborts that worker (once, ever,
    // thanks to the create-new sentinel); the retry then succeeds.
    let command = demo_worker().env(CRASH_ONCE_ENV, sentinel.to_str().unwrap());
    let units: Vec<WorkUnit> = (0..6).map(|i| echo_unit(i, &format!("v{i}"))).collect();
    let outcome = run_units(&command, &units, &CoordinatorOptions::new(2)).unwrap();
    assert!(sentinel.exists(), "the injected crash must have fired");
    assert!(
        outcome.worker_restarts >= 1,
        "the crashed worker must have been replaced"
    );
    let payloads = outcome.into_payloads().expect("all units must recover");
    for (i, payload) in payloads.iter().enumerate() {
        assert_eq!(
            payload.get("value").and_then(JsonValue::as_str),
            Some(format!("v{i}").as_str())
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_timed_out_unit_is_killed_and_exhaustion_is_typed() {
    let units = vec![
        echo_unit(0, "fast"),
        WorkUnit::new(
            1,
            "demo",
            JsonValue::object()
                .with("mode", "sleep")
                .with("ms", 60_000u64)
                .with("value", "slow"),
        ),
    ];
    let mut options = CoordinatorOptions::new(1);
    options.unit_timeout = Duration::from_millis(200);
    options.max_attempts = 2;
    let outcome = run_units(&demo_worker(), &units, &options).unwrap();
    assert!(outcome.results[0].is_ok(), "the fast unit must complete");
    match &outcome.results[1] {
        Err(UnitFailure::TimedOut { attempts, .. }) => assert_eq!(*attempts, 2),
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(outcome.worker_restarts >= 1);
}

#[test]
fn a_dying_workers_stderr_tail_survives_into_the_typed_failure() {
    let units = vec![
        echo_unit(0, "ok"),
        WorkUnit::new(
            1,
            "demo",
            JsonValue::object()
                .with("mode", "stderr_crash")
                .with("lines", 12usize),
        ),
    ];
    let mut options = CoordinatorOptions::new(1);
    options.max_attempts = 2;
    let outcome = run_units(&demo_worker(), &units, &options).unwrap();
    assert!(outcome.results[0].is_ok());
    match &outcome.results[1] {
        Err(UnitFailure::Crashed {
            attempts,
            stderr_tail,
            ..
        }) => {
            assert_eq!(*attempts, 2);
            assert!(
                !stderr_tail.is_empty(),
                "the dying worker's stderr must be captured"
            );
            assert!(
                stderr_tail.len() <= 8,
                "the tail is bounded, got {} lines",
                stderr_tail.len()
            );
            assert_eq!(
                stderr_tail.last().map(String::as_str),
                Some("demo stderr line 11"),
                "the tail keeps the *last* lines: {stderr_tail:?}"
            );
            let rendered = outcome.results[1].as_ref().unwrap_err().to_string();
            assert!(
                rendered.contains("stderr tail"),
                "Display must surface the tail: {rendered}"
            );
        }
        other => panic!("expected Crashed with stderr tail, got {other:?}"),
    }
}

#[test]
fn nonexistent_worker_program_is_an_infrastructure_error() {
    let command = WorkerCommand::new("/definitely/not/a/real/binary");
    let units = vec![echo_unit(0, "x")];
    assert!(run_units(&command, &units, &CoordinatorOptions::new(1)).is_err());
}

#[test]
fn warm_cache_rerun_executes_zero_units() {
    let dir = scratch_dir("warm-cache");
    let units: Vec<WorkUnit> = (0..5).map(|i| echo_unit(i, &format!("v{i}"))).collect();

    let cold = {
        let mut options = CoordinatorOptions::new(2);
        options.cache = Some(ResultCache::open(&dir).unwrap());
        options.reuse_cached = true;
        run_units(&demo_worker(), &units, &options).unwrap()
    };
    assert_eq!((cold.executed, cold.cached), (5, 0));

    let warm = {
        let mut options = CoordinatorOptions::new(2);
        options.cache = Some(ResultCache::open(&dir).unwrap());
        options.reuse_cached = true;
        run_units(&demo_worker(), &units, &options).unwrap()
    };
    assert_eq!(
        (warm.executed, warm.cached),
        (0, 5),
        "a warm rerun must execute zero units"
    );
    assert_eq!(
        warm.into_payloads().unwrap(),
        cold.into_payloads().unwrap(),
        "cached payloads must be byte-for-byte the executed ones"
    );

    // Editing one cell's spec invalidates exactly that cell.
    let mut edited = units.clone();
    edited[2] = echo_unit(2, "edited");
    let partial = {
        let mut options = CoordinatorOptions::new(2);
        options.cache = Some(ResultCache::open(&dir).unwrap());
        options.reuse_cached = true;
        run_units(&demo_worker(), &edited, &options).unwrap()
    };
    assert_eq!(
        (partial.executed, partial.cached),
        (1, 4),
        "only the edited cell may re-execute"
    );
    assert_eq!(
        partial.results[2]
            .as_ref()
            .unwrap()
            .get("value")
            .and_then(JsonValue::as_str),
        Some("edited")
    );

    // The journal recorded the warm run as all-cached.
    let journal = fs::read_to_string(dir.join("journal.ndjson")).unwrap();
    assert!(journal.lines().count() >= 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn without_resume_the_cache_is_write_only() {
    let dir = scratch_dir("write-only");
    let units = vec![echo_unit(0, "x")];
    for round in 0..2 {
        let mut options = CoordinatorOptions::new(1);
        options.cache = Some(ResultCache::open(&dir).unwrap());
        options.reuse_cached = false;
        let outcome = run_units(&demo_worker(), &units, &options).unwrap();
        assert_eq!(
            (outcome.executed, outcome.cached),
            (1, 0),
            "round {round}: without --resume every unit re-executes"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
