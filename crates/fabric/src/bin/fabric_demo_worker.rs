//! A minimal fabric worker used by the coordinator's own integration
//! tests (`CARGO_BIN_EXE_fabric_demo_worker`): it exercises every failure
//! surface without dragging the bench crates in.
//!
//! Handled job: `demo`, with a spec of the form `{"mode": ...}`:
//!
//! * `{"mode":"echo","value":V}` — returns `{"value":V}`;
//! * `{"mode":"sleep","ms":N,"value":V}` — sleeps N ms, then echoes;
//! * `{"mode":"error"}` — returns a typed `Failed` error;
//! * `{"mode":"panic"}` — panics (the worker loop converts it to `Failed`);
//! * `{"mode":"stderr_crash","lines":N}` — writes N numbered lines to
//!   stderr, then aborts the process (exercises the coordinator's bounded
//!   stderr-tail capture);
//! * any other job kind — `UnknownJob`; any other spec — `BadSpec`.
//!
//! Crash injection is inherited from the worker loop: set
//! `SSLE_FABRIC_CRASH_ONCE=<sentinel path>` and the first unit handled
//! while the sentinel can be created aborts the process.

use std::io::Write as _;

use analysis::json::JsonValue;
use ssle_fabric::wire::WorkError;
use ssle_fabric::worker::worker_loop;

fn handle(job: &str, spec: &JsonValue) -> Result<JsonValue, WorkError> {
    if job != "demo" {
        return Err(WorkError::UnknownJob { job: job.into() });
    }
    match spec.get("mode").and_then(JsonValue::as_str) {
        Some("echo") => Ok(JsonValue::object().with(
            "value",
            spec.get("value").cloned().unwrap_or(JsonValue::Null),
        )),
        Some("sleep") => {
            let ms = spec.get("ms").and_then(JsonValue::as_f64).unwrap_or(0.0);
            std::thread::sleep(std::time::Duration::from_millis(ms.max(0.0) as u64));
            Ok(JsonValue::object().with(
                "value",
                spec.get("value").cloned().unwrap_or(JsonValue::Null),
            ))
        }
        Some("stderr_crash") => {
            let lines = spec.get("lines").and_then(JsonValue::as_f64).unwrap_or(1.0) as u64;
            let mut err = std::io::stderr();
            for i in 0..lines {
                let _ = writeln!(err, "demo stderr line {i}");
            }
            let _ = err.flush();
            std::process::abort();
        }
        Some("error") => Err(WorkError::Failed {
            detail: "demo error requested".into(),
        }),
        Some("panic") => panic!("demo panic requested"),
        other => Err(WorkError::BadSpec {
            detail: format!("unknown demo mode {other:?}"),
        }),
    }
}

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = worker_loop(stdin.lock(), stdout.lock(), handle) {
        let _ = writeln!(std::io::stderr(), "fabric_demo_worker: {e}");
        std::process::exit(2);
    }
}
