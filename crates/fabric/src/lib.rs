//! # ssle-fabric
//!
//! The experiment fabric: a coordinator/worker subprocess pool with a
//! content-addressed result cache and resumable runs (ROADMAP open item 1).
//!
//! The stabilization and hotloop grids are embarrassingly parallel, but
//! `population::BatchRunner` only scales one process.  This crate adds the
//! next rung without giving up the workspace's exactness guarantees:
//!
//! * [`wire`] — newline-delimited JSON [`WorkUnit`]/[`WorkResult`] messages
//!   (typed [`WorkError`]s, exact decimal strings for full-width u64s),
//!   serialized through `analysis::json` and proptest-round-tripped;
//! * [`worker`] — the stdin/stdout request/response loop a worker process
//!   runs (`stabilization_report --worker`), with panic containment and
//!   deterministic crash injection for tests;
//! * [`coordinator`] — spawns N workers, dispatches units, enforces
//!   per-unit timeouts, retries crashed/timed-out units on fresh workers
//!   (bounded, then typed partial failure), and merges results in unit
//!   submission order so downstream reports are **byte-identical** to the
//!   in-process path;
//! * [`cache`] — results keyed by the canonical content digest of the
//!   unit's exact spec JSON (`analysis::digest`), stored under
//!   `.fabric-cache/` with atomic writes and a progress journal, making
//!   `--resume` reruns execute only what changed.
//!
//! The fabric is job-agnostic: it moves opaque `JsonValue` payloads and
//! never interprets them, so byte-identity of a report assembled from
//! worker results reduces to the determinism of the job handler plus the
//! input-order merge — the same argument `run_map` makes for threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coordinator;
pub mod wire;
pub mod worker;

pub use cache::{read_journal, JournalRecord, ResultCache, RunJournal, DEFAULT_CACHE_DIR};
pub use coordinator::{run_units, CoordinatorOptions, FabricOutcome, UnitFailure, WorkerCommand};
pub use wire::{WireError, WorkError, WorkResult, WorkUnit, WIRE_SCHEMA};
pub use worker::{worker_loop, CRASH_ONCE_ENV};
