//! The coordinator: a subprocess pool with timeouts, bounded retries, a
//! content-addressed cache, and a deterministic merge.
//!
//! [`run_units`] dispatches a list of [`WorkUnit`]s across `N` worker
//! subprocesses (each speaking the [`worker`](crate::worker) line protocol)
//! and returns the results **in unit submission order**, regardless of
//! which worker finished what when.  This is the same contract as
//! `population::BatchRunner::run_map` one level up the stack: because the
//! merge order is the input order and every job handler is deterministic,
//! the assembled output is invariant under the worker count — the property
//! the report binaries pin down to byte-identity.
//!
//! ## Failure policy
//!
//! Failures split along the line drawn by the wire format:
//!
//! * a **typed job error** ([`WorkError`]) came from a live worker that
//!   deterministically could not run the unit — retrying would fail
//!   identically, so it is recorded as final and the worker is *reused*;
//! * a **vanished or wedged worker** (EOF, garbage on the pipe, or no
//!   answer within the per-unit timeout) proves nothing about the unit —
//!   the worker is killed and reaped, a fresh one is spawned, and the same
//!   unit is retried, up to [`CoordinatorOptions::max_attempts`] attempts;
//!   exhaustion yields a typed [`UnitFailure`] in that unit's slot while
//!   every other unit still completes (graceful partial results).
//!
//! ## Cache
//!
//! With a cache attached, every successful result is stored under the
//! unit's content key; with `reuse_cached` also set (`--resume`), cached
//! units are answered without dispatching anything — a warm rerun executes
//! zero units, and after editing one cell only that cell's key misses.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use analysis::json::JsonValue;

use crate::cache::{ResultCache, RunJournal};
use crate::wire::{WireError, WorkError, WorkResult, WorkUnit};

/// How to launch one worker subprocess.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A worker launched as `program` with no arguments.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// The current executable re-invoked with the given arguments — the
    /// idiom the report binaries use for `--worker` self-spawning.
    pub fn current_exe(args: &[&str]) -> Result<Self, WireError> {
        let program = std::env::current_exe()
            .map_err(|e| WireError::new(format!("resolving current exe: {e}")))?;
        Ok(WorkerCommand::new(program).args(args))
    }

    /// Appends one argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Appends several arguments.
    pub fn args(mut self, args: &[&str]) -> Self {
        self.args.extend(args.iter().map(|s| s.to_string()));
        self
    }

    /// Sets an environment variable in the worker's environment.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    fn spawn(&self) -> Result<Child, WireError> {
        let mut command = Command::new(&self.program);
        command
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // Worker stderr is teed: forwarded to the operator's terminal
            // line-by-line AND kept in a bounded tail, so a crashed
            // worker's last words survive into the typed failure instead
            // of scrolling away (they used to be inherit-only and lost).
            .stderr(Stdio::piped());
        for (k, v) in &self.envs {
            command.env(k, v);
        }
        command
            .spawn()
            .map_err(|e| WireError::new(format!("spawning {}: {e}", self.program.display())))
    }
}

/// Number of trailing stderr lines retained per worker.
const STDERR_TAIL_LINES: usize = 8;

/// Bounded tail of one worker's stderr, shared with its reader thread.
#[derive(Clone, Debug, Default)]
struct StderrTail(Arc<Mutex<VecDeque<String>>>);

impl StderrTail {
    fn push(&self, line: String) {
        let mut tail = self.0.lock().unwrap_or_else(|p| p.into_inner());
        if tail.len() == STDERR_TAIL_LINES {
            tail.pop_front();
        }
        tail.push_back(line);
    }

    fn snapshot(&self) -> Vec<String> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// Knobs for one coordinator run.
#[derive(Debug)]
pub struct CoordinatorOptions {
    /// Number of worker subprocesses (at least 1; 0 is rejected upstream).
    pub workers: usize,
    /// Per-unit wall-clock budget; a worker silent past this is killed and
    /// the unit retried elsewhere.
    pub unit_timeout: Duration,
    /// Total attempts per unit (first try + retries) before recording a
    /// typed partial failure.  At least 1.
    pub max_attempts: usize,
    /// Where to store successful results (and the run journal); `None`
    /// disables caching entirely.
    pub cache: Option<ResultCache>,
    /// If set (`--resume`), cached results are reused without dispatching;
    /// if unset, the cache is write-only this run.
    pub reuse_cached: bool,
}

impl CoordinatorOptions {
    /// Defaults: the given pool size, a generous 10-minute unit timeout,
    /// 3 attempts, no cache.
    pub fn new(workers: usize) -> Self {
        CoordinatorOptions {
            workers: workers.max(1),
            unit_timeout: Duration::from_secs(600),
            max_attempts: 3,
            cache: None,
            reuse_cached: false,
        }
    }
}

/// Why one unit's slot holds no result.  The distinction mirrors the retry
/// policy: [`UnitFailure::Worker`] is a deterministic job-level refusal
/// (never retried); the other two exhausted their retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitFailure {
    /// A live worker returned a typed error for this unit.
    Worker(WorkError),
    /// Every attempt ended with the worker dying (or corrupting the pipe)
    /// before answering.
    Crashed {
        /// Attempts consumed.
        attempts: usize,
        /// The last observed failure.
        detail: String,
        /// The last lines the dying worker wrote to stderr (up to a
        /// bounded tail), oldest first.  Empty if it died silently.
        stderr_tail: Vec<String>,
    },
    /// Every attempt ran past the per-unit timeout.
    TimedOut {
        /// Attempts consumed.
        attempts: usize,
        /// The per-attempt budget that was exceeded.
        timeout: Duration,
    },
}

impl std::fmt::Display for UnitFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitFailure::Worker(e) => write!(f, "worker refused unit: {e}"),
            UnitFailure::Crashed {
                attempts,
                detail,
                stderr_tail,
            } => {
                write!(
                    f,
                    "worker crashed on all {attempts} attempts (last: {detail})"
                )?;
                if !stderr_tail.is_empty() {
                    write!(f, "; stderr tail: {}", stderr_tail.join(" | "))?;
                }
                Ok(())
            }
            UnitFailure::TimedOut { attempts, timeout } => write!(
                f,
                "unit exceeded {}s on all {attempts} attempts",
                timeout.as_secs_f64()
            ),
        }
    }
}

/// The outcome of one coordinator run.
#[derive(Debug)]
pub struct FabricOutcome {
    /// One slot per input unit, **in input order**: the job's result
    /// payload, or a typed failure.
    pub results: Vec<Result<JsonValue, UnitFailure>>,
    /// Units actually executed by a worker this run.
    pub executed: usize,
    /// Units answered from the cache without dispatch.
    pub cached: usize,
    /// Fresh workers spawned beyond the initial pool (crash/timeout
    /// replacements).
    pub worker_restarts: usize,
}

impl FabricOutcome {
    /// The failed slots, as `(unit index, failure)` pairs.
    pub fn failures(&self) -> Vec<(usize, &UnitFailure)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
            .collect()
    }

    /// The payloads in input order; `Err` names the first failed unit if
    /// any slot failed.
    pub fn into_payloads(self) -> Result<Vec<JsonValue>, (usize, UnitFailure)> {
        let mut payloads = Vec::with_capacity(self.results.len());
        for (i, slot) in self.results.into_iter().enumerate() {
            match slot {
                Ok(p) => payloads.push(p),
                Err(e) => return Err((i, e)),
            }
        }
        Ok(payloads)
    }
}

/// A live worker subprocess: its stdin plus a channel draining its stdout
/// through a dedicated reader thread (so the manager can `recv_timeout`
/// instead of blocking forever on a wedged pipe).
struct LiveWorker {
    child: Child,
    stdin: std::process::ChildStdin,
    lines: Receiver<std::io::Result<String>>,
    stderr_tail: StderrTail,
    stderr_thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveWorker {
    fn spawn(command: &WorkerCommand) -> Result<Self, WireError> {
        let mut child = command.spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| WireError::new("worker stdin not piped"))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| WireError::new("worker stdout not piped"))?;
        let stderr = child
            .stderr
            .take()
            .ok_or_else(|| WireError::new("worker stderr not piped"))?;
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                if tx.send(line).is_err() {
                    break; // manager gone; stop draining
                }
            }
        });
        let stderr_tail = StderrTail::default();
        let tail = stderr_tail.clone();
        let stderr_thread = std::thread::spawn(move || {
            // Tee: every line still reaches the operator's terminal (the
            // old `Stdio::inherit()` behaviour), and the tail keeps the
            // last few for crash forensics.
            for line in BufReader::new(stderr).lines().map_while(|l| l.ok()) {
                eprintln!("{line}");
                tail.push(line);
            }
        });
        Ok(LiveWorker {
            child,
            stdin,
            lines: rx,
            stderr_tail,
            stderr_thread: Some(stderr_thread),
        })
    }

    /// Kills and reaps the worker (no zombies), then joins the stderr tee
    /// so the tail holds everything the worker wrote before dying.  The
    /// join is bounded: reaping the child closes the pipe's write end, so
    /// the tee hits EOF.
    fn dispose(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(handle) = self.stderr_thread.take() {
            let _ = handle.join();
        }
    }
}

/// What one dispatch attempt produced.
enum Attempt {
    /// A parsed, seq-matched result from the worker (typed errors
    /// included — they are final).
    Answered(WorkResult),
    /// The worker died or corrupted the pipe; it has been disposed.  The
    /// stderr tail it left behind rides along for the failure report.
    Crashed {
        detail: String,
        stderr_tail: Vec<String>,
    },
    /// The worker exceeded the unit timeout; it has been disposed.
    TimedOut,
}

/// Snapshots the worker's stderr tail, disposes it, and builds the crash
/// attempt.
fn crash(worker_slot: &mut Option<LiveWorker>, detail: String) -> Attempt {
    let mut stderr_tail = Vec::new();
    if let Some(w) = worker_slot.take() {
        // Snapshot only after dispose: disposal joins the tee thread, so
        // the tail has drained everything the worker managed to write.
        let tail = w.stderr_tail.clone();
        w.dispose();
        stderr_tail = tail.snapshot();
    }
    Attempt::Crashed {
        detail,
        stderr_tail,
    }
}

/// Sends one unit to a live worker and waits for its answer.  On
/// `Crashed`/`TimedOut` the worker has already been killed and reaped and
/// `worker` is `None`.
fn dispatch(worker_slot: &mut Option<LiveWorker>, unit: &WorkUnit, timeout: Duration) -> Attempt {
    let worker = worker_slot.as_mut().expect("dispatch needs a live worker");
    if let Err(e) = writeln!(worker.stdin, "{}", unit.to_line()).and_then(|_| worker.stdin.flush())
    {
        return crash(worker_slot, format!("writing unit to worker: {e}"));
    }
    match worker.lines.recv_timeout(timeout) {
        Ok(Ok(line)) => match WorkResult::from_line(&line) {
            Ok(result) if result.seq == unit.seq => Attempt::Answered(result),
            Ok(result) => crash(
                worker_slot,
                format!(
                    "worker answered seq {} for unit seq {}",
                    result.seq, unit.seq
                ),
            ),
            Err(e) => crash(worker_slot, format!("unparsable worker output: {e}")),
        },
        Ok(Err(e)) => crash(worker_slot, format!("reading worker output: {e}")),
        Err(RecvTimeoutError::Disconnected) => {
            crash(worker_slot, "worker exited before answering".to_string())
        }
        Err(RecvTimeoutError::Timeout) => {
            if let Some(w) = worker_slot.take() {
                w.dispose();
            }
            Attempt::TimedOut
        }
    }
}

/// Runs `units` across a pool of worker subprocesses and merges the results
/// in input order.  See the module docs for the failure and cache policy.
///
/// Returns `Err` only on coordinator-side infrastructure failures (cannot
/// spawn the very first worker, cannot write the cache); per-unit problems
/// are typed [`UnitFailure`]s inside the outcome.
pub fn run_units(
    command: &WorkerCommand,
    units: &[WorkUnit],
    options: &CoordinatorOptions,
) -> Result<FabricOutcome, WireError> {
    let mut slots: Vec<Option<Result<JsonValue, UnitFailure>>> = vec![None; units.len()];
    let mut journal = match &options.cache {
        Some(cache) => Some(RunJournal::start(
            cache.dir(),
            units.len(),
            options.workers,
        )?),
        None => None,
    };

    // Resolve cache hits up front; only misses are dispatched.
    let mut pending: Vec<usize> = Vec::new();
    let mut cached = 0usize;
    for (i, unit) in units.iter().enumerate() {
        let lookup = options
            .reuse_cached
            .then_some(options.cache.as_ref())
            .flatten();
        let hit = lookup.and_then(|c| c.load(&unit.cache_key(), &unit.job));
        if lookup.is_some() {
            if hit.is_some() {
                ssle_telemetry::metrics::well_known::FABRIC_CACHE_HITS.incr();
            } else {
                ssle_telemetry::metrics::well_known::FABRIC_CACHE_MISSES.incr();
            }
        }
        match hit {
            Some(payload) => {
                if let Some(j) = journal.as_mut() {
                    j.unit(&unit.cache_key(), "cached")?;
                }
                slots[i] = Some(Ok(payload));
                cached += 1;
            }
            None => pending.push(i),
        }
    }

    let executed = AtomicUsize::new(0);
    let restarts = AtomicUsize::new(0);
    let journal = Mutex::new(journal);
    let queue = Mutex::new(pending.iter().copied().collect::<VecDeque<usize>>());
    let done = Mutex::new(Vec::<(usize, Result<JsonValue, UnitFailure>)>::new());
    let pool = options.workers.min(pending.len().max(1));

    if !pending.is_empty() {
        // Fail fast if workers cannot be launched at all, rather than
        // letting every manager thread discover it independently.
        LiveWorker::spawn(command)?.dispose();

        let run_start = Instant::now();
        std::thread::scope(|scope| {
            // The closures are `move` only to capture their manager index;
            // everything shared is re-captured by reference here.
            let (queue, done, journal) = (&queue, &done, &journal);
            let (executed, restarts) = (&executed, &restarts);
            for manager in 0..pool {
                scope.spawn(move || {
                    let mut worker: Option<LiveWorker> = None;
                    let mut units_run = 0u64;
                    loop {
                        let Some(idx) = queue.lock().unwrap().pop_front() else {
                            break;
                        };
                        // All units are enqueued before the pool starts, so
                        // pop time *is* this unit's queue wait.
                        ssle_telemetry::metrics::well_known::FABRIC_QUEUE_MICROS
                            .record(run_start.elapsed().as_micros() as u64);
                        let unit = &units[idx];
                        let unit_start = Instant::now();
                        let outcome = attempt_unit(
                            command,
                            manager,
                            &mut worker,
                            unit,
                            options,
                            executed,
                            restarts,
                        );
                        let unit_micros = unit_start.elapsed().as_micros() as u64;
                        ssle_telemetry::metrics::well_known::FABRIC_UNIT_MICROS.record(unit_micros);
                        units_run += 1;
                        if let (Ok(payload), Some(cache)) = (&outcome, &options.cache) {
                            // A store failure must not discard a computed
                            // result; it only costs a future cache hit.
                            let _ = cache.store(&unit.cache_key(), &unit.job, payload);
                        }
                        let status = if outcome.is_ok() {
                            "executed"
                        } else {
                            "failed"
                        };
                        if let Some(j) = journal.lock().unwrap().as_mut() {
                            let _ = j.unit(&unit.cache_key(), status);
                        }
                        if ssle_telemetry::enabled() {
                            ssle_telemetry::emit(
                                ssle_telemetry::Event::new("fabric_unit")
                                    .field("unit", idx)
                                    .field("status", status)
                                    .field("worker", manager)
                                    .wall_micros("latency", unit_micros),
                            );
                        }
                        done.lock().unwrap().push((idx, outcome));
                    }
                    if let Some(w) = worker.take() {
                        w.dispose();
                    }
                    if ssle_telemetry::enabled() {
                        ssle_telemetry::emit(
                            ssle_telemetry::Event::new("fabric_worker")
                                .field("worker", manager)
                                .count("units", units_run),
                        );
                    }
                });
            }
        });
    }

    for (idx, outcome) in done.into_inner().unwrap() {
        slots[idx] = Some(outcome);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every unit slot filled"))
        .collect();
    let executed = executed.load(Ordering::SeqCst);
    let worker_restarts = restarts.load(Ordering::SeqCst);
    ssle_telemetry::metrics::well_known::FABRIC_EXECUTED.add(executed as u64);
    if ssle_telemetry::enabled() {
        ssle_telemetry::emit(
            ssle_telemetry::Event::new("fabric_summary")
                .count("executed", executed as u64)
                .count("cached", cached as u64)
                .count("worker_restarts", worker_restarts as u64)
                .field("units", units.len())
                .field("workers", options.workers),
        );
    }
    Ok(FabricOutcome {
        results,
        executed,
        cached,
        worker_restarts,
    })
}

/// Runs one unit to completion under the retry policy, managing the
/// caller's worker slot (respawning after crashes/timeouts).
fn attempt_unit(
    command: &WorkerCommand,
    manager: usize,
    worker: &mut Option<LiveWorker>,
    unit: &WorkUnit,
    options: &CoordinatorOptions,
    executed: &AtomicUsize,
    restarts: &AtomicUsize,
) -> Result<JsonValue, UnitFailure> {
    let max_attempts = options.max_attempts.max(1);
    let mut last_crash = String::new();
    let mut last_tail: Vec<String> = Vec::new();
    let mut timed_out = false;
    for attempt in 1..=max_attempts {
        if worker.is_none() {
            if attempt > 1 {
                restarts.fetch_add(1, Ordering::SeqCst);
                if ssle_telemetry::enabled() {
                    ssle_telemetry::metrics::well_known::FABRIC_RESPAWNS.incr();
                    let cause = if timed_out { "timeout" } else { "crash" };
                    let mut event = ssle_telemetry::Event::new("worker_respawn")
                        .field("worker", manager)
                        .field("cause", cause)
                        .field("attempt", attempt);
                    if !last_tail.is_empty() {
                        event = event.field("stderr_tail", last_tail.join(" | "));
                    }
                    ssle_telemetry::emit(event);
                }
            }
            match LiveWorker::spawn(command) {
                Ok(w) => *worker = Some(w),
                Err(e) => {
                    last_crash = format!("respawning worker: {e}");
                    continue;
                }
            }
        }
        match dispatch(worker, unit, options.unit_timeout) {
            Attempt::Answered(result) => {
                executed.fetch_add(1, Ordering::SeqCst);
                // Typed job errors are deterministic: final, no retry.
                return result.outcome.map_err(UnitFailure::Worker);
            }
            Attempt::Crashed {
                detail,
                stderr_tail,
            } => {
                timed_out = false;
                last_crash = detail;
                last_tail = stderr_tail;
            }
            Attempt::TimedOut => timed_out = true,
        }
    }
    if timed_out {
        Err(UnitFailure::TimedOut {
            attempts: max_attempts,
            timeout: options.unit_timeout,
        })
    } else {
        Err(UnitFailure::Crashed {
            attempts: max_attempts,
            detail: last_crash,
            stderr_tail: last_tail,
        })
    }
}
