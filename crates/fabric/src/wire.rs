//! The fabric wire format: newline-delimited JSON work units and results.
//!
//! A coordinator sends one [`WorkUnit`] per line on a worker's stdin and
//! reads one [`WorkResult`] per line from its stdout.  Everything is
//! serialized through `analysis::json` with the workspace's established
//! exactness conventions: full-width `u64` fields (the `seq` routing id)
//! travel as **exact decimal strings**, because JSON numbers are `f64` and
//! silently round values ≥ 2⁵³; job payloads (`spec`) and result payloads
//! are opaque [`JsonValue`]s owned by the job layer, so the fabric never
//! re-encodes (and can never corrupt) what a job put on the wire.
//!
//! Failures are **typed** ([`WorkError`]): a worker that cannot run a unit
//! says *why* in a machine-readable way, and the coordinator's retry policy
//! keys off the type — a deterministic job-level error (unknown job, bad
//! spec, schema mismatch, handler failure) is final, while a vanished or
//! wedged worker (which never produces a `WorkResult` at all) is retried on
//! a fresh process.
//!
//! The unit's **cache key** ([`WorkUnit::cache_key`]) is the content digest
//! of its `(wire schema, job, spec)` triple — deliberately *excluding*
//! `seq`, which only routes a unit within one run and must not fragment the
//! cache across runs.

use analysis::digest::content_digest;
use analysis::json::JsonValue;

/// Version tag carried by every wire message and cache entry.  Bump on any
/// incompatible change to the formats in this module; readers reject
/// mismatching tags instead of guessing.
pub const WIRE_SCHEMA: &str = "ssle-fabric/v1";

/// One unit of work: an opaque job-specific spec plus routing metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkUnit {
    /// Routing id within one run: results are matched back to units by
    /// `seq`, and the coordinator's merge order is the unit submission
    /// order.  Not part of the cache key.
    pub seq: u64,
    /// The job kind, e.g. `stabilization-cell` — selects the worker-side
    /// handler.
    pub job: String,
    /// The job-specific payload, owned by the job layer.  Everything that
    /// affects the result must be in here (it is the cache-key payload);
    /// anything that does not (thread counts, timeouts) must not be.
    pub spec: JsonValue,
}

impl WorkUnit {
    /// Creates a work unit.
    pub fn new(seq: u64, job: impl Into<String>, spec: JsonValue) -> Self {
        WorkUnit {
            seq,
            job: job.into(),
            spec,
        }
    }

    /// The unit's content address: the canonical digest of its wire schema,
    /// job kind and exact spec (see [`analysis::digest::content_digest`]).
    /// `seq` is excluded — the same cell submitted as unit 3 of one run and
    /// unit 7 of another must hit the same cache entry.
    pub fn cache_key(&self) -> String {
        content_digest(
            &JsonValue::object()
                .with("schema", WIRE_SCHEMA)
                .with("job", self.job.as_str())
                .with("spec", self.spec.clone()),
        )
    }

    /// Serializes to the wire JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            // Full-width u64: exact decimal string, like every other
            // full-width integer in the workspace's JSON artifacts.
            .with("seq", self.seq.to_string().as_str())
            .with("job", self.job.as_str())
            .with("spec", self.spec.clone())
    }

    /// Rebuilds a unit from its wire JSON, rejecting wrong schema tags and
    /// malformed fields instead of guessing.
    pub fn from_json(json: &JsonValue) -> Result<Self, WireError> {
        expect_schema(json)?;
        Ok(WorkUnit {
            seq: seq_of(json)?,
            job: json
                .get("job")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| WireError::new("work unit without a job field"))?
                .to_string(),
            spec: json
                .get("spec")
                .cloned()
                .ok_or_else(|| WireError::new("work unit without a spec field"))?,
        })
    }

    /// The single-line wire encoding (compact JSON; the emitter never
    /// produces raw newlines — they are escaped inside strings).
    pub fn to_line(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Parses one wire line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let json = JsonValue::parse(line.trim())
            .map_err(|e| WireError::new(format!("work unit line does not parse: {e}")))?;
        Self::from_json(&json)
    }
}

/// Why a worker could not produce a result for a unit.  All variants are
/// **deterministic** job-level failures: retrying the same unit on a fresh
/// worker would fail identically, so the coordinator records them as final
/// (unlike a crash or timeout, which never yields a `WorkResult` at all and
/// *is* retried).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkError {
    /// The worker has no handler for the unit's job kind.
    UnknownJob {
        /// The unhandled job kind.
        job: String,
    },
    /// The spec payload is malformed for this job kind.
    BadSpec {
        /// Human-readable description of the first problem found.
        detail: String,
    },
    /// The spec embeds a job-schema version this worker does not produce
    /// (e.g. a `stabilization-bench/v2` unit sent to a v3 worker).
    SchemaMismatch {
        /// The version the unit asked for.
        requested: String,
        /// The version this worker produces.
        supported: String,
    },
    /// The handler started but failed (including a caught panic).
    Failed {
        /// Human-readable failure description.
        detail: String,
    },
}

impl WorkError {
    /// The machine-readable kind tag used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkError::UnknownJob { .. } => "unknown-job",
            WorkError::BadSpec { .. } => "bad-spec",
            WorkError::SchemaMismatch { .. } => "schema-mismatch",
            WorkError::Failed { .. } => "failed",
        }
    }

    /// Serializes to the wire JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        let obj = JsonValue::object().with("kind", self.kind());
        match self {
            WorkError::UnknownJob { job } => obj.with("job", job.as_str()),
            WorkError::BadSpec { detail } => obj.with("detail", detail.as_str()),
            WorkError::SchemaMismatch {
                requested,
                supported,
            } => obj
                .with("requested", requested.as_str())
                .with("supported", supported.as_str()),
            WorkError::Failed { detail } => obj.with("detail", detail.as_str()),
        }
    }

    /// Rebuilds a typed error from its wire JSON.
    pub fn from_json(json: &JsonValue) -> Result<Self, WireError> {
        let field = |name: &str| {
            json.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| WireError::new(format!("work error without a {name} field")))
        };
        match json.get("kind").and_then(JsonValue::as_str) {
            Some("unknown-job") => Ok(WorkError::UnknownJob { job: field("job")? }),
            Some("bad-spec") => Ok(WorkError::BadSpec {
                detail: field("detail")?,
            }),
            Some("schema-mismatch") => Ok(WorkError::SchemaMismatch {
                requested: field("requested")?,
                supported: field("supported")?,
            }),
            Some("failed") => Ok(WorkError::Failed {
                detail: field("detail")?,
            }),
            other => Err(WireError::new(format!(
                "work error with unknown kind {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for WorkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkError::UnknownJob { job } => write!(f, "no handler for job {job:?}"),
            WorkError::BadSpec { detail } => write!(f, "malformed spec: {detail}"),
            WorkError::SchemaMismatch {
                requested,
                supported,
            } => write!(
                f,
                "job schema mismatch: unit wants {requested:?}, worker produces {supported:?}"
            ),
            WorkError::Failed { detail } => write!(f, "handler failed: {detail}"),
        }
    }
}

impl std::error::Error for WorkError {}

/// A worker's answer for one unit: the job's result payload, or a typed
/// error.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkResult {
    /// Echo of the unit's routing id.
    pub seq: u64,
    /// The job-level outcome.
    pub outcome: Result<JsonValue, WorkError>,
}

impl WorkResult {
    /// A successful result.
    pub fn ok(seq: u64, payload: JsonValue) -> Self {
        WorkResult {
            seq,
            outcome: Ok(payload),
        }
    }

    /// A typed failure.
    pub fn err(seq: u64, error: WorkError) -> Self {
        WorkResult {
            seq,
            outcome: Err(error),
        }
    }

    /// Serializes to the wire JSON object (`ok` and `err` are mutually
    /// exclusive keys).
    pub fn to_json_value(&self) -> JsonValue {
        let obj = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("seq", self.seq.to_string().as_str());
        match &self.outcome {
            Ok(payload) => obj.with("ok", payload.clone()),
            Err(error) => obj.with("err", error.to_json_value()),
        }
    }

    /// Rebuilds a result from its wire JSON.
    pub fn from_json(json: &JsonValue) -> Result<Self, WireError> {
        expect_schema(json)?;
        let seq = seq_of(json)?;
        match (json.get("ok"), json.get("err")) {
            (Some(payload), None) => Ok(WorkResult::ok(seq, payload.clone())),
            (None, Some(err)) => Ok(WorkResult::err(seq, WorkError::from_json(err)?)),
            _ => Err(WireError::new(
                "work result must carry exactly one of ok/err",
            )),
        }
    }

    /// The single-line wire encoding.
    pub fn to_line(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Parses one wire line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let json = JsonValue::parse(line.trim())
            .map_err(|e| WireError::new(format!("work result line does not parse: {e}")))?;
        Self::from_json(&json)
    }
}

/// A malformed wire message (bad JSON, wrong schema tag, missing field).
/// Distinct from [`WorkError`]: a `WireError` means the *transport* broke —
/// the coordinator treats it like a crashed worker, not like a job failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Creates a wire error.
    pub fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

/// Checks the wire schema tag of a message.
fn expect_schema(json: &JsonValue) -> Result<(), WireError> {
    match json.get("schema").and_then(JsonValue::as_str) {
        Some(WIRE_SCHEMA) => Ok(()),
        other => Err(WireError::new(format!(
            "wire message schema {other:?} (want {WIRE_SCHEMA:?})"
        ))),
    }
}

/// Parses the exact decimal-string `seq` field.
fn seq_of(json: &JsonValue) -> Result<u64, WireError> {
    json.get("seq")
        .and_then(JsonValue::as_str)
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| WireError::new("seq missing or not an exact u64 decimal string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trips_with_a_full_width_seq() {
        let unit = WorkUnit::new(
            u64::MAX - 3,
            "stabilization-cell",
            JsonValue::object().with("n", 64usize).with("quick", true),
        );
        let line = unit.to_line();
        assert!(!line.contains('\n'), "wire lines must be single lines");
        assert_eq!(WorkUnit::from_line(&line).unwrap(), unit);
    }

    #[test]
    fn cache_key_ignores_seq_but_not_spec() {
        let spec = JsonValue::object().with("n", 64usize);
        let a = WorkUnit::new(0, "j", spec.clone());
        let b = WorkUnit::new(17, "j", spec.clone());
        let c = WorkUnit::new(0, "j", JsonValue::object().with("n", 65usize));
        let d = WorkUnit::new(0, "k", spec);
        assert_eq!(a.cache_key(), b.cache_key(), "seq must not split the cache");
        assert_ne!(a.cache_key(), c.cache_key(), "spec is the content");
        assert_ne!(a.cache_key(), d.cache_key(), "job kind is the content");
    }

    #[test]
    fn cache_key_is_insertion_order_insensitive() {
        let a = WorkUnit::new(0, "j", JsonValue::object().with("x", 1u64).with("y", 2u64));
        let b = WorkUnit::new(0, "j", JsonValue::object().with("y", 2u64).with("x", 1u64));
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn results_round_trip_in_both_outcomes() {
        let ok = WorkResult::ok(7, JsonValue::object().with("steps", 12.0));
        assert_eq!(WorkResult::from_line(&ok.to_line()).unwrap(), ok);
        for error in [
            WorkError::UnknownJob { job: "x".into() },
            WorkError::BadSpec {
                detail: "n missing".into(),
            },
            WorkError::SchemaMismatch {
                requested: "stabilization-bench/v2".into(),
                supported: "stabilization-bench/v3".into(),
            },
            WorkError::Failed {
                detail: "panicked: oh no".into(),
            },
        ] {
            let err = WorkResult::err(u64::MAX, error.clone());
            let round = WorkResult::from_line(&err.to_line()).unwrap();
            assert_eq!(round, err);
            assert_eq!(round.outcome, Err(error));
        }
    }

    #[test]
    fn malformed_messages_are_rejected_not_guessed() {
        // Wrong schema tag.
        let wrong = JsonValue::object()
            .with("schema", "ssle-fabric/v0")
            .with("seq", "1")
            .with("job", "j")
            .with("spec", JsonValue::Null);
        assert!(WorkUnit::from_json(&wrong).is_err());
        // seq as a JSON number instead of the exact decimal string.
        let num_seq = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("seq", 1.0)
            .with("job", "j")
            .with("spec", JsonValue::Null);
        assert!(WorkUnit::from_json(&num_seq).is_err());
        // A result with both ok and err.
        let both = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("seq", "1")
            .with("ok", JsonValue::Null)
            .with(
                "err",
                WorkError::UnknownJob { job: "j".into() }.to_json_value(),
            );
        assert!(WorkResult::from_json(&both).is_err());
        // An unknown error kind.
        let unknown = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("seq", "1")
            .with("err", JsonValue::object().with("kind", "novel"));
        assert!(WorkResult::from_json(&unknown).is_err());
        // Not JSON at all.
        assert!(WorkUnit::from_line("not json").is_err());
    }
}
