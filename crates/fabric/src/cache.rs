//! The content-addressed result cache and the run journal.
//!
//! Successful work-unit results are stored as one JSON file per unit under
//! a cache directory (`.fabric-cache/` by default, gitignored), named by
//! the unit's [`cache_key`](crate::wire::WorkUnit::cache_key) — the
//! canonical digest of its `(schema, job, spec)` content.  Because the key
//! is derived from the *exact* spec JSON, editing any semantic detail of a
//! cell (a size, a trial count, a seed) changes the key and only that cell
//! re-executes; run-local knobs (thread counts, timeouts) are deliberately
//! outside the spec so they cannot fragment the cache.
//!
//! Writes are atomic: the entry is written to `<key>.partial.json` and then
//! renamed to `<key>.json`, so a reader never observes a torn entry and an
//! interrupted run leaves at most ignorable `*.partial.json` droppings
//! (also gitignored).  Each stored entry embeds the wire schema, its own
//! key, and the job kind; [`ResultCache::load`] re-verifies all three and
//! treats any mismatch as a miss — a stale or corrupted entry degrades to
//! recomputation, never to a wrong result.
//!
//! The [`RunJournal`] is an append-only newline-JSON log of coordinator
//! progress (run manifest, then one line per finished unit).  It exists for
//! *observability* of interrupted runs; resumability itself rests on the
//! cache, which is authoritative.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use analysis::json::JsonValue;

use crate::wire::{WireError, WIRE_SCHEMA};

/// The default cache directory name, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".fabric-cache";

/// A directory of content-addressed work-unit results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WireError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| WireError::new(format!("creating cache dir {}: {e}", dir.display())))?;
        Ok(ResultCache { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final path of an entry.
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the result payload stored under `key`, or `None` if the entry
    /// is absent, unreadable, or fails its embedded self-checks (schema
    /// tag, key echo, parsability) — all of which degrade to a cache miss.
    pub fn load(&self, key: &str, job: &str) -> Option<JsonValue> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let entry = JsonValue::parse(&text).ok()?;
        if entry.get("schema").and_then(JsonValue::as_str) != Some(WIRE_SCHEMA) {
            return None;
        }
        if entry.get("key").and_then(JsonValue::as_str) != Some(key) {
            return None;
        }
        if entry.get("job").and_then(JsonValue::as_str) != Some(job) {
            return None;
        }
        entry.get("result").cloned()
    }

    /// Stores a successful result payload under `key`, atomically
    /// (write-to-partial then rename).
    pub fn store(&self, key: &str, job: &str, result: &JsonValue) -> Result<(), WireError> {
        let entry = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("key", key)
            .with("job", job)
            .with("result", result.clone());
        let partial = self.dir.join(format!("{key}.partial.json"));
        let final_path = self.entry_path(key);
        fs::write(&partial, entry.to_json() + "\n")
            .map_err(|e| WireError::new(format!("writing {}: {e}", partial.display())))?;
        fs::rename(&partial, &final_path)
            .map_err(|e| WireError::new(format!("renaming into {}: {e}", final_path.display())))
    }
}

/// An append-only progress log for one coordinator run, stored next to the
/// cache entries.  Lines are `ssle-telemetry/v1` events with a
/// journal-local sequence counter (the journal is a *sidecar* stream — it
/// never passes through the process-global telemetry sink, so it exists
/// whether or not telemetry is enabled):
///
/// * `stream_start` — schema marker (producer `fabric-journal`);
/// * `journal_start` — run manifest (unit and worker counts);
/// * `journal_unit` — one per finished unit
///   (`status: "executed"|"cached"|"failed"`), in completion order.
///
/// There is deliberately no `stream_end`: the journal's whole purpose is
/// observability of *interrupted* runs, and the telemetry validator treats
/// an endless stream as a valid truncated prefix.  Advisory only:
/// `--resume` consults the cache, not the journal.  Journals written by the
/// legacy `ssle-fabric/v1` encoding are still readable via
/// [`read_journal`].
#[derive(Debug)]
pub struct RunJournal {
    file: fs::File,
    seq: u64,
}

impl RunJournal {
    /// Opens the journal file (truncating any previous run's log) and
    /// writes the stream header plus the run manifest.
    pub fn start(dir: &Path, units: usize, workers: usize) -> Result<Self, WireError> {
        let path = dir.join("journal.ndjson");
        let file = fs::File::create(&path)
            .map_err(|e| WireError::new(format!("creating {}: {e}", path.display())))?;
        let mut journal = RunJournal { file, seq: 0 };
        journal.append(
            ssle_telemetry::Event::new("stream_start")
                .field("schema", ssle_telemetry::SCHEMA)
                .field("producer", "fabric-journal"),
        )?;
        journal.append(
            ssle_telemetry::Event::new("journal_start")
                .count("units", units as u64)
                .field("workers", workers),
        )?;
        Ok(journal)
    }

    /// Records one finished unit.
    pub fn unit(&mut self, key: &str, status: &str) -> Result<(), WireError> {
        self.append(
            ssle_telemetry::Event::new("journal_unit")
                .field("key", key)
                .field("status", status),
        )
    }

    fn append(&mut self, event: ssle_telemetry::Event) -> Result<(), WireError> {
        let line = event.to_line(self.seq);
        self.seq += 1;
        writeln!(self.file, "{line}")
            .map_err(|e| WireError::new(format!("appending to journal: {e}")))?;
        self.file
            .flush()
            .map_err(|e| WireError::new(format!("flushing journal: {e}")))
    }
}

/// One parsed journal record (encoding-independent view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The run manifest.
    Manifest {
        /// Total units of the run.
        units: u64,
        /// Worker pool size.
        workers: u64,
    },
    /// One finished unit.
    Unit {
        /// The unit's content-addressed cache key.
        key: String,
        /// `"executed"`, `"cached"` or `"failed"`.
        status: String,
    },
}

/// Reads a `journal.ndjson` written by either encoding: the current
/// `ssle-telemetry/v1` events (`stream_start`/`journal_start`/
/// `journal_unit`) or the legacy `ssle-fabric/v1` lines
/// (`{"event":"start",...}` / `{"event":"unit",...}` with plain-number
/// counts).
///
/// # Errors
///
/// Fails on unreadable files, unparsable lines, or unknown event kinds —
/// a journal is small and fully machine-written, so leniency would only
/// hide corruption.
pub fn read_journal(path: &Path) -> Result<Vec<JournalRecord>, WireError> {
    let text = fs::read_to_string(path)
        .map_err(|e| WireError::new(format!("reading {}: {e}", path.display())))?;
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        let value = JsonValue::parse(line)
            .map_err(|e| WireError::new(format!("journal line {lineno}: {e}")))?;
        let kind = value
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| WireError::new(format!("journal line {lineno}: no event kind")))?;
        // u64s travel as decimal strings in the telemetry encoding and as
        // plain numbers in the legacy one; accept both.
        let count = |key: &str| {
            value
                .get(key)
                .and_then(|v| {
                    v.as_str()
                        .and_then(|s| s.parse::<u64>().ok())
                        .or_else(|| v.as_f64().map(|f| f as u64))
                })
                .ok_or_else(|| {
                    WireError::new(format!("journal line {lineno}: missing count {key:?}"))
                })
        };
        match kind {
            "stream_start" => {} // telemetry-encoding header; no payload
            "journal_start" | "start" => records.push(JournalRecord::Manifest {
                units: count("units")?,
                workers: count("workers")?,
            }),
            "journal_unit" | "unit" => {
                let field = |key: &str| {
                    value
                        .get(key)
                        .and_then(JsonValue::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            WireError::new(format!("journal line {lineno}: missing {key:?}"))
                        })
                };
                records.push(JournalRecord::Unit {
                    key: field("key")?,
                    status: field("status")?,
                });
            }
            other => {
                return Err(WireError::new(format!(
                    "journal line {lineno}: unknown event kind {other:?}"
                )));
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ssle-fabric-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let result = JsonValue::object().with("steps", 12.0).with("ok", true);
        cache.store("deadbeef", "demo", &result).unwrap();
        assert_eq!(cache.load("deadbeef", "demo"), Some(result));
        // No partial droppings after a clean store.
        let partials = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains("partial")
            })
            .count();
        assert_eq!(partials, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_entries_degrade_to_misses() {
        let dir = scratch_dir("mismatch");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load("absent", "demo"), None);

        cache.store("k1", "demo", &JsonValue::Bool(true)).unwrap();
        // Wrong job for the same key: miss.
        assert_eq!(cache.load("k1", "other-job"), None);

        // Corrupted entry: miss, not an error.
        fs::write(dir.join("k2.json"), "{ not json").unwrap();
        assert_eq!(cache.load("k2", "demo"), None);

        // Entry whose embedded key disagrees with its filename (e.g. a
        // renamed file): miss.
        let forged = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("key", "something-else")
            .with("job", "demo")
            .with("result", JsonValue::Bool(true));
        fs::write(dir.join("k3.json"), forged.to_json()).unwrap();
        assert_eq!(cache.load("k3", "demo"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_writes_telemetry_events_and_reads_back() {
        let dir = scratch_dir("journal");
        fs::create_dir_all(&dir).unwrap();
        let mut journal = RunJournal::start(&dir, 3, 2).unwrap();
        journal.unit("k1", "executed").unwrap();
        journal.unit("k2", "cached").unwrap();
        drop(journal);
        let path = dir.join("journal.ndjson");
        let text = fs::read_to_string(&path).unwrap();

        // The journal is a schema-valid (truncated) telemetry stream.
        let stats = ssle_telemetry::validate_stream(&text).expect("journal validates");
        assert!(!stats.complete, "journals never write stream_end");
        assert_eq!(stats.count("journal_start"), 1);
        assert_eq!(stats.count("journal_unit"), 2);

        // And the compat reader folds it into records.
        let records = read_journal(&path).unwrap();
        assert_eq!(
            records,
            vec![
                JournalRecord::Manifest {
                    units: 3,
                    workers: 2
                },
                JournalRecord::Unit {
                    key: "k1".into(),
                    status: "executed".into()
                },
                JournalRecord::Unit {
                    key: "k2".into(),
                    status: "cached".into()
                },
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_journals_still_read() {
        let dir = scratch_dir("journal-legacy");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");
        // The pre-telemetry encoding: plain-number counts, no header.
        fs::write(
            &path,
            concat!(
                "{\"event\":\"start\",\"schema\":\"ssle-fabric/v1\",\"units\":2,\"workers\":1}\n",
                "{\"event\":\"unit\",\"key\":\"old\",\"status\":\"failed\"}\n",
            ),
        )
        .unwrap();
        let records = read_journal(&path).unwrap();
        assert_eq!(
            records,
            vec![
                JournalRecord::Manifest {
                    units: 2,
                    workers: 1
                },
                JournalRecord::Unit {
                    key: "old".into(),
                    status: "failed".into()
                },
            ]
        );

        // Corruption is an error, not a silent skip.
        fs::write(&path, "{\"event\":\"mystery\"}\n").unwrap();
        assert!(read_journal(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
