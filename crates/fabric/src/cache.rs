//! The content-addressed result cache and the run journal.
//!
//! Successful work-unit results are stored as one JSON file per unit under
//! a cache directory (`.fabric-cache/` by default, gitignored), named by
//! the unit's [`cache_key`](crate::wire::WorkUnit::cache_key) — the
//! canonical digest of its `(schema, job, spec)` content.  Because the key
//! is derived from the *exact* spec JSON, editing any semantic detail of a
//! cell (a size, a trial count, a seed) changes the key and only that cell
//! re-executes; run-local knobs (thread counts, timeouts) are deliberately
//! outside the spec so they cannot fragment the cache.
//!
//! Writes are atomic: the entry is written to `<key>.partial.json` and then
//! renamed to `<key>.json`, so a reader never observes a torn entry and an
//! interrupted run leaves at most ignorable `*.partial.json` droppings
//! (also gitignored).  Each stored entry embeds the wire schema, its own
//! key, and the job kind; [`ResultCache::load`] re-verifies all three and
//! treats any mismatch as a miss — a stale or corrupted entry degrades to
//! recomputation, never to a wrong result.
//!
//! The [`RunJournal`] is an append-only newline-JSON log of coordinator
//! progress (run manifest, then one line per finished unit).  It exists for
//! *observability* of interrupted runs; resumability itself rests on the
//! cache, which is authoritative.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use analysis::json::JsonValue;

use crate::wire::{WireError, WIRE_SCHEMA};

/// The default cache directory name, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".fabric-cache";

/// A directory of content-addressed work-unit results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WireError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| WireError::new(format!("creating cache dir {}: {e}", dir.display())))?;
        Ok(ResultCache { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final path of an entry.
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the result payload stored under `key`, or `None` if the entry
    /// is absent, unreadable, or fails its embedded self-checks (schema
    /// tag, key echo, parsability) — all of which degrade to a cache miss.
    pub fn load(&self, key: &str, job: &str) -> Option<JsonValue> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let entry = JsonValue::parse(&text).ok()?;
        if entry.get("schema").and_then(JsonValue::as_str) != Some(WIRE_SCHEMA) {
            return None;
        }
        if entry.get("key").and_then(JsonValue::as_str) != Some(key) {
            return None;
        }
        if entry.get("job").and_then(JsonValue::as_str) != Some(job) {
            return None;
        }
        entry.get("result").cloned()
    }

    /// Stores a successful result payload under `key`, atomically
    /// (write-to-partial then rename).
    pub fn store(&self, key: &str, job: &str, result: &JsonValue) -> Result<(), WireError> {
        let entry = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("key", key)
            .with("job", job)
            .with("result", result.clone());
        let partial = self.dir.join(format!("{key}.partial.json"));
        let final_path = self.entry_path(key);
        fs::write(&partial, entry.to_json() + "\n")
            .map_err(|e| WireError::new(format!("writing {}: {e}", partial.display())))?;
        fs::rename(&partial, &final_path)
            .map_err(|e| WireError::new(format!("renaming into {}: {e}", final_path.display())))
    }
}

/// An append-only progress log for one coordinator run, stored next to the
/// cache entries.  Lines are standalone JSON objects:
///
/// * `{"event":"start","schema":...,"units":N,"workers":W}` — run manifest;
/// * `{"event":"unit","key":...,"status":"executed"|"cached"|"failed"}` —
///   one per finished unit, in completion order.
///
/// Advisory only: `--resume` consults the cache, not the journal.
#[derive(Debug)]
pub struct RunJournal {
    file: fs::File,
}

impl RunJournal {
    /// Opens the journal file (truncating any previous run's log) and
    /// writes the run manifest line.
    pub fn start(dir: &Path, units: usize, workers: usize) -> Result<Self, WireError> {
        let path = dir.join("journal.ndjson");
        let file = fs::File::create(&path)
            .map_err(|e| WireError::new(format!("creating {}: {e}", path.display())))?;
        let mut journal = RunJournal { file };
        journal.append(
            JsonValue::object()
                .with("event", "start")
                .with("schema", WIRE_SCHEMA)
                .with("units", units)
                .with("workers", workers),
        )?;
        Ok(journal)
    }

    /// Records one finished unit.
    pub fn unit(&mut self, key: &str, status: &str) -> Result<(), WireError> {
        self.append(
            JsonValue::object()
                .with("event", "unit")
                .with("key", key)
                .with("status", status),
        )
    }

    fn append(&mut self, line: JsonValue) -> Result<(), WireError> {
        writeln!(self.file, "{}", line.to_json())
            .map_err(|e| WireError::new(format!("appending to journal: {e}")))?;
        self.file
            .flush()
            .map_err(|e| WireError::new(format!("flushing journal: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ssle-fabric-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let result = JsonValue::object().with("steps", 12.0).with("ok", true);
        cache.store("deadbeef", "demo", &result).unwrap();
        assert_eq!(cache.load("deadbeef", "demo"), Some(result));
        // No partial droppings after a clean store.
        let partials = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains("partial")
            })
            .count();
        assert_eq!(partials, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_entries_degrade_to_misses() {
        let dir = scratch_dir("mismatch");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load("absent", "demo"), None);

        cache.store("k1", "demo", &JsonValue::Bool(true)).unwrap();
        // Wrong job for the same key: miss.
        assert_eq!(cache.load("k1", "other-job"), None);

        // Corrupted entry: miss, not an error.
        fs::write(dir.join("k2.json"), "{ not json").unwrap();
        assert_eq!(cache.load("k2", "demo"), None);

        // Entry whose embedded key disagrees with its filename (e.g. a
        // renamed file): miss.
        let forged = JsonValue::object()
            .with("schema", WIRE_SCHEMA)
            .with("key", "something-else")
            .with("job", "demo")
            .with("result", JsonValue::Bool(true));
        fs::write(dir.join("k3.json"), forged.to_json()).unwrap();
        assert_eq!(cache.load("k3", "demo"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_records_manifest_and_units() {
        let dir = scratch_dir("journal");
        fs::create_dir_all(&dir).unwrap();
        let mut journal = RunJournal::start(&dir, 3, 2).unwrap();
        journal.unit("k1", "executed").unwrap();
        journal.unit("k2", "cached").unwrap();
        drop(journal);
        let text = fs::read_to_string(dir.join("journal.ndjson")).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0].get("event").and_then(JsonValue::as_str),
            Some("start")
        );
        assert_eq!(lines[0].get("units").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            lines[1].get("status").and_then(JsonValue::as_str),
            Some("executed")
        );
        assert_eq!(
            lines[2].get("status").and_then(JsonValue::as_str),
            Some("cached")
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
