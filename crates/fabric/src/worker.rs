//! The worker side of the fabric: a line-oriented request/response loop.
//!
//! A worker process reads one [`WorkUnit`] per line on stdin, hands the
//! `(job, spec)` pair to a caller-supplied handler, and writes exactly one
//! [`WorkResult`] line on stdout — flushed immediately, because the
//! coordinator is blocked on it.  EOF on stdin is the normal shutdown
//! signal.  A handler panic is caught and reported as a typed
//! [`WorkError::Failed`] rather than tearing the worker down: determinism
//! means the panic would recur on retry, so surfacing it as a final typed
//! failure is strictly more informative than a crash/retry loop.
//!
//! A malformed *input* line, by contrast, means the transport itself is
//! broken (a coordinator bug or a corrupted pipe); the loop stops with an
//! error and the process exits nonzero, which the coordinator sees as a
//! crashed worker.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use analysis::json::JsonValue;

use crate::wire::{WireError, WorkError, WorkResult, WorkUnit};

/// Runs the worker protocol over the given streams until EOF.
///
/// `handler` maps `(job, spec)` to a result payload or a typed error; it is
/// invoked once per unit, in arrival order, and its panics are converted to
/// [`WorkError::Failed`].  Returns `Err` only on transport failures
/// (unreadable input, unparsable unit, unwritable output).
pub fn worker_loop<R, W, H>(input: R, mut output: W, handler: H) -> Result<(), WireError>
where
    R: BufRead,
    W: Write,
    H: Fn(&str, &JsonValue) -> Result<JsonValue, WorkError>,
{
    for line in input.lines() {
        let line = line.map_err(|e| WireError::new(format!("reading work unit: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let unit = WorkUnit::from_line(&line)?;
        let outcome = run_handler(&handler, &unit);
        let result = match outcome {
            Ok(payload) => WorkResult::ok(unit.seq, payload),
            Err(error) => WorkResult::err(unit.seq, error),
        };
        writeln!(output, "{}", result.to_line())
            .map_err(|e| WireError::new(format!("writing work result: {e}")))?;
        output
            .flush()
            .map_err(|e| WireError::new(format!("flushing work result: {e}")))?;
    }
    Ok(())
}

/// Invokes the handler with panic containment.
fn run_handler<H>(handler: &H, unit: &WorkUnit) -> Result<JsonValue, WorkError>
where
    H: Fn(&str, &JsonValue) -> Result<JsonValue, WorkError>,
{
    crash_once_if_requested();
    match catch_unwind(AssertUnwindSafe(|| handler(&unit.job, &unit.spec))) {
        Ok(outcome) => outcome,
        Err(panic) => Err(WorkError::Failed {
            detail: format!("handler panicked: {}", panic_message(&panic)),
        }),
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Environment variable naming a sentinel path for deterministic crash
/// injection: when set, a [`worker_loop`] process that can *create* the
/// sentinel file (it did not exist) aborts before handling its unit —
/// exactly once per sentinel path.
pub const CRASH_ONCE_ENV: &str = "SSLE_FABRIC_CRASH_ONCE";

/// Deterministic fault injection for coordinator tests: if
/// [`CRASH_ONCE_ENV`] names a path and this process can *create* that file
/// (it did not exist), the process aborts before handling the unit.  The
/// create-new sentinel guarantees exactly one abort per sentinel path, so a
/// test can assert "the unit was retried on a fresh worker and the report
/// is unchanged" without racing.
fn crash_once_if_requested() {
    let Ok(path) = std::env::var(CRASH_ONCE_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
        .is_ok()
    {
        // Abort, not exit: simulate the harshest failure mode (no unwind,
        // no result line, nonzero status).
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn echo_handler(job: &str, spec: &JsonValue) -> Result<JsonValue, WorkError> {
        match job {
            "echo" => Ok(spec.clone()),
            "boom" => panic!("requested panic"),
            "bad" => Err(WorkError::BadSpec {
                detail: "always bad".into(),
            }),
            other => Err(WorkError::UnknownJob { job: other.into() }),
        }
    }

    fn run_lines(lines: &[String]) -> Vec<WorkResult> {
        let input = Cursor::new(lines.join("\n"));
        let mut output = Vec::new();
        worker_loop(input, &mut output, echo_handler).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| WorkResult::from_line(l).unwrap())
            .collect()
    }

    #[test]
    fn units_are_answered_in_order_with_matching_seqs() {
        let lines: Vec<String> = (0..4)
            .map(|i| WorkUnit::new(i * 10, "echo", JsonValue::object().with("i", i)).to_line())
            .collect();
        let results = run_lines(&lines);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seq, (i as u64) * 10);
            assert_eq!(
                r.outcome,
                Ok(JsonValue::object().with("i", i as u64)),
                "echo payload must round-trip"
            );
        }
    }

    #[test]
    fn handler_panics_become_typed_failures_not_worker_deaths() {
        let lines = vec![
            WorkUnit::new(0, "boom", JsonValue::Null).to_line(),
            WorkUnit::new(1, "echo", JsonValue::Bool(true)).to_line(),
        ];
        let results = run_lines(&lines);
        assert_eq!(results.len(), 2, "worker must survive the panic");
        match &results[0].outcome {
            Err(WorkError::Failed { detail }) => {
                assert!(detail.contains("requested panic"), "got: {detail}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(results[1].outcome, Ok(JsonValue::Bool(true)));
    }

    #[test]
    fn typed_errors_pass_through() {
        let lines = vec![
            WorkUnit::new(0, "bad", JsonValue::Null).to_line(),
            WorkUnit::new(1, "mystery", JsonValue::Null).to_line(),
        ];
        let results = run_lines(&lines);
        assert!(matches!(results[0].outcome, Err(WorkError::BadSpec { .. })));
        assert_eq!(
            results[1].outcome,
            Err(WorkError::UnknownJob {
                job: "mystery".into()
            })
        );
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_is_a_transport_error() {
        let ok = Cursor::new(format!(
            "\n{}\n\n",
            WorkUnit::new(0, "echo", JsonValue::Null).to_line()
        ));
        let mut out = Vec::new();
        worker_loop(ok, &mut out, echo_handler).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);

        let garbage = Cursor::new("this is not a work unit\n");
        let mut out = Vec::new();
        assert!(worker_loop(garbage, &mut out, echo_handler).is_err());
    }
}
