//! `(x, y)` data series with CSV export, used by the experiment binaries to
//! emit figure data.

use serde::{Deserialize, Serialize};

/// A named data series.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points, in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders a CSV with one `x` column and one `y` column per series.
    /// All series must share the same `x` values in the same order.
    ///
    /// # Panics
    ///
    /// Panics if the series disagree on their `x` values.
    pub fn to_csv(series: &[Series], x_label: &str) -> String {
        let mut out = String::new();
        out.push_str(x_label);
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        if series.is_empty() {
            return out;
        }
        let rows = series[0].points.len();
        for s in series {
            assert_eq!(s.points.len(), rows, "series lengths differ");
        }
        for row in 0..rows {
            let x = series[0].points[row].0;
            for s in series {
                assert!(
                    (s.points[row].0 - x).abs() < 1e-9,
                    "series x values differ at row {row}"
                );
            }
            out.push_str(&format!("{x}"));
            for s in series {
                out.push_str(&format!(",{}", s.points[row].1));
            }
            out.push('\n');
        }
        out
    }

    /// Converts the series to a JSON object (`{"name", "points": [[x, y]]}`).
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        JsonValue::object().with("name", self.name.as_str()).with(
            "points",
            JsonValue::Array(
                self.points
                    .iter()
                    .map(|&(x, y)| JsonValue::Array(vec![x.into(), y.into()]))
                    .collect(),
            ),
        )
    }

    /// Renders a simple log-log ASCII sketch of the series (one row per
    /// point), useful for eyeballing scaling behaviour in terminal output.
    pub fn ascii_sketch(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        let max_y = self
            .points
            .iter()
            .map(|p| p.1)
            .fold(f64::MIN, f64::max)
            .max(1.0);
        for &(x, y) in &self.points {
            let width = ((y.max(1.0).ln() / max_y.ln()) * 50.0).round() as usize;
            out.push_str(&format!("{:>10.0} | {}  {:.3e}\n", x, "#".repeat(width), y));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut s = Series::new("steps");
        assert!(s.is_empty());
        s.push(8.0, 100.0);
        s.push(16.0, 420.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(), "steps");
        assert_eq!(s.points()[1], (16.0, 420.0));
    }

    #[test]
    fn csv_rendering() {
        let mut a = Series::new("ppl");
        let mut b = Series::new("yokota");
        for &n in &[8.0, 16.0] {
            a.push(n, n * n);
            b.push(n, n * n * 2.0);
        }
        let csv = Series::to_csv(&[a, b], "n");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,ppl,yokota");
        assert_eq!(lines[1], "8,64,128");
        assert_eq!(lines[2], "16,256,512");
    }

    #[test]
    fn empty_csv_has_only_a_header() {
        let csv = Series::to_csv(&[], "n");
        assert_eq!(csv, "n\n");
    }

    #[test]
    #[should_panic(expected = "series lengths differ")]
    fn mismatched_lengths_panic() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let b = Series::new("b");
        Series::to_csv(&[a, b], "n");
    }

    #[test]
    #[should_panic(expected = "x values differ")]
    fn mismatched_x_values_panic() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let mut b = Series::new("b");
        b.push(2.0, 1.0);
        Series::to_csv(&[a, b], "n");
    }

    #[test]
    fn ascii_sketch_contains_every_point() {
        let mut s = Series::new("sketch");
        s.push(8.0, 10.0);
        s.push(16.0, 1000.0);
        let sketch = s.ascii_sketch();
        assert!(sketch.contains("# sketch"));
        assert_eq!(sketch.lines().count(), 3);
    }
}
