//! Plain-text / markdown table rendering for the experiment binaries.

use crate::json::JsonValue;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Converts the table to a JSON object with the exact same title,
    /// headers and cell strings as the text renderers, so any divergence
    /// between the two output paths is a data bug, not a formatting one.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("title", self.title.as_str())
            .with(
                "headers",
                JsonValue::Array(self.headers.iter().map(|h| h.as_str().into()).collect()),
            )
            .with(
                "rows",
                JsonValue::Array(
                    self.rows
                        .iter()
                        .map(|row| {
                            JsonValue::Array(row.iter().map(|c| c.as_str().into()).collect())
                        })
                        .collect(),
                ),
            )
    }

    /// Renders the table as column-aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Convergence", &["protocol", "n", "steps"]);
        t.push_row(vec!["P_PL".into(), "64".into(), "1.2e6".into()]);
        t.push_row(vec!["[28]".into(), "64".into(), "4.1e5".into()]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### Convergence"));
        assert!(md.contains("| protocol | n | steps |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| P_PL | 64 | 1.2e6 |"));
        assert_eq!(md.lines().count(), 6);
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let txt = sample().to_text();
        assert!(txt.contains("== Convergence =="));
        let lines: Vec<&str> = txt.lines().collect();
        // Header and the two data rows start their second column at the same
        // offset.
        let pos = |line: &str| line.find("64").or_else(|| line.find('n')).unwrap();
        assert_eq!(pos(lines[3]), pos(lines[4]));
    }

    #[test]
    fn row_count() {
        assert_eq!(sample().num_rows(), 2);
    }

    #[test]
    fn json_rendering_round_trips_and_matches_the_text_data() {
        let t = sample();
        let json = t.to_json();
        let text = json.to_json();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed, json);
        assert_eq!(
            parsed.get("title").and_then(JsonValue::as_str),
            Some("Convergence")
        );
        let headers = parsed.get("headers").and_then(JsonValue::as_array).unwrap();
        assert_eq!(headers.len(), 3);
        let rows = parsed.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), t.num_rows());
        // Every JSON cell appears verbatim in the markdown rendering.
        let md = t.to_markdown();
        for row in rows {
            for cell in row.as_array().unwrap() {
                assert!(md.contains(cell.as_str().unwrap()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_width_rows_are_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn untitled_tables_omit_the_heading() {
        let t = Table::new("", &["a"]);
        assert!(!t.to_markdown().contains("###"));
        assert!(!t.to_text().contains("=="));
    }
}
