//! Descriptive statistics over samples of convergence measurements.

use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, `n-1` denominator).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (average of the two middle order statistics for even counts).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[count - 1],
        })
    }

    /// The standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// A normal-approximation 95% confidence interval for the mean,
    /// `(lower, upper)`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample using nearest-rank
    /// interpolation.
    pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
        if samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3e} median={:.3e} sd={:.3e} min={:.3e} max={:.3e}",
            self.count, self.mean, self.median, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_summary() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::quantile(&[], 0.5).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
        assert!(s.to_string().contains("mean"));
    }

    #[test]
    fn median_of_odd_sample_is_middle_element() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(Summary::quantile(&data, 0.0), Some(1.0));
        assert_eq!(Summary::quantile(&data, 1.0), Some(5.0));
        assert_eq!(Summary::quantile(&data, 0.5), Some(3.0));
        assert_eq!(Summary::quantile(&data, 0.25), Some(2.0));
        assert_eq!(Summary::quantile(&data, 0.1), Some(1.4));
        assert_eq!(Summary::quantile(&data, 1.5), None);
    }
}
