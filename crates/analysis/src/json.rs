//! A minimal JSON value type with an emitter and a parser.
//!
//! The build environment has no crates.io access, so the harness cannot use
//! `serde_json`; the experiment binaries' `--json` output is produced by this
//! self-contained module instead.  The parser exists so that tests (and the
//! CI smoke job) can validate that whatever the binaries emit round-trips —
//! catching drift between the table renderer and the JSON emitter.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (emitted via `f64`; serializing a non-finite value
    /// panics — silently degrading a measurement to `null` would corrupt
    /// reports downstream, so the corruption must fail at the emit site).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Creates an empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Inserts a key into an object (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Object(entries) => entries.push((key.into(), value.into())),
            other => panic!("JsonValue::with on a non-object: {other:?}"),
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    ///
    /// # Panics
    ///
    /// Panics if the value contains a non-finite [`JsonValue::Number`]
    /// (`NaN` or an infinity) — JSON has no representation for them, and
    /// rendering `null` instead would silently corrupt reports.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                assert!(
                    x.is_finite(),
                    "JSON cannot represent the non-finite number {x}: fix the \
                     computation (or emit an explicit null) instead of letting \
                     it degrade silently"
                );
                if *x == x.trunc() && x.abs() < 1e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex_escape()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by a low
                                // surrogate escape; combine the pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(format!("lone low surrogate at byte {}", self.pos));
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape (cursor already past
    /// the `\u`).
    fn hex_escape(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes_objects() {
        let v = JsonValue::object()
            .with("name", "table1")
            .with("rows", 3usize)
            .with("ok", true)
            .with("ratio", 0.5)
            .with("tags", vec!["a", "b"]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"table1","rows":3,"ok":true,"ratio":0.5,"tags":["a","b"]}"#
        );
        assert_eq!(v.get("rows").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("table1"));
        assert_eq!(
            v.get("tags").and_then(JsonValue::as_array).unwrap().len(),
            2
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = JsonValue::from("a \"quote\"\nnew\tline \\ κ_max");
        let text = v.to_json();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        let parsed = JsonValue::parse(r#""Aκ""#).unwrap();
        assert_eq!(parsed.as_str(), Some("Aκ"));
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_are_rejected() {
        // U+1F600 (😀) encoded as a standard surrogate pair.
        let parsed = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
        // Raw (unescaped) non-BMP characters also pass through.
        let raw = JsonValue::parse("\"\u{1F600}\"").unwrap();
        assert_eq!(raw.as_str(), Some("\u{1F600}"));
        for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83dA""#, r#""\ude00""#] {
            assert!(JsonValue::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn round_trips_nested_values() {
        let v = JsonValue::object().with(
            "tables",
            JsonValue::Array(vec![
                JsonValue::object()
                    .with("headers", vec!["n", "steps"])
                    .with(
                        "rows",
                        JsonValue::Array(vec![JsonValue::Array(vec![
                            JsonValue::from("16"),
                            JsonValue::from("1.2e6"),
                        ])]),
                    ),
                JsonValue::Null,
                JsonValue::Bool(false),
                JsonValue::Number(-12.75),
            ]),
        );
        let text = v.to_json();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let v = JsonValue::parse(" { \"a\" : [ ] , \"b\" : { } , \"c\" : 1e3 } ").unwrap();
        assert_eq!(v.get("a").unwrap(), &JsonValue::Array(vec![]));
        assert_eq!(v.get("b").unwrap(), &JsonValue::Object(vec![]));
        assert_eq!(v.get("c").and_then(JsonValue::as_f64), Some(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "truex",
            "nul",
            "\"unterminated",
            "1 2",
            "{1:2}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(JsonValue::from(42u64).to_json(), "42");
        assert_eq!(JsonValue::Number(-3.0).to_json(), "-3");
        assert_eq!(JsonValue::Number(2.5).to_json(), "2.5");
    }

    #[test]
    #[should_panic(expected = "non-finite number")]
    fn emitting_nan_panics_instead_of_degrading_to_null() {
        let _ = JsonValue::Number(f64::NAN).to_json();
    }

    #[test]
    #[should_panic(expected = "non-finite number")]
    fn emitting_infinity_panics_even_when_nested() {
        // The panic must fire for non-finite numbers buried in containers,
        // not just at the top level.
        let v = JsonValue::object().with("steps", f64::INFINITY);
        let _ = v.to_json();
    }

    #[test]
    fn display_matches_to_json() {
        let v = JsonValue::object().with("x", 1u64);
        assert_eq!(format!("{v}"), v.to_json());
    }
}
