//! Content digests over canonical JSON.
//!
//! The experiment fabric (`ssle-fabric`) caches work-unit results under a
//! **content address**: the digest of the unit's exact JSON spec.  Two
//! producers must therefore agree on the digested *bytes*, not just on the
//! JSON *value* — [`JsonValue`] objects are insertion-ordered, so the same
//! logical object can serialize to different texts.  [`canonical_json`]
//! removes that freedom (object keys sorted recursively, compact emission),
//! and [`content_digest`] hashes the canonical text with a 128-bit FNV-1a —
//! not cryptographic, but with 128 bits the accidental-collision probability
//! across any realistic cache population is negligible, and the function is
//! dependency-free and byte-stable across platforms.

use crate::json::JsonValue;

/// The FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;

/// The FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// The 128-bit FNV-1a digest of a byte string.
///
/// FNV-1a folds each byte into the running hash with XOR then multiplies by
/// the FNV prime; the 128-bit variant uses wrapping `u128` arithmetic.  It
/// is *not* collision-resistant against an adversary — the fabric cache is a
/// local performance layer, not an integrity boundary.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

/// Serializes a JSON value to its **canonical** text: compact (no
/// whitespace), with every object's keys sorted lexicographically, applied
/// recursively.  Array order is preserved (it is semantically significant).
///
/// Two values that differ only in object-key insertion order canonicalize to
/// identical text; this is the digest pre-image used by [`content_digest`].
///
/// # Panics
///
/// Panics if the value contains a non-finite number, exactly like
/// [`JsonValue::to_json`] — a digest of a value that cannot be serialized
/// exactly would be meaningless.
pub fn canonical_json(value: &JsonValue) -> String {
    canonicalize(value).to_json()
}

/// The recursive key-sorting half of [`canonical_json`].
fn canonicalize(value: &JsonValue) -> JsonValue {
    match value {
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(canonicalize).collect()),
        JsonValue::Object(entries) => {
            let mut sorted: Vec<(String, JsonValue)> = entries
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            // Stable: duplicate keys (never produced by our emitters, but
            // representable) keep their relative order.
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            JsonValue::Object(sorted)
        }
        other => other.clone(),
    }
}

/// The content digest of a JSON value: the 128-bit FNV-1a of its
/// [`canonical_json`] text, rendered as 32 lowercase hex digits.
///
/// This is the fabric's cache key: insensitive to object-key order,
/// sensitive to every semantic detail of the value (including the
/// exact-decimal-string encoding full-width integers use).
pub fn content_digest(value: &JsonValue) -> String {
    format!("{:032x}", fnv1a_128(canonical_json(value).as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_published_vectors() {
        // The canonical FNV-1a test vectors (empty string, "a", "foobar").
        assert_eq!(fnv1a_128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_eq!(fnv1a_128(b"a"), 0xd228cb696f1a8caf78912b704e4a8964);
        assert_eq!(fnv1a_128(b"foobar"), 0x343e1662793c64bf6f0d3597ba446f18);
    }

    #[test]
    fn canonical_json_sorts_object_keys_recursively() {
        let a = JsonValue::object()
            .with("zeta", 1.0)
            .with("alpha", JsonValue::object().with("b", 2.0).with("a", 3.0));
        let b = JsonValue::object()
            .with("alpha", JsonValue::object().with("a", 3.0).with("b", 2.0))
            .with("zeta", 1.0);
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(canonical_json(&a), r#"{"alpha":{"a":3,"b":2},"zeta":1}"#);
        assert_eq!(content_digest(&a), content_digest(&b));
    }

    #[test]
    fn array_order_is_semantic_and_preserved() {
        let a = JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]);
        let b = JsonValue::Array(vec![JsonValue::from(2u64), JsonValue::from(1u64)]);
        assert_eq!(canonical_json(&a), "[1,2]");
        assert_ne!(content_digest(&a), content_digest(&b));
    }

    #[test]
    fn digest_is_sensitive_to_every_field() {
        let base = JsonValue::object()
            .with("job", "stabilization-cell")
            .with("seed", "18446744073709551615");
        let other = JsonValue::object()
            .with("job", "stabilization-cell")
            .with("seed", "18446744073709551614");
        assert_ne!(content_digest(&base), content_digest(&other));
        // Stable across calls (pure function of the value).
        assert_eq!(content_digest(&base), content_digest(&base));
        assert_eq!(content_digest(&base).len(), 32);
        assert!(content_digest(&base).chars().all(|c| c.is_ascii_hexdigit()));
    }
}
