//! Asymptotic model fitting.
//!
//! The experiments measure convergence steps `T(n)` over a geometric sweep of
//! population sizes and compare the growth against the bounds of Table 1.
//! [`fit_power_law`] fits `T(n) = c · n^a` by least squares on log-log scale;
//! [`fit_models`] additionally fits `T(n) = c · n^a · (log₂ n)^b` for
//! `b ∈ {0, 1, 2, 3}` and ranks the models by residual error, which is how
//! `EXPERIMENTS.md` decides whether a measured curve looks like `n²`,
//! `n² log n` or `n³`.

use serde::{Deserialize, Serialize};

/// A fitted scaling model `T(n) = c · n^a · (log₂ n)^b`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// The fixed logarithmic degree `b`.
    pub log_degree: u32,
    /// The fitted polynomial exponent `a`.
    pub exponent: f64,
    /// The fitted constant `c`.
    pub constant: f64,
    /// Mean squared residual in log space.
    pub residual: f64,
}

impl ScalingModel {
    /// Predicted value at `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.constant * n.powf(self.exponent) * n.log2().powi(self.log_degree as i32)
    }

    /// Human-readable formula, e.g. `"3.1e0 * n^2.03 * (log n)^1"`.
    pub fn formula(&self) -> String {
        if self.log_degree == 0 {
            format!("{:.2e} * n^{:.2}", self.constant, self.exponent)
        } else {
            format!(
                "{:.2e} * n^{:.2} * (log n)^{}",
                self.constant, self.exponent, self.log_degree
            )
        }
    }
}

/// The result of fitting several candidate models to the same data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// All fitted models, sorted by increasing residual (best first).
    pub models: Vec<ScalingModel>,
}

impl FitResult {
    /// The best-fitting model.
    pub fn best(&self) -> &ScalingModel {
        &self.models[0]
    }
}

/// Fits `y = c · x^a` by ordinary least squares on `(ln x, ln y)`.
///
/// Returns `(a, c)`.
///
/// # Panics
///
/// Panics if fewer than two points are given or if any coordinate is not
/// strictly positive.
pub fn fit_power_law(points: &[(f64, f64)]) -> (f64, f64) {
    let model = fit_with_log_degree(points, 0);
    (model.exponent, model.constant)
}

/// Fits `y = c · x^a · (log₂ x)^b` for the fixed `b = log_degree`.
///
/// # Panics
///
/// Panics if fewer than two points are given, if any coordinate is not
/// strictly positive, or if `log_degree > 0` and some `x ≤ 2` (where
/// `log₂ x ≤ 1` makes the model degenerate).
pub fn fit_with_log_degree(points: &[(f64, f64)], log_degree: u32) -> ScalingModel {
    assert!(points.len() >= 2, "need at least two points to fit");
    // Transform: ln(y / (log2 x)^b) = ln c + a ln x.
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "coordinates must be positive");
            if log_degree > 0 {
                assert!(x > 2.0, "x must exceed 2 for logarithmic models");
            }
            let denom = if log_degree == 0 {
                1.0
            } else {
                x.log2().powi(log_degree as i32)
            };
            (x.ln(), (y / denom).ln())
        })
        .collect();
    let n = transformed.len() as f64;
    let sx: f64 = transformed.iter().map(|p| p.0).sum();
    let sy: f64 = transformed.iter().map(|p| p.1).sum();
    let sxx: f64 = transformed.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = transformed.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > 1e-12,
        "x values must not be all identical for a regression"
    );
    let a = (n * sxy - sx * sy) / denom;
    let ln_c = (sy - a * sx) / n;
    let residual = transformed
        .iter()
        .map(|&(lx, ly)| {
            let pred = ln_c + a * lx;
            (ly - pred).powi(2)
        })
        .sum::<f64>()
        / n;
    ScalingModel {
        log_degree,
        exponent: a,
        constant: ln_c.exp(),
        residual,
    }
}

/// Fits the models `c·n^a·(log n)^b` for `b ∈ {0, 1, 2, 3}` and returns them
/// sorted by residual (best first).
pub fn fit_models(points: &[(f64, f64)]) -> FitResult {
    let mut models: Vec<ScalingModel> = (0..=3).map(|b| fit_with_log_degree(points, b)).collect();
    models.sort_by(|a, b| {
        a.residual
            .partial_cmp(&b.residual)
            .expect("finite residuals")
    });
    FitResult { models }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
            .iter()
            .map(|&n| (n, f(n)))
            .collect()
    }

    #[test]
    fn recovers_a_pure_power_law() {
        let pts = synth(|n| 3.5 * n.powf(2.0));
        let (a, c) = fit_power_law(&pts);
        assert!((a - 2.0).abs() < 1e-9, "a = {a}");
        assert!((c - 3.5).abs() < 1e-6, "c = {c}");
    }

    #[test]
    fn recovers_a_cubic_law() {
        let pts = synth(|n| 0.1 * n.powf(3.0));
        let (a, _) = fit_power_law(&pts);
        assert!((a - 3.0).abs() < 1e-9);
    }

    #[test]
    fn model_selection_prefers_the_true_logarithmic_degree() {
        // Pure n^2.
        let fit = fit_models(&synth(|n| 2.0 * n * n));
        assert_eq!(fit.best().log_degree, 0);
        assert!((fit.best().exponent - 2.0).abs() < 1e-6);

        // n^2 log n.
        let fit = fit_models(&synth(|n| 2.0 * n * n * n.log2()));
        assert_eq!(fit.best().log_degree, 1);
        assert!((fit.best().exponent - 2.0).abs() < 1e-6);

        // n^2 log^2 n.
        let fit = fit_models(&synth(|n| 0.5 * n * n * n.log2() * n.log2()));
        assert_eq!(fit.best().log_degree, 2);
        assert!((fit.best().exponent - 2.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_quadratic_still_yields_an_exponent_near_two() {
        // Multiplicative noise of ±20% must not push the exponent far off.
        let noise = [1.1, 0.9, 1.2, 0.85, 1.05, 0.95, 1.15];
        let pts: Vec<(f64, f64)> = [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
            .iter()
            .zip(noise.iter())
            .map(|(&n, &eps)| (n, 4.0 * n * n * eps))
            .collect();
        let (a, _) = fit_power_law(&pts);
        assert!((a - 2.0).abs() < 0.15, "a = {a}");
    }

    #[test]
    fn prediction_and_formula() {
        let m = ScalingModel {
            log_degree: 1,
            exponent: 2.0,
            constant: 1.5,
            residual: 0.0,
        };
        assert!((m.predict(16.0) - 1.5 * 256.0 * 4.0).abs() < 1e-9);
        assert!(m.formula().contains("log n"));
        let m0 = ScalingModel {
            log_degree: 0,
            exponent: 3.0,
            constant: 2.0,
            residual: 0.0,
        };
        assert!(!m0.formula().contains("log"));
        assert!((m0.predict(10.0) - 2000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fitting_one_point_panics() {
        fit_power_law(&[(4.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fitting_nonpositive_data_panics() {
        fit_power_law(&[(4.0, 0.0), (8.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "not be all identical")]
    fn identical_x_values_panic() {
        fit_power_law(&[(4.0, 1.0), (4.0, 2.0)]);
    }
}
