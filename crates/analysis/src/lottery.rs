//! The lottery game of Definition 3.8 and the tail bounds of Lemmas 3.9/3.10.
//!
//! The mode-determination machinery of `P_PL` (Algorithm 4) rests on the
//! *lottery game*: a player flips fair coins; a round ends at the first tail
//! or after `k` consecutive heads, and the player wins the round in the
//! latter case.  `W_LG(k, ℓ)` is the number of rounds won within the first
//! `ℓ` flips.  The protocol wins a round exactly when an agent has `ψ`
//! consecutive interactions without interacting with its right neighbour,
//! which is what drives both the clock increments and the TTL decrements of
//! resetting signals.
//!
//! * Lemma 3.9: `Pr(W_LG(k, 4ck·2^k) ≤ 8ck) ≥ 1 − 2^{−ck}` — wins are rare.
//! * Lemma 3.10: `Pr(W_LG(k, 64ck·2^k) ≥ 16ck) ≥ 1 − 2^{−ck}` — but not too
//!   rare.
//!
//! [`LotteryGame`] simulates the game so experiment E6 can compare the
//! empirical win counts against both bounds.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A simulator for the lottery game with parameter `k`.
#[derive(Clone, Debug)]
pub struct LotteryGame {
    k: u32,
    rng: ChaCha8Rng,
}

impl LotteryGame {
    /// Creates a game with win threshold `k` (consecutive heads needed).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!(k >= 1, "k must be positive");
        LotteryGame {
            k,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The win threshold `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Simulates `flips` coin flips and returns `W_LG(k, flips)`: the number
    /// of completed winning rounds.
    pub fn wins_in(&mut self, flips: u64) -> u64 {
        let mut wins = 0u64;
        let mut streak = 0u32;
        for _ in 0..flips {
            if self.rng.gen_bool(0.5) {
                streak += 1;
                if streak == self.k {
                    wins += 1;
                    streak = 0;
                }
            } else {
                streak = 0;
            }
        }
        wins
    }

    /// The exact per-round win probability `2^{-k}`.
    pub fn round_win_probability(&self) -> f64 {
        0.5f64.powi(self.k as i32)
    }

    /// The number of flips used by Lemma 3.9: `4ck·2^k`.
    pub fn lemma_3_9_flips(&self, c: u64) -> u64 {
        4 * c * self.k as u64 * (1u64 << self.k)
    }

    /// The win bound of Lemma 3.9: `8ck`.
    pub fn lemma_3_9_bound(&self, c: u64) -> u64 {
        8 * c * self.k as u64
    }

    /// The number of flips used by Lemma 3.10: `64ck·2^k`.
    pub fn lemma_3_10_flips(&self, c: u64) -> u64 {
        64 * c * self.k as u64 * (1u64 << self.k)
    }

    /// The win bound of Lemma 3.10: `16ck`.
    pub fn lemma_3_10_bound(&self, c: u64) -> u64 {
        16 * c * self.k as u64
    }

    /// Runs `trials` independent experiments of `flips` flips each and
    /// returns the fraction of experiments whose win count satisfies
    /// `predicate`.
    pub fn estimate<F: Fn(u64) -> bool>(&mut self, flips: u64, trials: u64, predicate: F) -> f64 {
        let mut ok = 0u64;
        for _ in 0..trials {
            if predicate(self.wins_in(flips)) {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_and_formulas() {
        let g = LotteryGame::new(4, 0);
        assert_eq!(g.k(), 4);
        assert_eq!(g.round_win_probability(), 1.0 / 16.0);
        assert_eq!(g.lemma_3_9_flips(2), 4 * 2 * 4 * 16);
        assert_eq!(g.lemma_3_9_bound(2), 64);
        assert_eq!(g.lemma_3_10_flips(1), 64 * 4 * 16);
        assert_eq!(g.lemma_3_10_bound(1), 64);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_is_rejected() {
        LotteryGame::new(0, 0);
    }

    #[test]
    fn k_one_wins_roughly_half_the_flips() {
        let mut g = LotteryGame::new(1, 7);
        let wins = g.wins_in(100_000);
        assert!((wins as f64 - 50_000.0).abs() < 2_000.0, "wins = {wins}");
    }

    #[test]
    fn win_frequency_matches_renewal_theory() {
        // The expected number of flips per completed round is 2(2^k − 1)/ ...
        // rather than deriving the exact renewal rate, check the win count is
        // within a factor of two of flips · 2^{-k} / 2 (each round uses at
        // most k flips and at least 1, and wins happen with prob 2^{-k} per
        // round).
        let k = 5;
        let mut g = LotteryGame::new(k, 3);
        let flips = 400_000u64;
        let wins = g.wins_in(flips);
        let per_round = g.round_win_probability();
        let upper = flips as f64 * per_round; // at least one flip per round
        let lower = flips as f64 / k as f64 * per_round / 2.0;
        assert!(
            (wins as f64) < upper * 1.5 && (wins as f64) > lower,
            "wins = {wins}, expected between {lower} and {upper}"
        );
    }

    #[test]
    fn lemma_3_9_upper_tail_holds_empirically() {
        // Pr(W ≤ 8ck) should be at least 1 − 2^{-ck}; with k = 4, c = 1 the
        // bound is 1 − 1/16 ≈ 0.94.  Empirically the event probability is
        // much higher; just check it clears the bound.
        let mut g = LotteryGame::new(4, 11);
        let flips = g.lemma_3_9_flips(1);
        let bound = g.lemma_3_9_bound(1);
        let frac = g.estimate(flips, 400, |w| w <= bound);
        assert!(frac >= 1.0 - 1.0 / 16.0, "fraction = {frac}");
    }

    #[test]
    fn lemma_3_10_lower_tail_holds_empirically() {
        let mut g = LotteryGame::new(4, 13);
        let flips = g.lemma_3_10_flips(1);
        let bound = g.lemma_3_10_bound(1);
        let frac = g.estimate(flips, 300, |w| w >= bound);
        assert!(frac >= 1.0 - 1.0 / 16.0, "fraction = {frac}");
    }

    #[test]
    fn determinism_per_seed() {
        let a = LotteryGame::new(3, 42).wins_in(10_000);
        let b = LotteryGame::new(3, 42).wins_in(10_000);
        assert_eq!(a, b);
    }
}
