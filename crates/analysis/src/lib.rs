//! # analysis
//!
//! Statistics and model-fitting utilities for the experiment harness:
//!
//! * [`summary`] — descriptive statistics (mean, median, quantiles,
//!   confidence intervals) over convergence-time samples;
//! * [`fit`] — least-squares fits of `T(n) = c · n^a · (log n)^b` on log-log
//!   scale, used to compare the measured scaling of each protocol against the
//!   bounds claimed in Table 1;
//! * [`lottery`] — the lottery game of Definition 3.8 and Monte-Carlo checks
//!   of the tail bounds of Lemmas 3.9 and 3.10;
//! * [`table`] — plain-text/markdown table rendering for the experiment
//!   binaries;
//! * [`series`] — `(n, value)` data series with CSV export;
//! * [`json`] — a minimal JSON value/emitter/parser used for the binaries'
//!   machine-readable `--json` output (the offline build cannot use
//!   `serde_json`);
//! * [`digest`] — canonical-JSON content digests (128-bit FNV-1a), the
//!   cache keys of the `ssle-fabric` experiment fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod digest;
pub mod fit;
pub mod json;
pub mod lottery;
pub mod series;
pub mod summary;
pub mod table;

pub use digest::{canonical_json, content_digest};
pub use fit::{fit_models, fit_power_law, FitResult, ScalingModel};
pub use json::JsonValue;
pub use lottery::LotteryGame;
pub use series::Series;
pub use summary::Summary;
pub use table::Table;
