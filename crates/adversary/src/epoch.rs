//! Epoch-confined schedules with a fairness auditor.
//!
//! An [`EpochPartitionScheduler`] splits the arc set into `blocks` groups
//! (round-robin by arc index, so every group is non-empty) and confines each
//! *epoch* of `epoch_len` consecutive steps to one group, cycling through
//! the groups forever.  Locally the schedule looks starved — whole regions
//! of the graph see no interaction for `(blocks - 1) · epoch_len` steps at a
//! stretch — but globally it is **fair by construction**: every group recurs
//! every `blocks` epochs and every arc of a scheduled group has positive
//! probability per step, so every arc fires infinitely often almost surely.
//! That is exactly the global-fairness premise of the paper's
//! self-stabilization claim, which is why every Table 1 protocol must still
//! converge under this scheduler (covered by the workspace property tests).
//!
//! The optional [`FairnessAuditor`] certifies the premise empirically for a
//! concrete run: it counts per-arc firings and reports a
//! [`FairnessCertificate`] (did every arc fire, the minimum count, how many
//! full rotations completed).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::Rng;

use population::{Interaction, InteractionGraph, PopulationError, Result, Scheduler};

/// Shared, cheaply clonable handle to the per-arc fairness counts of one or
/// more [`EpochPartitionScheduler`] runs.
///
/// Clone a handle into the scheduler (or the `SchedulerFamily` closure that
/// builds one per run) and read [`FairnessAuditor::certificate`] afterwards.
#[derive(Clone, Debug, Default)]
pub struct FairnessAuditor {
    inner: Arc<Mutex<AuditInner>>,
}

#[derive(Debug, Default)]
struct AuditInner {
    /// Expected arcs (registered when a scheduler attaches) and their
    /// observed firing counts.
    counts: HashMap<(usize, usize), u64>,
    steps: u64,
    rotations: u64,
}

/// The auditor's verdict over the audited steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FairnessCertificate {
    /// Number of distinct arcs the audited schedulers could schedule.
    pub arcs: usize,
    /// Number of those arcs observed to fire at least once.
    pub fired: usize,
    /// The minimum per-arc firing count (0 if any arc never fired).
    pub min_fires: u64,
    /// Total audited steps.
    pub steps: u64,
    /// Completed full rotations through all groups.
    pub rotations: u64,
}

impl FairnessCertificate {
    /// `true` if every schedulable arc fired at least once in the audited
    /// window — the empirical witness of the fair-schedule premise.
    pub fn is_fair(&self) -> bool {
        self.arcs > 0 && self.fired == self.arcs
    }
}

impl FairnessAuditor {
    /// Creates an empty auditor.
    pub fn new() -> Self {
        FairnessAuditor::default()
    }

    /// Registers the arcs a scheduler can dispense (count 0 until observed).
    fn register(&self, arcs: &[Interaction]) {
        let mut inner = self.inner.lock().expect("auditor poisoned");
        for arc in arcs {
            inner
                .counts
                .entry((arc.initiator().index(), arc.responder().index()))
                .or_insert(0);
        }
    }

    fn record(&self, arc: Interaction, completed_rotation: bool) {
        let mut inner = self.inner.lock().expect("auditor poisoned");
        *inner
            .counts
            .entry((arc.initiator().index(), arc.responder().index()))
            .or_insert(0) += 1;
        inner.steps += 1;
        if completed_rotation {
            inner.rotations += 1;
        }
    }

    /// Clears all recorded state (e.g. between independent runs that reuse
    /// one handle).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("auditor poisoned");
        *inner = AuditInner::default();
    }

    /// The verdict over everything recorded so far.
    pub fn certificate(&self) -> FairnessCertificate {
        let inner = self.inner.lock().expect("auditor poisoned");
        let fired = inner.counts.values().filter(|&&c| c > 0).count();
        FairnessCertificate {
            arcs: inner.counts.len(),
            fired,
            min_fires: inner.counts.values().copied().min().unwrap_or(0),
            steps: inner.steps,
            rotations: inner.rotations,
        }
    }
}

/// A scheduler confining each epoch of steps to one group of an arc
/// partition, cycling through the groups.
#[derive(Clone, Debug)]
pub struct EpochPartitionScheduler {
    arcs: Vec<Interaction>,
    blocks: usize,
    epoch_len: u64,
    step: u64,
    auditor: Option<FairnessAuditor>,
}

impl EpochPartitionScheduler {
    /// Creates the scheduler over the arcs of `graph`.  `blocks` is clamped
    /// to `[1, num_arcs]` and `epoch_len` to `>= 1`; group `g` contains the
    /// arcs whose index is `≡ g (mod blocks)`, so every group is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::EmptyArcSet`] if the graph has no arcs.
    pub fn new<G: InteractionGraph>(graph: &G, blocks: usize, epoch_len: u64) -> Result<Self> {
        let arcs = graph.arcs();
        if arcs.is_empty() {
            return Err(PopulationError::EmptyArcSet);
        }
        let blocks = blocks.clamp(1, arcs.len());
        Ok(EpochPartitionScheduler {
            arcs,
            blocks,
            epoch_len: epoch_len.max(1),
            step: 0,
            auditor: None,
        })
    }

    /// Attaches a fairness auditor (registering this scheduler's arcs with
    /// it).  Auditing takes a mutex per step; leave it off on hot paths.
    pub fn with_auditor(mut self, auditor: FairnessAuditor) -> Self {
        auditor.register(&self.arcs);
        self.auditor = Some(auditor);
        self
    }

    /// Number of groups in the partition (after clamping).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Steps per epoch (after clamping).
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }
}

impl<G: InteractionGraph> Scheduler<G> for EpochPartitionScheduler {
    fn next_interaction<R: Rng + ?Sized>(
        &mut self,
        _graph: &G,
        rng: &mut R,
    ) -> Result<Interaction> {
        let group = ((self.step / self.epoch_len) % self.blocks as u64) as usize;
        // Group members are arcs[group], arcs[group + blocks], ...
        let members = (self.arcs.len() - group).div_ceil(self.blocks);
        let pick = rng.gen_range(0..members);
        let arc = self.arcs[group + pick * self.blocks];
        self.step += 1;
        if let Some(auditor) = &self.auditor {
            let rotation = self.epoch_len * self.blocks as u64;
            auditor.record(arc, self.step.is_multiple_of(rotation));
        }
        Ok(arc)
    }

    fn phase(&self) -> Option<u64> {
        // The schedule is periodic with period `epoch_len * blocks` (one full
        // rotation): which group is active and how far into its epoch we are
        // depend only on `step mod rotation`.  Exposing the periodic phase —
        // not the raw step — is what lets recurrence detection confirm that a
        // revisited configuration faces the *same* future schedule.
        Some(self.step % self.epoch_len.saturating_mul(self.blocks as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{CompleteGraph, DirectedRing};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn epochs_confine_interactions_to_one_group() {
        let ring = DirectedRing::new(6).unwrap();
        let mut sched = EpochPartitionScheduler::new(&ring, 3, 10).unwrap();
        let arcs = ring.arcs();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for epoch in 0..6u64 {
            for _ in 0..10 {
                let arc = Scheduler::<DirectedRing>::next_interaction(&mut sched, &ring, &mut rng)
                    .unwrap();
                let idx = arcs.iter().position(|a| *a == arc).unwrap();
                assert_eq!(
                    idx % 3,
                    (epoch % 3) as usize,
                    "epoch {epoch} scheduled an arc of the wrong group"
                );
            }
        }
    }

    #[test]
    fn auditor_certifies_full_coverage_over_rotations() {
        let graph = CompleteGraph::new(5);
        let auditor = FairnessAuditor::new();
        let mut sched = EpochPartitionScheduler::new(&graph, 4, 8)
            .unwrap()
            .with_auditor(auditor.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..4_000 {
            Scheduler::<CompleteGraph>::next_interaction(&mut sched, &graph, &mut rng).unwrap();
        }
        let cert = auditor.certificate();
        assert_eq!(cert.arcs, graph.num_arcs());
        assert!(cert.is_fair(), "certificate: {cert:?}");
        assert!(cert.min_fires > 0);
        assert_eq!(cert.steps, 4_000);
        assert_eq!(cert.rotations, 4_000 / (4 * 8));
        auditor.reset();
        assert_eq!(auditor.certificate().steps, 0);
        assert!(!auditor.certificate().is_fair(), "empty audit is not fair");
    }

    #[test]
    fn starved_window_is_real() {
        // Within one epoch, arcs outside the active group never fire — the
        // adversarial half of the construction.
        let ring = DirectedRing::new(8).unwrap();
        let mut sched = EpochPartitionScheduler::new(&ring, 2, 1_000).unwrap();
        let arcs = ring.arcs();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut group1 = 0usize;
        for _ in 0..1_000 {
            let arc =
                Scheduler::<DirectedRing>::next_interaction(&mut sched, &ring, &mut rng).unwrap();
            if arcs.iter().position(|a| *a == arc).unwrap() % 2 == 1 {
                group1 += 1;
            }
        }
        assert_eq!(group1, 0, "first epoch must starve the second group");
    }

    #[test]
    fn phase_is_periodic_over_one_full_rotation() {
        let ring = DirectedRing::new(6).unwrap();
        let mut sched = EpochPartitionScheduler::new(&ring, 3, 4).unwrap();
        let rotation: u64 = 3 * 4;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for step in 0..(3 * rotation) {
            assert_eq!(
                Scheduler::<DirectedRing>::phase(&sched),
                Some(step % rotation),
                "phase must be the step counter modulo one rotation"
            );
            Scheduler::<DirectedRing>::next_interaction(&mut sched, &ring, &mut rng).unwrap();
        }
    }

    #[test]
    fn parameters_are_clamped() {
        let ring = DirectedRing::new(3).unwrap();
        let sched = EpochPartitionScheduler::new(&ring, 100, 0).unwrap();
        assert_eq!(sched.blocks(), 3);
        assert_eq!(sched.epoch_len(), 1);
    }
}
