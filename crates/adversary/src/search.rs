//! Worst-case stabilization search.
//!
//! Average-case sweeps measure *mean* stabilization time; the interesting
//! quantity for a self-stabilizing protocol is the **worst case** over
//! initial configurations and schedules.  Exhausting that space is hopeless
//! (it is exponential), so this module searches it: simulated annealing over
//! [`Candidate`]s — an initial-condition variant, a seed and a
//! [`SchedulerSpec`] — maximizing the observed stabilization time reported
//! by a driver-supplied evaluation function.
//!
//! Everything is deterministic: mutations come from a `ChaCha8Rng` seeded by
//! [`SearchConfig::seed`], and evaluation is the driver's responsibility to
//! keep seed-deterministic (scenario runs are).  The result is a
//! [`WorstCase`] **certificate**: re-evaluating its candidate reproduces the
//! same step count, so worst cases found once can be archived, shared and
//! re-verified (covered by workspace tests).
//!
//! The search is seeded with an already-evaluated candidate pool — typically
//! the random-scheduler trials a report also uses for its mean — which
//! guarantees `worst-found ≥ max(pool) ≥ mean(pool)` by construction.

use population::BatchRunner;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::certify::CertifiedLivelock;
use crate::faultplan::{
    ChurnDomain, ChurnPlanSpec, FaultDomain, FaultPlanSpec, GraphDomain, GraphSpec,
};
use crate::spec::SchedulerSpec;

/// One point of the search space: which initial-condition variant to start
/// from, the seed driving init + simulation, the scheduler description, the
/// mid-run crash schedule, the mid-run churn schedule and an optional
/// interaction-graph override.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Index into the driver's list of initial-condition variants.
    pub variant: u32,
    /// The sweep-point seed (drives the initial configuration and the
    /// simulation RNG).
    pub seed: u64,
    /// The scheduler to run under.
    pub spec: SchedulerSpec,
    /// The transient-fault schedule to fire mid-run
    /// ([`FaultPlanSpec::none`] for a fault-free run).
    pub faults: FaultPlanSpec,
    /// The topology-churn schedule to fire mid-run
    /// ([`ChurnPlanSpec::none`] for a churn-free run).
    pub churn: ChurnPlanSpec,
    /// Replaces the driver scenario's interaction-graph family when `Some`
    /// (`None` keeps the scenario's own topology).
    pub graph: Option<GraphSpec>,
}

impl Candidate {
    /// A fault-free, churn-free random-scheduler candidate on the driver
    /// scenario's own topology — the shape of every seed pool member.
    pub fn baseline(seed: u64) -> Self {
        Candidate {
            variant: 0,
            seed,
            spec: SchedulerSpec::Random,
            faults: FaultPlanSpec::none(),
            churn: ChurnPlanSpec::none(),
            graph: None,
        }
    }
}

/// The driver's verdict on one candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evaluation {
    /// Observed stabilization steps, censored at the run's step budget when
    /// the run did not converge (a censored run is a *worst* case: the true
    /// value is at least the budget).
    pub steps: u64,
    /// Whether the run converged within the budget.
    pub converged: bool,
}

/// A reproducible worst case: the candidate plus its observed evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorstCase {
    /// The candidate that produced the worst observed stabilization time.
    pub candidate: Candidate,
    /// Observed stabilization steps (censored at the budget if
    /// `!converged`).
    pub steps: u64,
    /// Whether the worst-case run converged within the budget.
    pub converged: bool,
    /// A checked livelock certificate for the candidate, when the driver
    /// ran [`certify_livelock`](crate::certify::certify_livelock) on a
    /// censored result and the closure check succeeded.  The search itself
    /// never fills this in — certification is a post-pass.
    pub certified: Option<CertifiedLivelock>,
}

/// Which scheduler mutations the search may propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecDomain {
    /// Allow [`SchedulerSpec::Weighted`] proposals.
    pub weighted: bool,
    /// Upper bound on the weighted bias factor.
    pub max_bias: u32,
    /// Allow [`SchedulerSpec::EpochPartition`] proposals.
    pub epoch: bool,
    /// Upper bound on the number of partition blocks.
    pub max_blocks: u32,
    /// Upper bound on the epoch length.
    pub max_epoch_len: u64,
    /// Allow [`SchedulerSpec::Greedy`] proposals (requires the driver to
    /// supply a scorer when building families).
    pub greedy: bool,
    /// Upper bound on greedy candidate-pool size.
    pub max_candidates: u32,
}

impl SpecDomain {
    /// The full zoo with moderate parameter ranges.
    pub fn all() -> Self {
        SpecDomain {
            weighted: true,
            max_bias: 64,
            epoch: true,
            max_blocks: 8,
            max_epoch_len: 4096,
            greedy: true,
            max_candidates: 6,
        }
    }

    /// The state-blind zoo (no greedy adversary) — for drivers without a
    /// potential, or where per-step scoring is too expensive.
    pub fn state_blind() -> Self {
        SpecDomain {
            greedy: false,
            ..SpecDomain::all()
        }
    }

    /// Samples a uniformly random spec from the allowed kinds (falling back
    /// to [`SchedulerSpec::Random`] when everything is disabled).
    fn sample(&self, rng: &mut ChaCha8Rng) -> SchedulerSpec {
        let mut kinds: Vec<u8> = vec![0];
        if self.weighted {
            kinds.push(1);
        }
        if self.epoch {
            kinds.push(2);
        }
        if self.greedy {
            kinds.push(3);
        }
        match kinds[rng.gen_range(0..kinds.len())] {
            1 => SchedulerSpec::Weighted {
                hot_per_mille: rng.gen_range(1..=500),
                bias: rng.gen_range(2..=self.max_bias.max(2)),
                seed: rng.gen(),
            },
            2 => SchedulerSpec::EpochPartition {
                blocks: rng.gen_range(2..=self.max_blocks.max(2)),
                epoch_len: rng.gen_range(1..=self.max_epoch_len.max(1)),
            },
            3 => SchedulerSpec::Greedy {
                candidates: rng.gen_range(2..=self.max_candidates.max(2)),
            },
            _ => SchedulerSpec::Random,
        }
    }

    /// Proposes a small perturbation of `spec` (or a kind switch).
    fn tweak(&self, spec: &SchedulerSpec, rng: &mut ChaCha8Rng) -> SchedulerSpec {
        // One third of tweaks re-draw the kind entirely; the rest perturb a
        // single parameter of the current spec.
        if spec.is_random() || rng.gen_range(0..3u8) == 0 {
            return self.sample(rng);
        }
        match *spec {
            SchedulerSpec::Random => unreachable!("handled above"),
            SchedulerSpec::Weighted {
                hot_per_mille,
                bias,
                seed,
            } => match rng.gen_range(0..3u8) {
                0 => SchedulerSpec::Weighted {
                    hot_per_mille: half_or_double(hot_per_mille as u64, 1, 500, rng) as u16,
                    bias,
                    seed,
                },
                1 => SchedulerSpec::Weighted {
                    hot_per_mille,
                    bias: half_or_double(bias as u64, 2, self.max_bias.max(2) as u64, rng) as u32,
                    seed,
                },
                _ => SchedulerSpec::Weighted {
                    hot_per_mille,
                    bias,
                    seed: rng.gen(),
                },
            },
            SchedulerSpec::EpochPartition { blocks, epoch_len } => {
                if rng.gen_bool(0.5) {
                    SchedulerSpec::EpochPartition {
                        blocks: step_up_down(blocks as u64, 2, self.max_blocks.max(2) as u64, rng)
                            as u32,
                        epoch_len,
                    }
                } else {
                    SchedulerSpec::EpochPartition {
                        blocks,
                        epoch_len: half_or_double(epoch_len, 1, self.max_epoch_len.max(1), rng),
                    }
                }
            }
            SchedulerSpec::Greedy { candidates } => SchedulerSpec::Greedy {
                candidates: step_up_down(
                    candidates as u64,
                    2,
                    self.max_candidates.max(2) as u64,
                    rng,
                ) as u32,
            },
        }
    }
}

fn half_or_double(v: u64, lo: u64, hi: u64, rng: &mut ChaCha8Rng) -> u64 {
    let next = if rng.gen_bool(0.5) {
        v.saturating_mul(2)
    } else {
        v / 2
    };
    next.clamp(lo, hi)
}

fn step_up_down(v: u64, lo: u64, hi: u64, rng: &mut ChaCha8Rng) -> u64 {
    let next = if rng.gen_bool(0.5) {
        v + 1
    } else {
        v.saturating_sub(1)
    };
    next.clamp(lo, hi)
}

/// The mutation domain of one search.
#[derive(Clone, Copy, Debug)]
pub struct SearchSpace {
    /// Number of initial-condition variants the driver can evaluate
    /// (`Candidate::variant` stays below this).
    pub variants: u32,
    /// Allowed scheduler mutations.
    pub specs: SpecDomain,
    /// Allowed fault-plan mutations ([`FaultDomain::disabled`] restricts
    /// the search to the fault-free space).
    pub faults: FaultDomain,
    /// Allowed churn-plan mutations ([`ChurnDomain::disabled`] restricts
    /// the search to the churn-free space with a bit-identical proposal
    /// stream).
    pub churn: ChurnDomain,
    /// Allowed graph-family mutations ([`GraphDomain::disabled`] keeps
    /// every candidate on the driver scenario's own topology).
    pub graph: GraphDomain,
}

/// Annealing parameters.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Mutation/evaluation rounds after the seed pool.
    pub iterations: u32,
    /// Seed of the mutation RNG (the whole search is deterministic in it).
    pub seed: u64,
    /// Geometric temperature decay per iteration, in `(0, 1]`.
    pub cooling: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 12,
            seed: 0xADF5,
            cooling: 0.85,
        }
    }
}

/// The result of one search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The worst case found (over the pool and every proposal).
    pub best: WorstCase,
    /// Total driver evaluations performed (excluding the pre-evaluated
    /// pool).
    pub evaluations: u32,
    /// Annealing-chain statistics (acceptance behaviour and best-so-far
    /// trajectory), exposed for telemetry and diagnostics.
    pub stats: SearchStats,
}

/// Statistics of one annealing chain.
///
/// Purely observational: the chain's proposals, acceptances and
/// temperature schedule are fixed by the search seed regardless of whether
/// anyone reads these.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// Proposals accepted (uphill moves and Metropolis-accepted downhill
    /// moves).
    pub accepted: u32,
    /// Proposals rejected.
    pub rejected: u32,
    /// Temperature after the final iteration.
    pub final_temperature: f64,
    /// Best-so-far score after each iteration (length = iterations).
    pub best_trajectory: Vec<u64>,
}

/// Runs the annealing search.
///
/// `pool` is the already-evaluated seed population (e.g. the
/// random-scheduler trials whose mean a report publishes); the search starts
/// from its maximum, which guarantees the returned worst case is at least as
/// bad as every pool member.  `evaluate` must be deterministic per candidate
/// for certificates to be reproducible.
///
/// ```
/// use ssle_adversary::{
///     worst_case_search, Candidate, ChurnDomain, Evaluation, FaultDomain, GraphDomain,
///     SearchConfig, SearchSpace, SpecDomain,
/// };
///
/// // A deterministic toy objective standing in for a scenario run (real
/// // drivers run `Scenario::try_run` and censor at the step budget).
/// let evaluate = |c: &Candidate| Evaluation {
///     steps: 100 + c.seed % 50 + 10 * c.faults.events().len() as u64,
///     converged: true,
/// };
/// let pool: Vec<(Candidate, Evaluation)> = (0..3)
///     .map(|s| (Candidate::baseline(s), evaluate(&Candidate::baseline(s))))
///     .collect();
/// let space = SearchSpace {
///     variants: 1,
///     specs: SpecDomain::state_blind(),
///     faults: FaultDomain::bursts(1_000, 8),
///     churn: ChurnDomain::disabled(),
///     graph: GraphDomain::disabled(),
/// };
/// let outcome = worst_case_search(&space, &pool, evaluate, &SearchConfig::default());
/// // The worst case found is never below the pool maximum (here 102), and
/// // its certificate re-evaluates to the identical score.
/// assert!(outcome.best.steps >= 102);
/// assert_eq!(evaluate(&outcome.best.candidate).steps, outcome.best.steps);
/// ```
///
/// # Panics
///
/// Panics if `pool` is empty or `space.variants == 0`.
pub fn worst_case_search<E>(
    space: &SearchSpace,
    pool: &[(Candidate, Evaluation)],
    mut evaluate: E,
    config: &SearchConfig,
) -> SearchOutcome
where
    E: FnMut(&Candidate) -> Evaluation,
{
    assert!(!pool.is_empty(), "worst_case_search needs a seed pool");
    assert!(space.variants > 0, "worst_case_search needs >= 1 variant");
    let (seed_candidate, seed_eval) = pool
        .iter()
        .max_by_key(|(_, e)| e.steps)
        .expect("non-empty pool");
    let mut best = WorstCase {
        candidate: seed_candidate.clone(),
        steps: seed_eval.steps,
        converged: seed_eval.converged,
        certified: None,
    };
    let mut current = best.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Self-scaling temperature: a quarter of the seed score, decayed
    // geometrically.  With temperature ~0 the search becomes pure hill
    // climbing.
    let mut temperature = (best.steps as f64 / 4.0).max(1.0);
    let mut evaluations = 0u32;
    let mut stats = SearchStats::default();
    for _ in 0..config.iterations {
        let proposal = mutate(&current.candidate, space, &mut rng);
        let eval = evaluate(&proposal);
        evaluations += 1;
        let accept = eval.steps >= current.steps || {
            let drop = (current.steps - eval.steps) as f64;
            rng.gen_bool((-drop / temperature).exp().clamp(0.0, 1.0))
        };
        if accept {
            stats.accepted += 1;
            current = WorstCase {
                candidate: proposal,
                steps: eval.steps,
                converged: eval.converged,
                certified: None,
            };
        } else {
            stats.rejected += 1;
        }
        if current.steps > best.steps {
            best = current.clone();
        }
        stats.best_trajectory.push(best.steps);
        temperature = (temperature * config.cooling).max(1.0);
    }
    stats.final_temperature = temperature;
    ssle_telemetry::metrics::well_known::SEARCH_EVALUATIONS.add(u64::from(evaluations));
    ssle_telemetry::metrics::well_known::SEARCH_ACCEPTS.add(u64::from(stats.accepted));
    ssle_telemetry::metrics::well_known::SEARCH_REJECTS.add(u64::from(stats.rejected));
    SearchOutcome {
        best,
        evaluations,
        stats,
    }
}

/// Parameters of an island search ([`worst_case_search_islands`]).
#[derive(Clone, Copy, Debug)]
pub struct IslandConfig {
    /// Number of independent annealing islands.  **Part of the result's
    /// identity**: changing it changes which worst case is found, while the
    /// thread count of the runner never does.
    pub islands: u32,
    /// Mutation/evaluation rounds *per island* (total evaluations are
    /// `islands × iterations`).
    pub iterations: u32,
    /// Base seed; each island derives its own disjoint stream from it.
    pub seed: u64,
    /// Geometric temperature decay per iteration, in `(0, 1]`.
    pub cooling: f64,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            islands: 4,
            iterations: 6,
            seed: 0xADF5,
            cooling: 0.85,
        }
    }
}

/// The result of one island search.
#[derive(Clone, Debug)]
pub struct IslandOutcome {
    /// The worst case found over the pool and every island.
    pub best: WorstCase,
    /// The island that found it (ties go to the lowest index, so the merge
    /// is deterministic).
    pub best_island: u32,
    /// Total driver evaluations across all islands (excluding the
    /// pre-evaluated pool).
    pub evaluations: u32,
}

/// The annealing chain restructured as independent **islands**: each island
/// runs [`worst_case_search`] from the same seed pool but with its own
/// disjoint mutation-RNG stream, and the results are merged best-of.
///
/// Islands are embarrassingly parallel, so they are sharded over `runner`
/// (`BatchRunner::run_map`); because every island's stream depends only on
/// `config.seed` and its island index — never on the thread that happens to
/// execute it — the outcome is **bit-identical for any thread count** at a
/// fixed island count.  That is the contract `stabilization_report
/// --threads T` relies on, pinned by workspace tests.
///
/// `evaluate` must be deterministic per candidate (certificates) and, unlike
/// the single-chain search, `Fn + Send + Sync` (islands share it across
/// worker threads).
///
/// # Panics
///
/// Panics if `config.islands == 0`, `pool` is empty or
/// `space.variants == 0`.
pub fn worst_case_search_islands<E>(
    space: &SearchSpace,
    pool: &[(Candidate, Evaluation)],
    evaluate: E,
    config: &IslandConfig,
    runner: &BatchRunner,
) -> IslandOutcome
where
    E: Fn(&Candidate) -> Evaluation + Send + Sync,
{
    assert!(config.islands > 0, "island search needs >= 1 island");
    let islands: Vec<u32> = (0..config.islands).collect();
    let outcomes = runner.run_map(&islands, |&island| {
        worst_case_search(
            space,
            pool,
            |c| evaluate(c),
            &SearchConfig {
                iterations: config.iterations,
                seed: island_seed(config.seed, island),
                cooling: config.cooling,
            },
        )
    });
    let mut merged: Option<(u32, SearchOutcome)> = None;
    let mut evaluations = 0u32;
    for (island, outcome) in outcomes.into_iter().enumerate() {
        evaluations += outcome.evaluations;
        if ssle_telemetry::enabled() {
            ssle_telemetry::emit(
                ssle_telemetry::Event::new("search_island")
                    .field("island", island)
                    .count("accepted", u64::from(outcome.stats.accepted))
                    .count("rejected", u64::from(outcome.stats.rejected))
                    .count("best_steps", outcome.best.steps)
                    .field("final_temperature", outcome.stats.final_temperature),
            );
        }
        // Strict `>` keeps the lowest island on ties — the merge order is
        // island order, never completion order.
        if merged
            .as_ref()
            .is_none_or(|(_, best)| outcome.best.steps > best.best.steps)
        {
            merged = Some((island as u32, outcome));
        }
    }
    let (best_island, outcome) = merged.expect("at least one island");
    if ssle_telemetry::enabled() {
        ssle_telemetry::emit(
            ssle_telemetry::Event::new("search_summary")
                .field("islands", config.islands as usize)
                .count("evaluations", u64::from(evaluations))
                .count("best_steps", outcome.best.steps)
                .field("best_island", best_island as usize),
        );
    }
    IslandOutcome {
        best: outcome.best,
        best_island,
        evaluations,
    }
}

/// The disjoint per-island seed stream: one SplitMix64 scramble of the base
/// seed and the island index, so neighbouring indices land in unrelated
/// regions of the `ChaCha8Rng` seed space.
fn island_seed(seed: u64, island: u32) -> u64 {
    let mut z = seed.wrapping_add((island as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Proposes a neighbour of `candidate`: a new seed, a different variant, a
/// scheduler mutation, a fault-plan mutation, a churn-plan mutation or a
/// graph-family mutation.
fn mutate(candidate: &Candidate, space: &SearchSpace, rng: &mut ChaCha8Rng) -> Candidate {
    let mut next = candidate.clone();
    // The move table: reseed, variant switch (when available), scheduler
    // mutation ×2 and fault/churn mutations ×2 — the structured axes are
    // richer than a reseed, so they get the bulk of the mass.  Disabled
    // domains contribute no entries, so the proposal stream of the smaller
    // spaces is bit-identical to what it was before the axes existed
    // (committed certificates replay unchanged).
    let mut moves: Vec<u8> = vec![0];
    if space.variants > 1 {
        moves.push(1);
    }
    moves.extend([2, 2]);
    if space.faults.enabled {
        moves.extend([3, 3]);
    }
    if space.churn.enabled {
        moves.extend([4, 4]);
    }
    if space.graph.enabled {
        moves.push(5);
    }
    match moves[rng.gen_range(0..moves.len())] {
        0 => next.seed = rng.gen(),
        1 => {
            // Uniform over the *other* variants.
            let shift = rng.gen_range(1..space.variants);
            next.variant = (next.variant + shift) % space.variants;
        }
        2 => next.spec = space.specs.tweak(&next.spec, rng),
        3 => next.faults = space.faults.tweak(&next.faults, rng),
        4 => next.churn = space.churn.tweak(&next.churn, rng),
        _ => next.graph = space.graph.tweak(&next.graph, rng),
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic objective with structure for the search to
    /// exploit: rewards epoch partitions with many blocks, late fault bursts,
    /// plus a seed-dependent wrinkle.
    fn synthetic(c: &Candidate) -> Evaluation {
        let spec_score = match &c.spec {
            SchedulerSpec::Random => 10,
            SchedulerSpec::Weighted { bias, .. } => 20 + *bias as u64,
            SchedulerSpec::EpochPartition { blocks, .. } => 50 + 10 * *blocks as u64,
            SchedulerSpec::Greedy { candidates } => 40 + *candidates as u64,
        };
        let fault_score: u64 = c.faults.events().iter().map(|e| 5 + e.at_step / 64).sum();
        let steps = spec_score + fault_score + (c.seed % 7) + 5 * c.variant as u64;
        Evaluation {
            steps,
            converged: true,
        }
    }

    fn pool() -> Vec<(Candidate, Evaluation)> {
        (0..3u64)
            .map(|s| {
                let c = Candidate::baseline(s);
                let e = synthetic(&c);
                (c, e)
            })
            .collect()
    }

    fn space() -> SearchSpace {
        SearchSpace {
            variants: 3,
            specs: SpecDomain::all(),
            faults: FaultDomain::bursts(256, 8),
            churn: ChurnDomain::rewirings(256, 4),
            graph: GraphDomain::generated(4),
        }
    }

    #[test]
    fn search_improves_over_the_seed_pool_and_is_deterministic() {
        let config = SearchConfig {
            iterations: 60,
            seed: 9,
            cooling: 0.9,
        };
        let a = worst_case_search(&space(), &pool(), synthetic, &config);
        let b = worst_case_search(&space(), &pool(), synthetic, &config);
        assert_eq!(a.best, b.best, "search is deterministic in its seed");
        assert_eq!(a.evaluations, 60);
        let pool_max = pool().iter().map(|(_, e)| e.steps).max().unwrap();
        assert!(
            a.best.steps > pool_max,
            "60 structured iterations should beat the random pool ({} vs {pool_max})",
            a.best.steps
        );
        // The certificate reproduces.
        assert_eq!(synthetic(&a.best.candidate).steps, a.best.steps);
    }

    #[test]
    fn worst_found_is_never_below_the_pool_maximum() {
        // Even a zero-iteration search returns the pool's max — the
        // invariant behind "worst-found >= mean" in reports.
        let config = SearchConfig {
            iterations: 0,
            ..SearchConfig::default()
        };
        let outcome = worst_case_search(&space(), &pool(), synthetic, &config);
        let pool_max = pool().iter().map(|(_, e)| e.steps).max().unwrap();
        assert_eq!(outcome.best.steps, pool_max);
        assert_eq!(outcome.evaluations, 0);
    }

    #[test]
    fn island_search_is_thread_count_invariant_and_beats_single_islands() {
        let config = IslandConfig {
            islands: 4,
            iterations: 25,
            seed: 17,
            cooling: 0.9,
        };
        let serial = worst_case_search_islands(
            &space(),
            &pool(),
            synthetic,
            &config,
            &BatchRunner::with_threads(1),
        );
        for threads in [2, 4, 16] {
            let parallel = worst_case_search_islands(
                &space(),
                &pool(),
                synthetic,
                &config,
                &BatchRunner::with_threads(threads),
            );
            assert_eq!(
                serial.best, parallel.best,
                "islands vary with {threads} threads"
            );
            assert_eq!(serial.best_island, parallel.best_island);
            assert_eq!(serial.evaluations, parallel.evaluations);
        }
        assert_eq!(serial.evaluations, 100, "islands x iterations evaluations");
        // The merge is best-of: no single island's chain beats it.
        for island in 0..config.islands {
            let single = worst_case_search(
                &space(),
                &pool(),
                synthetic,
                &SearchConfig {
                    iterations: config.iterations,
                    seed: island_seed(config.seed, island),
                    cooling: config.cooling,
                },
            );
            assert!(single.best.steps <= serial.best.steps);
            if island == serial.best_island {
                assert_eq!(single.best, serial.best, "the winning island's chain");
            }
        }
        // Certificates still reproduce through the merge.
        assert_eq!(synthetic(&serial.best.candidate).steps, serial.best.steps);
    }

    #[test]
    fn island_seeds_are_disjoint() {
        let mut seeds: Vec<u64> = (0..64).map(|i| island_seed(0xADF5, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "island seed streams must be distinct");
    }

    #[test]
    fn domain_restrictions_are_respected() {
        let space = SearchSpace {
            variants: 1,
            specs: SpecDomain::state_blind(),
            faults: FaultDomain::disabled(),
            churn: ChurnDomain::disabled(),
            graph: GraphDomain::disabled(),
        };
        let config = SearchConfig {
            iterations: 200,
            seed: 3,
            cooling: 0.95,
        };
        let outcome = worst_case_search(
            &space,
            &pool(),
            |c| {
                assert!(
                    !matches!(c.spec, SchedulerSpec::Greedy { .. }),
                    "greedy is outside the domain"
                );
                assert_eq!(c.variant, 0, "single-variant space never switches");
                assert!(c.faults.is_empty(), "disabled fault domain stays empty");
                assert!(c.churn.is_empty(), "disabled churn domain stays empty");
                assert_eq!(c.graph, None, "disabled graph domain keeps the family");
                synthetic(c)
            },
            &config,
        );
        assert!(outcome.best.steps >= 10);
    }

    #[test]
    fn enabled_churn_and_graph_domains_are_explored() {
        let config = SearchConfig {
            iterations: 400,
            seed: 7,
            cooling: 0.95,
        };
        let mut saw_churn = false;
        let mut saw_graph = false;
        worst_case_search(
            &space(),
            &pool(),
            |c| {
                saw_churn |= !c.churn.is_empty();
                saw_graph |= c.graph.is_some();
                synthetic(c)
            },
            &config,
        );
        assert!(saw_churn, "churn proposals reach the evaluator");
        assert!(saw_graph, "graph proposals reach the evaluator");
    }

    #[test]
    fn mutations_stay_in_bounds() {
        let domain = SpecDomain::all();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut spec = SchedulerSpec::Random;
        for _ in 0..2_000 {
            spec = domain.tweak(&spec, &mut rng);
            match &spec {
                SchedulerSpec::Random => {}
                SchedulerSpec::Weighted {
                    hot_per_mille,
                    bias,
                    ..
                } => {
                    assert!((1..=500).contains(hot_per_mille));
                    assert!((2..=domain.max_bias).contains(bias));
                }
                SchedulerSpec::EpochPartition { blocks, epoch_len } => {
                    assert!((2..=domain.max_blocks).contains(blocks));
                    assert!((1..=domain.max_epoch_len).contains(epoch_len));
                }
                SchedulerSpec::Greedy { candidates } => {
                    assert!((2..=domain.max_candidates).contains(candidates));
                }
            }
        }
    }
}
