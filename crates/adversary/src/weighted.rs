//! Non-uniform arc distributions.
//!
//! The population-protocol model's scheduler picks arcs uniformly; a
//! [`WeightedScheduler`] skews that distribution while keeping every weight
//! positive, so the schedule remains fair (every arc keeps a positive
//! per-step probability, hence fires infinitely often almost surely) but the
//! interaction rates are adversarially unbalanced — e.g. a handful of "hot"
//! arcs hammered `bias`× as often as the rest, starving progress elsewhere.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use population::{Interaction, Result};
use population::{InteractionGraph, PopulationError, Scheduler};

/// A scheduler drawing arcs from a fixed positively-weighted distribution.
///
/// Implements the typed [`Scheduler`] trait for every graph (the arc set is
/// fixed at construction), and therefore also the erased
/// `population::DynScheduler` through the blanket impl.
#[derive(Clone, Debug)]
pub struct WeightedScheduler {
    arcs: Vec<Interaction>,
    /// Cumulative weights; `cumulative[i]` is the total weight of
    /// `arcs[..=i]`.
    cumulative: Vec<u64>,
    total: u64,
}

impl WeightedScheduler {
    /// Creates a scheduler over `arcs` with the given positive weights.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::EmptyArcSet`] if `arcs` is empty or if
    /// **any** weight is zero — a zero-weight arc would never fire,
    /// silently removing it from the schedulable arc set and breaking the
    /// fairness contract this type promises (every arc keeps a positive
    /// per-step probability).
    ///
    /// # Panics
    ///
    /// Panics if `arcs` and `weights` have different lengths.
    pub fn new(arcs: Vec<Interaction>, weights: Vec<u64>) -> Result<Self> {
        assert_eq!(
            arcs.len(),
            weights.len(),
            "one weight per arc ({} arcs, {} weights)",
            arcs.len(),
            weights.len()
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0u64;
        for w in weights {
            if w == 0 {
                return Err(PopulationError::EmptyArcSet);
            }
            total = total
                .checked_add(w)
                .expect("total arc weight overflows u64");
            cumulative.push(total);
        }
        if arcs.is_empty() {
            return Err(PopulationError::EmptyArcSet);
        }
        Ok(WeightedScheduler {
            arcs,
            cumulative,
            total,
        })
    }

    /// Builds the "hot arcs" family over a graph: `hot` arcs (chosen
    /// deterministically from `seed`) receive weight `bias`, every other arc
    /// weight 1.  `hot` is clamped to `[1, num_arcs]` and `bias` to `>= 1`,
    /// so the distribution is always valid and fair.
    pub fn biased<G: InteractionGraph>(graph: &G, hot: usize, bias: u64, seed: u64) -> Self {
        let arcs = graph.arcs();
        let hot = hot.clamp(1, arcs.len());
        let bias = bias.max(1);
        // Partial Fisher-Yates: the first `hot` positions of `order` are a
        // uniform sample of distinct arc indices.
        let mut order: Vec<usize> = (0..arcs.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for i in 0..hot {
            let j = rng.gen_range(i..order.len());
            order.swap(i, j);
        }
        let mut weights = vec![1u64; arcs.len()];
        for &i in &order[..hot] {
            weights[i] = bias;
        }
        WeightedScheduler::new(arcs, weights).expect("non-empty graph arc set")
    }

    /// The arcs this scheduler draws from.
    pub fn arcs(&self) -> &[Interaction] {
        &self.arcs
    }

    /// The weight of arc `i` (as passed at construction).
    pub fn weight(&self, i: usize) -> u64 {
        self.cumulative[i] - if i == 0 { 0 } else { self.cumulative[i - 1] }
    }

    /// The total weight of the distribution.
    pub fn total_weight(&self) -> u64 {
        self.total
    }
}

impl<G: InteractionGraph> Scheduler<G> for WeightedScheduler {
    fn next_interaction<R: Rng + ?Sized>(
        &mut self,
        _graph: &G,
        rng: &mut R,
    ) -> Result<Interaction> {
        let x = rng.gen_range(0..self.total);
        // First index whose cumulative weight exceeds x.
        let idx = self.cumulative.partition_point(|&c| c <= x);
        Ok(self.arcs[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::DirectedRing;

    #[test]
    fn empty_or_zero_weight_distributions_are_rejected() {
        assert!(matches!(
            WeightedScheduler::new(vec![], vec![]),
            Err(PopulationError::EmptyArcSet)
        ));
        assert!(matches!(
            WeightedScheduler::new(vec![Interaction::new(0, 1)], vec![0]),
            Err(PopulationError::EmptyArcSet)
        ));
        // A single zero weight among positive ones is rejected too: that arc
        // would never fire, violating the documented fairness contract.
        assert!(matches!(
            WeightedScheduler::new(
                vec![
                    Interaction::new(0, 1),
                    Interaction::new(1, 2),
                    Interaction::new(2, 0)
                ],
                vec![0, 1, 1]
            ),
            Err(PopulationError::EmptyArcSet)
        ));
    }

    #[test]
    fn weights_skew_the_empirical_distribution() {
        let ring = DirectedRing::new(4).unwrap();
        // Arc 0 gets weight 9, the rest weight 1: expect ~75% of draws.
        let mut weights = vec![1u64; 4];
        weights[0] = 9;
        let mut sched = WeightedScheduler::new(ring.arcs(), weights).unwrap();
        assert_eq!(sched.total_weight(), 12);
        assert_eq!(sched.weight(0), 9);
        assert_eq!(sched.weight(1), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut hot = 0usize;
        let draws = 6_000;
        for _ in 0..draws {
            let arc =
                Scheduler::<DirectedRing>::next_interaction(&mut sched, &ring, &mut rng).unwrap();
            if arc == ring.arc(0) {
                hot += 1;
            }
        }
        let frac = hot as f64 / draws as f64;
        assert!((frac - 0.75).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn every_positive_weight_arc_fires() {
        let ring = DirectedRing::new(8).unwrap();
        let mut sched = WeightedScheduler::biased(&ring, 2, 64, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..20_000 {
            let arc =
                Scheduler::<DirectedRing>::next_interaction(&mut sched, &ring, &mut rng).unwrap();
            seen[arc.initiator().index()] = true;
        }
        assert!(seen.iter().all(|&b| b), "fairness: every arc fires");
    }

    #[test]
    fn biased_construction_is_deterministic_and_clamped() {
        let ring = DirectedRing::new(6).unwrap();
        let a = WeightedScheduler::biased(&ring, 2, 16, 42);
        let b = WeightedScheduler::biased(&ring, 2, 16, 42);
        assert_eq!(a.cumulative, b.cumulative);
        // hot = 0 clamps to 1; bias = 0 clamps to 1 (uniform).
        let c = WeightedScheduler::biased(&ring, 0, 0, 1);
        assert_eq!(c.total_weight(), 6);
    }
}
