//! Serializable scheduler descriptions.
//!
//! The worst-case search mutates *descriptions* of schedulers, not live
//! scheduler objects: a [`SchedulerSpec`] is a small, exactly-comparable
//! value (integer parameters only, no floats) that deterministically builds
//! the same `population::SchedulerFamily` every time.  That is what makes
//! [`crate::WorstCase`] certificates reproducible — re-running a certificate
//! rebuilds the identical scheduler from its spec.

use population::SchedulerFamily;

use crate::epoch::EpochPartitionScheduler;
use crate::greedy::{ArcScorer, GreedyAdversary};
use crate::weighted::WeightedScheduler;

/// A value-level description of one scheduler-zoo member.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerSpec {
    /// The uniformly random scheduler (the model's default; builds the
    /// scenario fast path, not a boxed scheduler).
    Random,
    /// [`WeightedScheduler::biased`]: `hot_per_mille` ‰ of the arcs (at
    /// least one) weighted `bias`×, hot set drawn from `seed`.
    Weighted {
        /// Hot-arc share of the arc set, in per-mille (clamped to ≥ 1 arc).
        hot_per_mille: u16,
        /// Weight multiplier of the hot arcs.
        bias: u32,
        /// Seed selecting which arcs are hot.
        seed: u64,
    },
    /// [`EpochPartitionScheduler`]: `blocks` arc groups, `epoch_len` steps
    /// per epoch.
    EpochPartition {
        /// Number of groups in the arc partition.
        blocks: u32,
        /// Steps per epoch.
        epoch_len: u64,
    },
    /// [`GreedyAdversary`]: `candidates` arcs sampled and scored per step
    /// against the driver-supplied potential.
    Greedy {
        /// Candidate arcs scored per step.
        candidates: u32,
    },
}

impl SchedulerSpec {
    /// A compact, stable key for reports and JSON output.
    pub fn key(&self) -> String {
        match self {
            SchedulerSpec::Random => "random".to_string(),
            SchedulerSpec::Weighted {
                hot_per_mille,
                bias,
                seed,
            } => format!("weighted(hot={hot_per_mille}pm,bias={bias},seed={seed})"),
            SchedulerSpec::EpochPartition { blocks, epoch_len } => {
                format!("epoch-partition(blocks={blocks},epoch={epoch_len})")
            }
            SchedulerSpec::Greedy { candidates } => format!("greedy(candidates={candidates})"),
        }
    }

    /// `true` for the default uniformly random scheduler.
    pub fn is_random(&self) -> bool {
        matches!(self, SchedulerSpec::Random)
    }

    /// Builds the scheduler family this spec describes.  `scorer` is the
    /// protocol-supplied potential for [`SchedulerSpec::Greedy`]; the other
    /// variants ignore it.
    ///
    /// # Panics
    ///
    /// Panics if a greedy spec is built without a scorer — greedy adversaries
    /// are only meaningful against a potential, so the driver must either
    /// supply one or keep `Greedy` out of its search domain.
    pub fn family(&self, scorer: Option<ArcScorer>) -> SchedulerFamily {
        match self.clone() {
            SchedulerSpec::Random => SchedulerFamily::Random,
            SchedulerSpec::Weighted {
                hot_per_mille,
                bias,
                seed,
            } => SchedulerFamily::custom(self.key(), move |_pt, graph| {
                let arcs = population::InteractionGraph::num_arcs(graph);
                let hot = (arcs * hot_per_mille as usize).div_ceil(1000).max(1);
                Box::new(WeightedScheduler::biased(graph, hot, bias as u64, seed))
            }),
            SchedulerSpec::EpochPartition { blocks, epoch_len } => {
                SchedulerFamily::custom(self.key(), move |_pt, graph| {
                    Box::new(
                        EpochPartitionScheduler::new(graph, blocks as usize, epoch_len)
                            .expect("scenario graphs have arcs"),
                    )
                })
            }
            SchedulerSpec::Greedy { candidates } => {
                let scorer = scorer.unwrap_or_else(|| {
                    panic!("SchedulerSpec::Greedy requires a protocol-supplied scorer")
                });
                SchedulerFamily::custom(self.key(), move |_pt, _graph| {
                    Box::new(GreedyAdversary::new(scorer.clone(), candidates as usize))
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{Configuration, DynState, GraphFamily, SweepPoint};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn keys_are_distinct_and_descriptive() {
        let specs = [
            SchedulerSpec::Random,
            SchedulerSpec::Weighted {
                hot_per_mille: 125,
                bias: 16,
                seed: 7,
            },
            SchedulerSpec::EpochPartition {
                blocks: 4,
                epoch_len: 256,
            },
            SchedulerSpec::Greedy { candidates: 4 },
        ];
        let keys: Vec<String> = specs.iter().map(|s| s.key()).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
        assert!(specs[0].is_random() && !specs[1].is_random());
    }

    #[test]
    fn families_build_working_schedulers() {
        let graph = GraphFamily::DirectedRing.build(8).unwrap();
        let states: Vec<DynState> = Configuration::uniform(8, 0u32)
            .into_states()
            .into_iter()
            .map(DynState::new)
            .collect();
        let point = SweepPoint::new(8, 1);
        let scorer: ArcScorer = Arc::new(|_s, _a| 1.0);
        for spec in [
            SchedulerSpec::Weighted {
                hot_per_mille: 250,
                bias: 8,
                seed: 3,
            },
            SchedulerSpec::EpochPartition {
                blocks: 2,
                epoch_len: 16,
            },
            SchedulerSpec::Greedy { candidates: 3 },
        ] {
            let family = spec.family(Some(scorer.clone()));
            assert_eq!(family.name(), spec.key());
            match family {
                population::SchedulerFamily::Custom { build, .. } => {
                    let mut sched = build(&point, &graph);
                    let mut rng = ChaCha8Rng::seed_from_u64(5);
                    for _ in 0..50 {
                        sched.schedule(&graph, &states, &mut rng).unwrap();
                    }
                }
                population::SchedulerFamily::Random => panic!("expected a custom family"),
            }
        }
        assert!(SchedulerSpec::Random.family(None).is_random());
    }

    #[test]
    #[should_panic(expected = "requires a protocol-supplied scorer")]
    fn greedy_without_scorer_panics() {
        let _ = SchedulerSpec::Greedy { candidates: 2 }.family(None);
    }
}
