//! The state-aware greedy adversary.
//!
//! [`GreedyAdversary`] is the one zoo member the typed [`population::Scheduler`]
//! trait cannot express: it inspects the **current configuration** before
//! every step, scores a pool of candidate arcs against a protocol-supplied
//! potential, and schedules the most convergence-hostile one.  It therefore
//! implements `population::DynScheduler` directly (the erased,
//! state-visible scheduler interface introduced for exactly this purpose).
//!
//! The potential is an [`ArcScorer`]: *higher scores are more hostile*.  A
//! typical scorer clones the two endpoint states, applies the protocol's
//! transition to the clones and scores the outcome — e.g. "did this
//! interaction preserve surplus leaders?" for elimination-style protocols,
//! or a segment/token count from `ssle-core` for the paper's protocol.
//! Candidate arcs are drawn from the graph's own sampler with the
//! simulation's RNG, so runs stay seed-deterministic.

use std::fmt;
use std::sync::Arc;

use population::{AnyGraph, DynScheduler, DynState, Interaction, InteractionGraph, Result};
use rand_chacha::ChaCha8Rng;

/// A hostility score for scheduling one arc in one configuration: higher
/// means more convergence-hostile.
pub type ArcScorer = Arc<dyn Fn(&[DynState], Interaction) -> f64 + Send + Sync>;

/// A scheduler that greedily picks the most hostile of `candidates` sampled
/// arcs at every step.
#[derive(Clone)]
pub struct GreedyAdversary {
    scorer: ArcScorer,
    candidates: usize,
}

impl GreedyAdversary {
    /// Creates the adversary; `candidates` (clamped to `>= 1`) arcs are
    /// sampled and scored per step.  With one candidate the adversary
    /// degenerates to the uniformly random scheduler (at a different RNG
    /// consumption rate).
    pub fn new(scorer: ArcScorer, candidates: usize) -> Self {
        GreedyAdversary {
            scorer,
            candidates: candidates.max(1),
        }
    }

    /// Candidate arcs scored per step.
    pub fn candidates(&self) -> usize {
        self.candidates
    }
}

impl fmt::Debug for GreedyAdversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GreedyAdversary")
            .field("candidates", &self.candidates)
            .finish()
    }
}

impl DynScheduler for GreedyAdversary {
    fn schedule(
        &mut self,
        graph: &AnyGraph,
        states: &[DynState],
        rng: &mut ChaCha8Rng,
    ) -> Result<Interaction> {
        let mut best = graph.sample(rng);
        let mut best_score = (self.scorer)(states, best);
        for _ in 1..self.candidates {
            let arc = graph.sample(rng);
            let score = (self.scorer)(states, arc);
            // Strict `>`: ties keep the earliest candidate, so the pick is
            // deterministic given the RNG stream.
            if score > best_score {
                best = arc;
                best_score = score;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{DirectedRing, GraphFamily};
    use rand::SeedableRng;

    fn ring_graph(n: usize) -> AnyGraph {
        GraphFamily::DirectedRing.build(n).unwrap()
    }

    #[test]
    fn picks_the_highest_scoring_candidate() {
        // Score an arc by its initiator's state value: the adversary must
        // never pick a sampled candidate with a smaller value than another.
        let scorer: ArcScorer = Arc::new(|states, arc| {
            *states[arc.initiator().index()]
                .downcast_ref::<u32>()
                .unwrap() as f64
        });
        let graph = ring_graph(8);
        let states: Vec<DynState> = (0..8u32).map(DynState::new).collect();
        let mut adversary = GreedyAdversary::new(scorer.clone(), 8);
        assert_eq!(adversary.candidates(), 8);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            // Reference: replay the same candidate stream and take the max.
            let mut reference_rng = rng.clone();
            let mut max = f64::NEG_INFINITY;
            for _ in 0..8 {
                let arc = graph.sample(&mut reference_rng);
                max = max.max(scorer(&states, arc));
            }
            let arc = adversary.schedule(&graph, &states, &mut rng).unwrap();
            assert_eq!(scorer(&states, arc), max);
        }
    }

    #[test]
    fn deterministic_given_the_rng_stream() {
        let scorer: ArcScorer = Arc::new(|states, arc| {
            *states[arc.responder().index()]
                .downcast_ref::<u32>()
                .unwrap() as f64
        });
        let graph = ring_graph(6);
        let states: Vec<DynState> = (0..6u32).map(DynState::new).collect();
        let mut a = GreedyAdversary::new(scorer.clone(), 3);
        let mut b = GreedyAdversary::new(scorer, 3);
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let mut rng_b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..500 {
            assert_eq!(
                a.schedule(&graph, &states, &mut rng_a).unwrap(),
                b.schedule(&graph, &states, &mut rng_b).unwrap()
            );
        }
    }

    #[test]
    fn candidates_clamp_to_at_least_one() {
        let scorer: ArcScorer = Arc::new(|_s, _a| 0.0);
        let adversary = GreedyAdversary::new(scorer, 0);
        assert_eq!(adversary.candidates(), 1);
        assert!(format!("{adversary:?}").contains("candidates"));
        // One candidate consumes the RNG exactly like the uniform sampler.
        let graph = ring_graph(5);
        let states: Vec<DynState> = (0..5u32).map(DynState::new).collect();
        let mut adversary = GreedyAdversary::new(Arc::new(|_s, _a| 0.0), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut reference = ChaCha8Rng::seed_from_u64(2);
        let ring = DirectedRing::new(5).unwrap();
        for _ in 0..100 {
            assert_eq!(
                adversary.schedule(&graph, &states, &mut rng).unwrap(),
                ring.sample(&mut reference)
            );
        }
    }
}
