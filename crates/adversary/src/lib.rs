//! # ssle-adversary
//!
//! The adversary engine: everything the workspace uses to stress the
//! *self-stabilization* claim of the paper beyond the benign setting.
//!
//! The paper proves convergence from **arbitrary** initial configurations
//! under the uniformly random scheduler; average-case sweeps from sampled
//! inits exercise only a thin slice of that contract.  This crate opens the
//! worst-case workload class:
//!
//! * a **scheduler zoo** — non-uniform arc distributions
//!   ([`WeightedScheduler`]), epoch-confined interaction patterns with an
//!   empirical fairness auditor ([`EpochPartitionScheduler`],
//!   [`FairnessAuditor`]), and a state-aware greedy adversary that scores
//!   candidate arcs against a protocol-supplied potential
//!   ([`GreedyAdversary`]);
//! * a serializable **scheduler description** ([`SchedulerSpec`]) that turns
//!   into a `population::SchedulerFamily`, so any `Scenario` can be re-run
//!   under any zoo member via `Scenario::with_scheduler`;
//! * a serializable **fault-plan description** ([`FaultPlanSpec`]) — an
//!   integer-exact crash schedule (timing, placement, extent — including
//!   targeted placements, predicate-coupled [`TriggeredEventSpec`]s and
//!   bounded [`ByzantineWindowSpec`]s) that builds a
//!   `population::FaultPlan`, so the search can also crash agents mid-run
//!   and certificates replay through `Scenario`'s fault path;
//! * serializable **topology descriptions** — [`GraphSpec`] mirrors the
//!   generated `population::GraphFamily` variants and [`ChurnPlanSpec`] is
//!   an integer-exact churn schedule that builds a `population::ChurnPlan`,
//!   so candidates can also replace the interaction graph and churn it
//!   mid-run; both axes are gated behind [`ChurnDomain`] / [`GraphDomain`]
//!   (disabled domains keep the proposal RNG stream bit-identical to the
//!   smaller space, so earlier certificates replay unchanged);
//! * a **worst-case search engine** ([`worst_case_search`]) — deterministic
//!   mutation/annealing over initial-condition variants, seeds, scheduler
//!   parameters and fault plans that maximizes observed stabilization time
//!   and emits reproducible [`WorstCase`] certificates; the chain can run as
//!   N deterministic **islands** merged best-of
//!   ([`worst_case_search_islands`]) — bit-reproducible for a fixed island
//!   count at any thread count;
//! * a **livelock certifier** ([`certify_livelock`]) — replays a censored
//!   worst case with configuration-recurrence detection armed and, for
//!   deterministic-phase schedulers, exhaustively checks the phase closure
//!   of the recurrent configuration, upgrading "did not converge within the
//!   budget" to a checked [`CertifiedLivelock`] certificate.
//!
//! The crate is protocol-agnostic: it only speaks the erased vocabulary of
//! `population::scenario` (`DynState`, `DynScheduler`, `SchedulerFamily`).
//! The Table 1 wiring — which scenarios to attack, which potentials to hand
//! the greedy adversary — lives in `ssle-bench` (`stabilization` module, the
//! `stabilization_report` and `fig_worstcase` binaries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certify;
pub mod epoch;
pub mod faultplan;
pub mod greedy;
pub mod search;
pub mod spec;
pub mod weighted;

pub use certify::{certify_livelock, spec_phases, CertifiedLivelock};
pub use epoch::{EpochPartitionScheduler, FairnessAuditor, FairnessCertificate};
pub use faultplan::{
    ByzantineWindowSpec, ChurnDomain, ChurnEventSpec, ChurnKindSpec, ChurnPlanSpec, FaultDomain,
    FaultEventSpec, FaultPlacementSpec, FaultPlanSpec, GraphDomain, GraphSpec, TriggeredEventSpec,
};
pub use greedy::{ArcScorer, GreedyAdversary};
pub use search::{
    worst_case_search, worst_case_search_islands, Candidate, Evaluation, IslandConfig,
    IslandOutcome, SearchConfig, SearchOutcome, SearchSpace, SearchStats, SpecDomain, WorstCase,
};
pub use spec::SchedulerSpec;
pub use weighted::WeightedScheduler;
