//! Livelock certification: from an empirical "did not converge" to a
//! checked "can never converge".
//!
//! The worst-case search ([`crate::worst_case_search`]) reports censored
//! runs — `converged: false` at the step budget — but a censored run cannot
//! distinguish a provable livelock from a slow convergence.  This module
//! closes that gap for **deterministic-phase** schedulers (today:
//! [`SchedulerSpec::EpochPartition`]):
//!
//! 1. [`Scenario::try_run_detecting`] replays the candidate with the
//!    recurrence detector armed; a confirmed
//!    [`RecurrenceCandidate`](population::RecurrenceCandidate) pins a
//!    configuration the run revisited at the same scheduler phase.
//! 2. [`spec_phases`] reconstructs the spec's exact phase structure — which
//!    arcs the scheduler can pick at which phase — as an
//!    [`ArcPhases`] value.
//! 3. [`population::phase_closure`] walks everything the scheduler could
//!    still do from the recurrent configuration.  The walk grades the
//!    certificate: a finite, stop-free closure upgrades it to
//!    [`exhaustive`](CertifiedLivelock::exhaustive) (**no** run of the
//!    scheduler from there can ever converge, regardless of its internal
//!    randomness); a walk that reaches a stop configuration **refutes** the
//!    livelock (some schedule converges — the recurrence was a
//!    probability-trap, not a certainty) and certification returns `None`;
//!    a walk that exceeds its limits leaves the recurrence-tier certificate
//!    standing — the exact replayed revisit, pinned by entry step, period
//!    and configuration digest.
//!
//! Certification is deliberately conservative: converged runs, runs without
//! a confirmed recurrence, runs with fault events still pending (the future
//! schedule would differ from the closure's model), memoryless schedulers
//! (no phase to anchor on) and closures that reach a stop configuration all
//! return `None` rather than guessing.

use population::{
    phase_closure, ArcPhases, ClosureLimits, Interaction, InteractionGraph, Result, Scenario,
    SweepPoint,
};

use crate::spec::SchedulerSpec;

/// A checked livelock certificate: the run entered configuration
/// `config_digest` at step `entry_step` and revisited it — bit-for-bit, at
/// the same scheduler phase `phase` — `period` steps later, with no fault
/// event left to break the cycle.  Replaying the scenario reproduces the
/// revisit exactly.
///
/// When [`exhaustive`](Self::exhaustive) is also set, the phase closure
/// from the recurrent configuration (covering `closure_configs` distinct
/// configurations) was walked to completion and is stop-free: no schedule
/// the scheduler could draw from there ever converges.  Otherwise the
/// closure exceeded its limits and the certificate stands on the replayed
/// recurrence alone.
///
/// All fields are exact integers so the certificate is `Eq`-comparable and
/// serializes without loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CertifiedLivelock {
    /// Simulation step at which the recurrent configuration was first
    /// snapshotted.
    pub entry_step: u64,
    /// Steps between the two confirmed visits.
    pub period: u64,
    /// Position-salted digest of the recurrent configuration
    /// ([`population::DynState::digest`] summed per
    /// [`population::ConfigDigest`]).
    pub config_digest: u64,
    /// The scheduler phase (step counter modulo one rotation) at both
    /// visits and at the root of the closure walk.
    pub phase: u64,
    /// `true` when the phase closure finished within its limits and found
    /// no stop configuration — the livelock holds under *every* schedule,
    /// not just the replayed one.
    pub exhaustive: bool,
    /// Distinct configurations in the exhaustive stop-free closure; `0`
    /// when the closure exceeded its limits (`exhaustive == false`).
    pub closure_configs: u64,
}

/// The exact phase structure of `spec` over `arcs` (in graph order, the
/// order every scheduler built from the spec sees).
///
/// [`SchedulerSpec::EpochPartition`] partitions the arcs round-robin by
/// index — group `g` holds the arcs whose index is `≡ g (mod blocks)`, with
/// `blocks` clamped to `[1, arcs.len()]` and `epoch_len` to `≥ 1`, exactly
/// mirroring [`EpochPartitionScheduler::new`](crate::EpochPartitionScheduler::new).
/// Every other spec is memoryless — any arc at any step — which
/// [`ArcPhases::unrestricted`] models as a single always-active group.
pub fn spec_phases(spec: &SchedulerSpec, arcs: Vec<Interaction>) -> ArcPhases {
    match *spec {
        SchedulerSpec::EpochPartition { blocks, epoch_len } => {
            let blocks = (blocks as usize).clamp(1, arcs.len().max(1));
            let mut groups = vec![Vec::new(); blocks];
            for (index, arc) in arcs.into_iter().enumerate() {
                groups[index % blocks].push(arc);
            }
            ArcPhases::cyclic(groups, epoch_len)
        }
        SchedulerSpec::Random | SchedulerSpec::Weighted { .. } | SchedulerSpec::Greedy { .. } => {
            ArcPhases::unrestricted(arcs)
        }
    }
}

/// Attempts to certify that `scenario` at `point` livelocks forever.
///
/// `scenario` must already run under the scheduler `spec` describes (the
/// caller builds it via [`Scenario::with_scheduler`] with
/// [`SchedulerSpec::family`]); `spec` is consulted only for its phase
/// structure.  Returns `Ok(Some(_))` exactly when the detection run
/// confirmed a recurrence **and** the phase closure from the recurrent
/// configuration did not reach a stop configuration; the certificate is
/// [`exhaustive`](CertifiedLivelock::exhaustive) when the closure also
/// finished within `limits`.  Convergence, no recurrence within the budget,
/// pending fault events, a memoryless scheduler, or a closure that proves a
/// converging schedule exists — all `Ok(None)`.
///
/// # Errors
///
/// Propagates the same errors as [`Scenario::try_run`] (graph construction,
/// scheduler exhaustion, a non-empty fault plan without a corruption
/// function).
pub fn certify_livelock(
    scenario: &Scenario,
    spec: &SchedulerSpec,
    point: &SweepPoint,
    limits: &ClosureLimits,
) -> Result<Option<CertifiedLivelock>> {
    let run = scenario.try_run_detecting(point)?;
    if run.report.converged() || run.faults_pending {
        return Ok(None);
    }
    let Some(candidate) = run.recurrence else {
        return Ok(None);
    };
    let Some(phase) = candidate.phase else {
        return Ok(None);
    };
    let graph = scenario.graph_family().build(point.n)?;
    let phases = spec_phases(spec, graph.arcs());
    let mut prepared = scenario.prepare(point);
    let outcome = phase_closure(
        &prepared.protocol,
        &phases,
        &candidate.config,
        phase,
        &mut *prepared.stop,
        limits,
    );
    if !outcome.stop_free {
        // The walk reached a configuration that satisfies the stop
        // predicate: some schedule from the recurrent configuration
        // converges, so this is provably not a livelock.
        return Ok(None);
    }
    let exhaustive = outcome.certifies_livelock();
    Ok(Some(CertifiedLivelock {
        entry_step: candidate.entry_step,
        period: candidate.period,
        config_digest: candidate.config_digest,
        phase,
        exhaustive,
        closure_configs: if exhaustive {
            outcome.configs as u64
        } else {
            0
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{Configuration, GraphFamily, LeaderElection, Protocol, ScenarioBuilder};

    /// Pairwise leader elimination; all-false is a dead (leaderless) fixed
    /// point, so starting there livelocks under every scheduler.
    #[derive(Clone, Debug)]
    struct Fratricide;
    impl Protocol for Fratricide {
        type State = bool;
        fn interact(&self, initiator: &mut bool, responder: &mut bool) {
            if *initiator && *responder {
                *responder = false;
            }
        }
    }
    impl LeaderElection for Fratricide {
        fn is_leader(&self, state: &bool) -> bool {
            *state
        }
    }

    fn scenario(spec: &SchedulerSpec, all_leaders: bool) -> Scenario {
        let builder = ScenarioBuilder::new("fratricide", |_pt: &SweepPoint| Fratricide)
            .graph(GraphFamily::Complete)
            .init(move |_p, pt| Configuration::uniform(pt.n, all_leaders))
            .stop_when("unique-leader", |p: &Fratricide, c| {
                p.has_unique_leader(c.states())
            })
            .check_every(|_pt| 64)
            .step_budget(|_pt| 200_000);
        let builder = match spec {
            SchedulerSpec::Random => builder,
            other => builder.scheduler(other.family(None)),
        };
        builder.build().unwrap()
    }

    #[test]
    fn epoch_partition_livelock_is_certified() {
        let spec = SchedulerSpec::EpochPartition {
            blocks: 3,
            epoch_len: 7,
        };
        let certified = certify_livelock(
            &scenario(&spec, false),
            &spec,
            &SweepPoint::new(4, 11),
            &ClosureLimits::default(),
        )
        .unwrap()
        .expect("a dead configuration under a phased scheduler must certify");
        // All-false is a fixed point: the closure holds exactly one
        // configuration and the recurrence period divides into rotations.
        assert!(certified.exhaustive);
        assert_eq!(certified.closure_configs, 1);
        assert!(certified.period > 0);
        let rotation = 3 * 7;
        assert!(certified.phase < rotation);
        // Deterministic end to end: a second run reproduces the certificate.
        let again = certify_livelock(
            &scenario(&spec, false),
            &spec,
            &SweepPoint::new(4, 11),
            &ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(again, Some(certified));
    }

    #[test]
    fn choked_closure_limits_leave_the_recurrence_tier_standing() {
        let spec = SchedulerSpec::EpochPartition {
            blocks: 3,
            epoch_len: 7,
        };
        // A node budget too small for even the single-configuration orbit:
        // the closure stays inconclusive, but the replayed recurrence is
        // still a certificate — just not an exhaustive one.
        let recurrence_only = certify_livelock(
            &scenario(&spec, false),
            &spec,
            &SweepPoint::new(4, 11),
            &ClosureLimits {
                max_configs: 4096,
                max_nodes: 2,
            },
        )
        .unwrap()
        .expect("the replayed recurrence certifies even when the closure cannot finish");
        assert!(!recurrence_only.exhaustive);
        assert_eq!(recurrence_only.closure_configs, 0);
        // Same recurrence as the exhaustive certificate, different grade.
        let exhaustive = certify_livelock(
            &scenario(&spec, false),
            &spec,
            &SweepPoint::new(4, 11),
            &ClosureLimits::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(recurrence_only.entry_step, exhaustive.entry_step);
        assert_eq!(recurrence_only.period, exhaustive.period);
        assert_eq!(recurrence_only.config_digest, exhaustive.config_digest);
        assert_eq!(recurrence_only.phase, exhaustive.phase);
    }

    #[test]
    fn converging_runs_and_memoryless_schedulers_are_not_certified() {
        let spec = SchedulerSpec::EpochPartition {
            blocks: 2,
            epoch_len: 4,
        };
        // All-leaders converges to a unique leader: nothing to certify.
        let converged = certify_livelock(
            &scenario(&spec, true),
            &spec,
            &SweepPoint::new(4, 3),
            &ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(converged, None);
        // The same dead configuration under the memoryless random scheduler:
        // no phase, so detection never arms and certification abstains even
        // though the livelock is real.
        let random = certify_livelock(
            &scenario(&SchedulerSpec::Random, false),
            &SchedulerSpec::Random,
            &SweepPoint::new(4, 3),
            &ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(random, None);
    }

    #[test]
    fn spec_phases_mirror_the_epoch_scheduler_partition() {
        let arcs: Vec<Interaction> = (0..7).map(|i| Interaction::new(i, (i + 1) % 8)).collect();
        let spec = SchedulerSpec::EpochPartition {
            blocks: 3,
            epoch_len: 5,
        };
        let phases = spec_phases(&spec, arcs.clone());
        assert_eq!(phases.groups().len(), 3);
        assert_eq!(phases.epoch_len(), 5);
        assert_eq!(phases.rotation(), 15);
        for (g, group) in phases.groups().iter().enumerate() {
            for arc in group {
                let index = arcs.iter().position(|a| a == arc).unwrap();
                assert_eq!(index % 3, g, "arc {index} landed in group {g}");
            }
        }
        assert_eq!(
            phases.groups().iter().map(Vec::len).sum::<usize>(),
            arcs.len(),
            "the groups partition the arc set"
        );
        // Over-clamped blocks collapse to one group per arc.
        let tight = spec_phases(
            &SchedulerSpec::EpochPartition {
                blocks: 100,
                epoch_len: 0,
            },
            arcs.clone(),
        );
        assert_eq!(tight.groups().len(), arcs.len());
        assert_eq!(tight.epoch_len(), 1, "epoch_len is clamped to >= 1");
        // Memoryless specs are a single unrestricted group.
        let unrestricted = spec_phases(&SchedulerSpec::Random, arcs.clone());
        assert_eq!(unrestricted.groups().len(), 1);
        assert_eq!(unrestricted.groups()[0], arcs);
    }
}
