//! Serializable fault-plan descriptions — the third mutation axis of the
//! worst-case search.
//!
//! Self-stabilization promises recovery from *transient* faults, so the most
//! hostile adversary does not only pick the initial configuration and the
//! schedule: it also crashes agents **mid-run**, ideally right before the
//! protocol would have converged.  [`FaultPlanSpec`] is the integer-exact,
//! exactly-comparable description of such a crash schedule — when each burst
//! fires (timing), which agents it hits (placement) and how many (extent) —
//! that deterministically builds the same [`population::FaultPlan`] every
//! time, exactly like [`crate::SchedulerSpec`] builds schedulers.  Recovery
//! is the protocol's job (that is the self-stabilization contract being
//! probed); the spec only describes the corruption events.
//!
//! The mapping to [`population::FaultPlan`] is lossless in both directions
//! ([`FaultPlanSpec::plan`] / [`FaultPlanSpec::from_plan`] round-trip,
//! property-tested in the workspace), which is what makes fault-bearing
//! [`crate::WorstCase`] certificates replayable through `Scenario`'s fault
//! path.

use population::{ByzantineWindow, FaultKind, FaultPlan};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Which agents one fault burst corrupts (the placement/extent half of a
/// [`FaultEventSpec`]; the timing half is its `at_step`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPlacementSpec {
    /// Corrupt `count` agents chosen by the run's (seeded) fault injector.
    Random {
        /// Number of agents to corrupt.
        count: u32,
    },
    /// Corrupt the contiguous clockwise block of `count` agents starting at
    /// `start` — a localized burst.
    Block {
        /// Index of the first corrupted agent.
        start: u32,
        /// Number of agents to corrupt.
        count: u32,
    },
    /// Corrupt every agent.
    All,
    /// Corrupt up to `limit` agents currently satisfying the scenario's
    /// target predicate (`ScenarioBuilder::fault_targets`) — e.g. *the
    /// current leader* with a leader predicate and `limit = 1`.  Only
    /// proposable when the driver's scenario registers a predicate
    /// ([`FaultDomain::targeted`]).
    Targeted {
        /// Maximum number of target agents to corrupt.
        limit: u32,
    },
}

impl FaultPlacementSpec {
    /// The [`FaultKind`] this placement describes.
    pub fn kind(self) -> FaultKind {
        match self {
            FaultPlacementSpec::Random { count } => FaultKind::CorruptRandomAgents {
                count: count as usize,
            },
            FaultPlacementSpec::Block { start, count } => FaultKind::CorruptBlock {
                start: start as usize,
                count: count as usize,
            },
            FaultPlacementSpec::All => FaultKind::CorruptAll,
            FaultPlacementSpec::Targeted { limit } => FaultKind::CorruptTargets {
                limit: limit as usize,
            },
        }
    }

    /// Recovers the placement of a [`FaultKind`] — the inverse of
    /// [`FaultPlacementSpec::kind`].
    ///
    /// # Panics
    ///
    /// Panics if an agent count or block start exceeds `u32::MAX` — specs
    /// are integer-exact by construction, and no practical population gets
    /// anywhere near 2³² agents.
    pub fn from_kind(kind: FaultKind) -> Self {
        match kind {
            FaultKind::CorruptRandomAgents { count } => FaultPlacementSpec::Random {
                count: count.try_into().expect("agent count fits u32"),
            },
            FaultKind::CorruptBlock { start, count } => FaultPlacementSpec::Block {
                start: start.try_into().expect("block start fits u32"),
                count: count.try_into().expect("agent count fits u32"),
            },
            FaultKind::CorruptAll => FaultPlacementSpec::All,
            FaultKind::CorruptTargets { limit } => FaultPlacementSpec::Targeted {
                limit: limit.try_into().expect("target limit fits u32"),
            },
        }
    }

    /// The placement's part of a [`FaultPlanSpec::key`].
    fn key(&self) -> String {
        match *self {
            FaultPlacementSpec::Random { count } => format!("random(count={count})"),
            FaultPlacementSpec::Block { start, count } => {
                format!("block(start={start},count={count})")
            }
            FaultPlacementSpec::All => "all".to_string(),
            FaultPlacementSpec::Targeted { limit } => format!("targeted(limit={limit})"),
        }
    }
}

/// One predicate-coupled event of a fault plan: the burst fires when the
/// scenario predicate registered under `trigger` first holds (at most once),
/// instead of at a fixed step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TriggeredEventSpec {
    /// The scenario trigger name (`ScenarioBuilder::trigger`) that arms the
    /// burst.
    pub trigger: String,
    /// Which agents the burst corrupts when it fires.
    pub placement: FaultPlacementSpec,
}

/// A bounded Byzantine window: the agents whose interaction outputs the
/// scenario's `byzantine` rewrite function may rewrite, over the step range
/// `[from_step, until_step)`.
///
/// Agents are kept sorted and deduplicated (matching
/// [`population::ByzantineWindow`]), so two specs describing the same window
/// compare equal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ByzantineWindowSpec {
    agents: Vec<u32>,
    from_step: u64,
    until_step: u64,
}

impl ByzantineWindowSpec {
    /// Builds a window spec (agents are sorted and deduplicated).
    pub fn new(agents: impl IntoIterator<Item = u32>, from_step: u64, until_step: u64) -> Self {
        let mut agents: Vec<u32> = agents.into_iter().collect();
        agents.sort_unstable();
        agents.dedup();
        ByzantineWindowSpec {
            agents,
            from_step,
            until_step,
        }
    }

    /// The Byzantine agent set, sorted and deduplicated.
    pub fn agents(&self) -> &[u32] {
        &self.agents
    }

    /// First step of the window (inclusive).
    pub fn from_step(&self) -> u64 {
        self.from_step
    }

    /// End of the window (exclusive).
    pub fn until_step(&self) -> u64 {
        self.until_step
    }

    /// `true` when the window can never rewrite anything (no agents or an
    /// empty step range) — [`FaultPlanSpec::with_byzantine`] drops such
    /// windows, exactly like [`population::FaultPlan::with_byzantine`].
    pub fn is_inert(&self) -> bool {
        self.agents.is_empty() || self.from_step >= self.until_step
    }

    /// The [`population::ByzantineWindow`] this spec describes.
    fn window(&self) -> ByzantineWindow {
        ByzantineWindow::new(
            self.agents.iter().map(|&a| a as usize),
            self.from_step,
            self.until_step,
        )
    }
}

/// One crash event of a fault plan: a step and a placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultEventSpec {
    /// The step (counted from the start of the run) before which the burst
    /// fires; step 0 fires before the first interaction.
    pub at_step: u64,
    /// Which agents the burst corrupts.
    pub placement: FaultPlacementSpec,
}

/// A value-level description of a whole crash schedule (possibly empty):
/// timed bursts, predicate-coupled (triggered) bursts and an optional
/// Byzantine window.
///
/// Events are kept sorted by step and triggered events by trigger name
/// (matching [`FaultPlan`]'s ordering for timed events), so two specs
/// describing the same schedule compare equal.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlanSpec {
    events: Vec<FaultEventSpec>,
    triggered: Vec<TriggeredEventSpec>,
    byzantine: Option<ByzantineWindowSpec>,
}

impl FaultPlanSpec {
    /// The empty schedule: no faults (the fault-free baseline every search
    /// starts from).
    pub fn none() -> Self {
        FaultPlanSpec::default()
    }

    /// Builds a spec from timed events (sorted by step; the sort is stable,
    /// so same-step events keep their given order, exactly like
    /// [`FaultPlan::at`]).
    pub fn new(mut events: Vec<FaultEventSpec>) -> Self {
        events.sort_by_key(|e| e.at_step);
        FaultPlanSpec {
            events,
            triggered: Vec::new(),
            byzantine: None,
        }
    }

    /// Schedules one more timed burst (builder-style).
    pub fn with_event(mut self, at_step: u64, placement: FaultPlacementSpec) -> Self {
        self.events.push(FaultEventSpec { at_step, placement });
        self.events.sort_by_key(|e| e.at_step);
        self
    }

    /// Couples one more burst to a scenario trigger (builder-style).
    /// Triggered events are kept sorted by trigger name (stable, so
    /// same-name events keep their given order).
    pub fn with_triggered(
        mut self,
        trigger: impl Into<String>,
        placement: FaultPlacementSpec,
    ) -> Self {
        self.triggered.push(TriggeredEventSpec {
            trigger: trigger.into(),
            placement,
        });
        self.triggered.sort_by(|a, b| a.trigger.cmp(&b.trigger));
        self
    }

    /// Attaches a Byzantine window (builder-style).  Inert windows are
    /// dropped, exactly like [`FaultPlan::with_byzantine`], so a spec with a
    /// do-nothing window equals the spec without it.
    pub fn with_byzantine(mut self, window: ByzantineWindowSpec) -> Self {
        self.byzantine = (!window.is_inert()).then_some(window);
        self
    }

    /// The scheduled timed events, sorted by step.
    pub fn events(&self) -> &[FaultEventSpec] {
        &self.events
    }

    /// The predicate-coupled events, sorted by trigger name.
    pub fn triggered(&self) -> &[TriggeredEventSpec] {
        &self.triggered
    }

    /// The Byzantine window, if one is attached (never inert).
    pub fn byzantine(&self) -> Option<&ByzantineWindowSpec> {
        self.byzantine.as_ref()
    }

    /// `true` when no fault is scheduled: no timed events, no triggered
    /// events and no Byzantine window.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.triggered.is_empty() && self.byzantine.is_none()
    }

    /// A compact, stable key for reports and JSON output (`"none"` for the
    /// empty schedule).  Purely timed schedules keep the exact key format of
    /// earlier report versions.
    pub fn key(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut parts: Vec<String> = self
            .events
            .iter()
            .map(|e| format!("{}@{}", e.placement.key(), e.at_step))
            .collect();
        parts.extend(
            self.triggered
                .iter()
                .map(|t| format!("{}?{}", t.placement.key(), t.trigger)),
        );
        if let Some(w) = &self.byzantine {
            let agents: Vec<String> = w.agents.iter().map(|a| a.to_string()).collect();
            parts.push(format!(
                "byz(agents={},from={},until={})",
                agents.join("."),
                w.from_step,
                w.until_step
            ));
        }
        parts.join("+")
    }

    /// Builds the [`FaultPlan`] this spec describes.
    pub fn plan(&self) -> FaultPlan {
        let plan = self.events.iter().fold(FaultPlan::new(), |plan, e| {
            plan.at(e.at_step, e.placement.kind())
        });
        let plan = self.triggered.iter().fold(plan, |plan, t| {
            plan.when(t.trigger.clone(), t.placement.kind())
        });
        match &self.byzantine {
            Some(w) => plan.with_byzantine(w.window()),
            None => plan,
        }
    }

    /// Recovers the spec of a [`FaultPlan`] — the inverse of
    /// [`FaultPlanSpec::plan`] (`from_plan(spec.plan()) == spec`, covered by
    /// a workspace property test).
    ///
    /// # Panics
    ///
    /// Panics if an agent count, block start or target limit exceeds
    /// `u32::MAX` — specs are integer-exact by construction, and no
    /// practical population gets anywhere near 2³² agents.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let events = plan
            .events()
            .iter()
            .map(|e| FaultEventSpec {
                at_step: e.at_step,
                placement: FaultPlacementSpec::from_kind(e.kind),
            })
            .collect();
        let mut triggered: Vec<TriggeredEventSpec> = plan
            .triggered()
            .iter()
            .map(|t| TriggeredEventSpec {
                trigger: t.trigger.clone(),
                placement: FaultPlacementSpec::from_kind(t.kind),
            })
            .collect();
        triggered.sort_by(|a, b| a.trigger.cmp(&b.trigger));
        let byzantine = plan.byzantine().map(|w| {
            ByzantineWindowSpec::new(
                w.agents()
                    .iter()
                    .map(|&a| u32::try_from(a).expect("agent index fits u32")),
                w.from_step(),
                w.until_step(),
            )
        });
        // Timed events are already sorted: FaultPlan keeps them by step.
        FaultPlanSpec {
            events,
            triggered,
            byzantine,
        }
    }
}

/// Which fault-plan mutations the worst-case search may propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDomain {
    /// Allow fault-plan proposals at all.  When `false` every candidate
    /// keeps [`FaultPlanSpec::none`] (the PR-4 search space).
    pub enabled: bool,
    /// Upper bound (inclusive) on each event's `at_step` — drivers set this
    /// to the run's step budget so every proposed burst can actually fire.
    pub max_step: u64,
    /// Upper bound (inclusive) on the agents corrupted per burst — drivers
    /// set this to the cell's population size.
    pub max_agents: u32,
    /// Upper bound (inclusive) on the number of scheduled bursts.
    pub max_events: u32,
    /// Allow [`FaultPlacementSpec::Targeted`] proposals.  Requires the
    /// driver's scenario to register a target predicate
    /// (`ScenarioBuilder::fault_targets`); when `false` (all pre-existing
    /// domains) the proposal RNG stream is **bit-identical** to earlier
    /// report versions, so committed certificates replay unchanged.
    pub targeted: bool,
}

impl FaultDomain {
    /// Fault mutations disabled: the search space is exactly the PR-4
    /// (init variant, seed, scheduler) space.
    pub fn disabled() -> Self {
        FaultDomain {
            enabled: false,
            max_step: 0,
            max_agents: 0,
            max_events: 0,
            targeted: false,
        }
    }

    /// Crash schedules of up to two bursts within the given step budget and
    /// population size — the domain the tracked report grid searches.
    pub fn bursts(max_step: u64, max_agents: u32) -> Self {
        FaultDomain {
            enabled: true,
            max_step,
            max_agents: max_agents.max(1),
            max_events: 2,
            targeted: false,
        }
    }

    /// Enables [`FaultPlacementSpec::Targeted`] proposals (builder-style) —
    /// only for drivers whose scenario registers a target predicate.
    pub fn with_targeted(mut self) -> Self {
        self.targeted = true;
        self
    }

    /// Samples a uniformly random placement.  The targeted arm extends the
    /// draw range instead of re-weighting it, so domains without `targeted`
    /// consume the RNG exactly as before the axis existed.
    fn sample_placement(&self, rng: &mut ChaCha8Rng) -> FaultPlacementSpec {
        let kinds = if self.targeted { 4u8 } else { 3u8 };
        match rng.gen_range(0..kinds) {
            0 => FaultPlacementSpec::Random {
                count: rng.gen_range(1..=self.max_agents),
            },
            1 => FaultPlacementSpec::Block {
                start: rng.gen_range(0..self.max_agents),
                count: rng.gen_range(1..=self.max_agents),
            },
            2 => FaultPlacementSpec::All,
            _ => FaultPlacementSpec::Targeted {
                limit: rng.gen_range(1..=self.max_agents),
            },
        }
    }

    /// Samples a random single-burst schedule.
    fn sample(&self, rng: &mut ChaCha8Rng) -> FaultPlanSpec {
        FaultPlanSpec::none()
            .with_event(rng.gen_range(0..=self.max_step), self.sample_placement(rng))
    }

    /// Proposes a perturbation of `spec`'s timed events: add/drop a burst,
    /// shift a burst's timing (half/double), or redraw a burst's placement.
    /// Triggered events and Byzantine windows are scenario-coupled (they
    /// reference trigger names and rewrite functions the search cannot
    /// invent), so they pass through proposals **verbatim**: a seed
    /// candidate carrying them keeps them while the search mutates the
    /// timed axes around them.
    pub(crate) fn tweak(&self, spec: &FaultPlanSpec, rng: &mut ChaCha8Rng) -> FaultPlanSpec {
        if !self.enabled {
            return FaultPlanSpec::none();
        }
        if spec.is_empty() {
            return self.sample(rng);
        }
        let mut events = spec.events.clone();
        if events.is_empty() {
            // Only scenario-coupled parts so far: propose a first timed
            // burst alongside them.
            events.push(FaultEventSpec {
                at_step: rng.gen_range(0..=self.max_step),
                placement: self.sample_placement(rng),
            });
            return FaultPlanSpec {
                events,
                triggered: spec.triggered.clone(),
                byzantine: spec.byzantine.clone(),
            };
        }
        match rng.gen_range(0..4u8) {
            // Drop one burst (possibly back to the fault-free plan).
            0 => {
                let victim = rng.gen_range(0..events.len());
                events.remove(victim);
            }
            // Add one burst, capacity permitting.
            1 if (events.len() as u32) < self.max_events => {
                events.push(FaultEventSpec {
                    at_step: rng.gen_range(0..=self.max_step),
                    placement: self.sample_placement(rng),
                });
            }
            // Shift one burst's timing: halve or double, clamped to the
            // budget (timing is the sharpest axis — a burst just before
            // convergence is worth far more than one at step 0).
            2 => {
                let i = rng.gen_range(0..events.len());
                let t = events[i].at_step;
                events[i].at_step = if rng.gen_bool(0.5) {
                    t.saturating_mul(2).clamp(0, self.max_step)
                } else {
                    (t / 2).max(1)
                };
            }
            // Redraw one burst's placement.
            _ => {
                let i = rng.gen_range(0..events.len());
                events[i].placement = self.sample_placement(rng);
            }
        }
        events.sort_by_key(|e| e.at_step);
        FaultPlanSpec {
            events,
            triggered: spec.triggered.clone(),
            byzantine: spec.byzantine.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn specs_build_plans_and_round_trip() {
        let spec = FaultPlanSpec::none()
            .with_event(100, FaultPlacementSpec::Random { count: 3 })
            .with_event(7, FaultPlacementSpec::Block { start: 2, count: 4 })
            .with_event(100, FaultPlacementSpec::All);
        // Sorted by step.
        assert_eq!(spec.events()[0].at_step, 7);
        let plan = spec.plan();
        assert_eq!(plan.len(), 3);
        assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
        assert!(FaultPlanSpec::none().is_empty());
        assert!(FaultPlanSpec::none().plan().is_empty());
        assert_eq!(FaultPlanSpec::none().key(), "none");
        assert!(spec.key().contains("block(start=2,count=4)@7"));
    }

    #[test]
    fn disabled_domain_never_proposes_faults() {
        let domain = FaultDomain::disabled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let seeded = FaultPlanSpec::none().with_event(5, FaultPlacementSpec::All);
        for _ in 0..50 {
            assert!(domain.tweak(&seeded, &mut rng).is_empty());
        }
    }

    #[test]
    fn mutations_stay_in_bounds() {
        let domain = FaultDomain::bursts(1_000, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut spec = FaultPlanSpec::none();
        let mut saw_nonempty = false;
        let mut saw_two_events = false;
        for _ in 0..2_000 {
            spec = domain.tweak(&spec, &mut rng);
            saw_nonempty |= !spec.is_empty();
            saw_two_events |= spec.events().len() == 2;
            assert!(spec.events().len() as u32 <= domain.max_events);
            for e in spec.events() {
                assert!(e.at_step <= domain.max_step);
                match e.placement {
                    FaultPlacementSpec::Random { count } => {
                        assert!((1..=domain.max_agents).contains(&count));
                    }
                    FaultPlacementSpec::Block { start, count } => {
                        assert!(start < domain.max_agents);
                        assert!((1..=domain.max_agents).contains(&count));
                    }
                    FaultPlacementSpec::All => {}
                    FaultPlacementSpec::Targeted { .. } => {
                        panic!("targeted placements need FaultDomain::with_targeted")
                    }
                }
            }
        }
        assert!(saw_nonempty && saw_two_events, "domain explores its bounds");
    }

    #[test]
    fn hostile_specs_build_plans_and_round_trip() {
        let spec = FaultPlanSpec::none()
            .with_event(50, FaultPlacementSpec::Targeted { limit: 1 })
            .with_triggered("on-elect", FaultPlacementSpec::All)
            .with_triggered("on-elect", FaultPlacementSpec::Random { count: 2 })
            .with_byzantine(ByzantineWindowSpec::new([7, 3, 3, 0], 10, 500));
        assert!(!spec.is_empty());
        assert_eq!(spec.triggered().len(), 2);
        let w = spec.byzantine().expect("window attached");
        assert_eq!(w.agents(), &[0, 3, 7], "agents sorted and deduplicated");
        let plan = spec.plan();
        assert_eq!(plan.len(), 3, "one timed + two triggered events");
        assert!(plan.byzantine().is_some());
        assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
        assert_eq!(
            spec.key(),
            "targeted(limit=1)@50+all?on-elect+random(count=2)?on-elect\
             +byz(agents=0.3.7,from=10,until=500)"
        );
    }

    #[test]
    fn inert_byzantine_windows_are_dropped_from_specs() {
        let spec =
            FaultPlanSpec::none().with_byzantine(ByzantineWindowSpec::new(Vec::new(), 0, 100));
        assert!(spec.byzantine().is_none());
        assert!(spec.is_empty());
        assert_eq!(spec.key(), "none");
        let closed = FaultPlanSpec::none().with_byzantine(ByzantineWindowSpec::new([1], 5, 5));
        assert!(closed.is_empty(), "empty step ranges are inert too");
        // A triggered-only spec is non-empty even with zero timed events.
        let triggered = FaultPlanSpec::none().with_triggered("t", FaultPlacementSpec::All);
        assert!(!triggered.is_empty());
    }

    #[test]
    fn placements_and_kinds_are_inverse() {
        for placement in [
            FaultPlacementSpec::Random { count: 3 },
            FaultPlacementSpec::Block { start: 2, count: 4 },
            FaultPlacementSpec::All,
            FaultPlacementSpec::Targeted { limit: 1 },
        ] {
            assert_eq!(FaultPlacementSpec::from_kind(placement.kind()), placement);
        }
    }

    #[test]
    fn targeted_proposals_are_gated_behind_the_domain_flag() {
        let plain = FaultDomain::bursts(1_000, 16);
        let armed = FaultDomain::bursts(1_000, 16).with_targeted();
        let is_targeted = |s: &FaultPlanSpec| {
            s.events()
                .iter()
                .any(|e| matches!(e.placement, FaultPlacementSpec::Targeted { .. }))
        };
        let run = |domain: FaultDomain, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut spec = FaultPlanSpec::none();
            let mut specs = Vec::new();
            for _ in 0..500 {
                spec = domain.tweak(&spec, &mut rng);
                specs.push(spec.clone());
            }
            specs
        };
        assert!(
            !run(plain, 9).iter().any(is_targeted),
            "default domains never propose targeted placements"
        );
        assert!(
            run(armed, 9).iter().any(is_targeted),
            "with_targeted opens the axis"
        );
        for e in run(armed, 9).iter().flat_map(|s| s.events()) {
            if let FaultPlacementSpec::Targeted { limit } = e.placement {
                assert!((1..=armed.max_agents).contains(&limit));
            }
        }
    }

    #[test]
    fn tweaks_preserve_scenario_coupled_parts_verbatim() {
        let domain = FaultDomain::bursts(1_000, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut spec = FaultPlanSpec::none()
            .with_triggered("on-elect", FaultPlacementSpec::All)
            .with_byzantine(ByzantineWindowSpec::new([0, 1], 0, 256));
        let (triggered, byzantine) = (spec.triggered().to_vec(), spec.byzantine().cloned());
        for _ in 0..200 {
            spec = domain.tweak(&spec, &mut rng);
            assert_eq!(spec.triggered(), triggered.as_slice());
            assert_eq!(spec.byzantine(), byzantine.as_ref());
        }
        assert!(
            !spec.events().is_empty() || spec.triggered() == triggered.as_slice(),
            "timed axes mutate around the preserved parts"
        );
    }
}
