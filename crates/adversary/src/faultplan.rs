//! Serializable fault-plan descriptions — the third mutation axis of the
//! worst-case search.
//!
//! Self-stabilization promises recovery from *transient* faults, so the most
//! hostile adversary does not only pick the initial configuration and the
//! schedule: it also crashes agents **mid-run**, ideally right before the
//! protocol would have converged.  [`FaultPlanSpec`] is the integer-exact,
//! exactly-comparable description of such a crash schedule — when each burst
//! fires (timing), which agents it hits (placement) and how many (extent) —
//! that deterministically builds the same [`population::FaultPlan`] every
//! time, exactly like [`crate::SchedulerSpec`] builds schedulers.  Recovery
//! is the protocol's job (that is the self-stabilization contract being
//! probed); the spec only describes the corruption events.
//!
//! The mapping to [`population::FaultPlan`] is lossless in both directions
//! ([`FaultPlanSpec::plan`] / [`FaultPlanSpec::from_plan`] round-trip,
//! property-tested in the workspace), which is what makes fault-bearing
//! [`crate::WorstCase`] certificates replayable through `Scenario`'s fault
//! path.

use population::{ByzantineWindow, ChurnKind, ChurnPlan, FaultKind, FaultPlan, GraphFamily};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Which agents one fault burst corrupts (the placement/extent half of a
/// [`FaultEventSpec`]; the timing half is its `at_step`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPlacementSpec {
    /// Corrupt `count` agents chosen by the run's (seeded) fault injector.
    Random {
        /// Number of agents to corrupt.
        count: u32,
    },
    /// Corrupt the contiguous clockwise block of `count` agents starting at
    /// `start` — a localized burst.
    Block {
        /// Index of the first corrupted agent.
        start: u32,
        /// Number of agents to corrupt.
        count: u32,
    },
    /// Corrupt every agent.
    All,
    /// Corrupt up to `limit` agents currently satisfying the scenario's
    /// target predicate (`ScenarioBuilder::fault_targets`) — e.g. *the
    /// current leader* with a leader predicate and `limit = 1`.  Only
    /// proposable when the driver's scenario registers a predicate
    /// ([`FaultDomain::targeted`]).
    Targeted {
        /// Maximum number of target agents to corrupt.
        limit: u32,
    },
}

impl FaultPlacementSpec {
    /// The [`FaultKind`] this placement describes.
    pub fn kind(self) -> FaultKind {
        match self {
            FaultPlacementSpec::Random { count } => FaultKind::CorruptRandomAgents {
                count: count as usize,
            },
            FaultPlacementSpec::Block { start, count } => FaultKind::CorruptBlock {
                start: start as usize,
                count: count as usize,
            },
            FaultPlacementSpec::All => FaultKind::CorruptAll,
            FaultPlacementSpec::Targeted { limit } => FaultKind::CorruptTargets {
                limit: limit as usize,
            },
        }
    }

    /// Recovers the placement of a [`FaultKind`] — the inverse of
    /// [`FaultPlacementSpec::kind`].
    ///
    /// # Panics
    ///
    /// Panics if an agent count or block start exceeds `u32::MAX` — specs
    /// are integer-exact by construction, and no practical population gets
    /// anywhere near 2³² agents.
    pub fn from_kind(kind: FaultKind) -> Self {
        match kind {
            FaultKind::CorruptRandomAgents { count } => FaultPlacementSpec::Random {
                count: count.try_into().expect("agent count fits u32"),
            },
            FaultKind::CorruptBlock { start, count } => FaultPlacementSpec::Block {
                start: start.try_into().expect("block start fits u32"),
                count: count.try_into().expect("agent count fits u32"),
            },
            FaultKind::CorruptAll => FaultPlacementSpec::All,
            FaultKind::CorruptTargets { limit } => FaultPlacementSpec::Targeted {
                limit: limit.try_into().expect("target limit fits u32"),
            },
        }
    }

    /// The placement's part of a [`FaultPlanSpec::key`].
    fn key(&self) -> String {
        match *self {
            FaultPlacementSpec::Random { count } => format!("random(count={count})"),
            FaultPlacementSpec::Block { start, count } => {
                format!("block(start={start},count={count})")
            }
            FaultPlacementSpec::All => "all".to_string(),
            FaultPlacementSpec::Targeted { limit } => format!("targeted(limit={limit})"),
        }
    }
}

/// One predicate-coupled event of a fault plan: the burst fires when the
/// scenario predicate registered under `trigger` first holds (at most once),
/// instead of at a fixed step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TriggeredEventSpec {
    /// The scenario trigger name (`ScenarioBuilder::trigger`) that arms the
    /// burst.
    pub trigger: String,
    /// Which agents the burst corrupts when it fires.
    pub placement: FaultPlacementSpec,
}

/// A bounded Byzantine window: the agents whose interaction outputs the
/// scenario's `byzantine` rewrite function may rewrite, over the step range
/// `[from_step, until_step)`.
///
/// Agents are kept sorted and deduplicated (matching
/// [`population::ByzantineWindow`]), so two specs describing the same window
/// compare equal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ByzantineWindowSpec {
    agents: Vec<u32>,
    from_step: u64,
    until_step: u64,
}

impl ByzantineWindowSpec {
    /// Builds a window spec (agents are sorted and deduplicated).
    pub fn new(agents: impl IntoIterator<Item = u32>, from_step: u64, until_step: u64) -> Self {
        let mut agents: Vec<u32> = agents.into_iter().collect();
        agents.sort_unstable();
        agents.dedup();
        ByzantineWindowSpec {
            agents,
            from_step,
            until_step,
        }
    }

    /// The Byzantine agent set, sorted and deduplicated.
    pub fn agents(&self) -> &[u32] {
        &self.agents
    }

    /// First step of the window (inclusive).
    pub fn from_step(&self) -> u64 {
        self.from_step
    }

    /// End of the window (exclusive).
    pub fn until_step(&self) -> u64 {
        self.until_step
    }

    /// `true` when the window can never rewrite anything (no agents or an
    /// empty step range) — [`FaultPlanSpec::with_byzantine`] drops such
    /// windows, exactly like [`population::FaultPlan::with_byzantine`].
    pub fn is_inert(&self) -> bool {
        self.agents.is_empty() || self.from_step >= self.until_step
    }

    /// The [`population::ByzantineWindow`] this spec describes.
    fn window(&self) -> ByzantineWindow {
        ByzantineWindow::new(
            self.agents.iter().map(|&a| a as usize),
            self.from_step,
            self.until_step,
        )
    }
}

/// One crash event of a fault plan: a step and a placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultEventSpec {
    /// The step (counted from the start of the run) before which the burst
    /// fires; step 0 fires before the first interaction.
    pub at_step: u64,
    /// Which agents the burst corrupts.
    pub placement: FaultPlacementSpec,
}

/// A value-level description of a whole crash schedule (possibly empty):
/// timed bursts, predicate-coupled (triggered) bursts and an optional
/// Byzantine window.
///
/// Events are kept sorted by step and triggered events by trigger name
/// (matching [`FaultPlan`]'s ordering for timed events), so two specs
/// describing the same schedule compare equal.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlanSpec {
    events: Vec<FaultEventSpec>,
    triggered: Vec<TriggeredEventSpec>,
    byzantine: Option<ByzantineWindowSpec>,
}

impl FaultPlanSpec {
    /// The empty schedule: no faults (the fault-free baseline every search
    /// starts from).
    pub fn none() -> Self {
        FaultPlanSpec::default()
    }

    /// Builds a spec from timed events (sorted by step; the sort is stable,
    /// so same-step events keep their given order, exactly like
    /// [`FaultPlan::at`]).
    pub fn new(mut events: Vec<FaultEventSpec>) -> Self {
        events.sort_by_key(|e| e.at_step);
        FaultPlanSpec {
            events,
            triggered: Vec::new(),
            byzantine: None,
        }
    }

    /// Schedules one more timed burst (builder-style).
    pub fn with_event(mut self, at_step: u64, placement: FaultPlacementSpec) -> Self {
        self.events.push(FaultEventSpec { at_step, placement });
        self.events.sort_by_key(|e| e.at_step);
        self
    }

    /// Couples one more burst to a scenario trigger (builder-style).
    /// Triggered events are kept sorted by trigger name (stable, so
    /// same-name events keep their given order).
    pub fn with_triggered(
        mut self,
        trigger: impl Into<String>,
        placement: FaultPlacementSpec,
    ) -> Self {
        self.triggered.push(TriggeredEventSpec {
            trigger: trigger.into(),
            placement,
        });
        self.triggered.sort_by(|a, b| a.trigger.cmp(&b.trigger));
        self
    }

    /// Attaches a Byzantine window (builder-style).  Inert windows are
    /// dropped, exactly like [`FaultPlan::with_byzantine`], so a spec with a
    /// do-nothing window equals the spec without it.
    pub fn with_byzantine(mut self, window: ByzantineWindowSpec) -> Self {
        self.byzantine = (!window.is_inert()).then_some(window);
        self
    }

    /// The scheduled timed events, sorted by step.
    pub fn events(&self) -> &[FaultEventSpec] {
        &self.events
    }

    /// The predicate-coupled events, sorted by trigger name.
    pub fn triggered(&self) -> &[TriggeredEventSpec] {
        &self.triggered
    }

    /// The Byzantine window, if one is attached (never inert).
    pub fn byzantine(&self) -> Option<&ByzantineWindowSpec> {
        self.byzantine.as_ref()
    }

    /// `true` when no fault is scheduled: no timed events, no triggered
    /// events and no Byzantine window.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.triggered.is_empty() && self.byzantine.is_none()
    }

    /// A compact, stable key for reports and JSON output (`"none"` for the
    /// empty schedule).  Purely timed schedules keep the exact key format of
    /// earlier report versions.
    pub fn key(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut parts: Vec<String> = self
            .events
            .iter()
            .map(|e| format!("{}@{}", e.placement.key(), e.at_step))
            .collect();
        parts.extend(
            self.triggered
                .iter()
                .map(|t| format!("{}?{}", t.placement.key(), t.trigger)),
        );
        if let Some(w) = &self.byzantine {
            let agents: Vec<String> = w.agents.iter().map(|a| a.to_string()).collect();
            parts.push(format!(
                "byz(agents={},from={},until={})",
                agents.join("."),
                w.from_step,
                w.until_step
            ));
        }
        parts.join("+")
    }

    /// Builds the [`FaultPlan`] this spec describes.
    pub fn plan(&self) -> FaultPlan {
        let plan = self.events.iter().fold(FaultPlan::new(), |plan, e| {
            plan.at(e.at_step, e.placement.kind())
        });
        let plan = self.triggered.iter().fold(plan, |plan, t| {
            plan.when(t.trigger.clone(), t.placement.kind())
        });
        match &self.byzantine {
            Some(w) => plan.with_byzantine(w.window()),
            None => plan,
        }
    }

    /// Recovers the spec of a [`FaultPlan`] — the inverse of
    /// [`FaultPlanSpec::plan`] (`from_plan(spec.plan()) == spec`, covered by
    /// a workspace property test).
    ///
    /// # Panics
    ///
    /// Panics if an agent count, block start or target limit exceeds
    /// `u32::MAX` — specs are integer-exact by construction, and no
    /// practical population gets anywhere near 2³² agents.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let events = plan
            .events()
            .iter()
            .map(|e| FaultEventSpec {
                at_step: e.at_step,
                placement: FaultPlacementSpec::from_kind(e.kind),
            })
            .collect();
        let mut triggered: Vec<TriggeredEventSpec> = plan
            .triggered()
            .iter()
            .map(|t| TriggeredEventSpec {
                trigger: t.trigger.clone(),
                placement: FaultPlacementSpec::from_kind(t.kind),
            })
            .collect();
        triggered.sort_by(|a, b| a.trigger.cmp(&b.trigger));
        let byzantine = plan.byzantine().map(|w| {
            ByzantineWindowSpec::new(
                w.agents()
                    .iter()
                    .map(|&a| u32::try_from(a).expect("agent index fits u32")),
                w.from_step(),
                w.until_step(),
            )
        });
        // Timed events are already sorted: FaultPlan keeps them by step.
        FaultPlanSpec {
            events,
            triggered,
            byzantine,
        }
    }
}

/// Which fault-plan mutations the worst-case search may propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDomain {
    /// Allow fault-plan proposals at all.  When `false` every candidate
    /// keeps [`FaultPlanSpec::none`] (the PR-4 search space).
    pub enabled: bool,
    /// Upper bound (inclusive) on each event's `at_step` — drivers set this
    /// to the run's step budget so every proposed burst can actually fire.
    pub max_step: u64,
    /// Upper bound (inclusive) on the agents corrupted per burst — drivers
    /// set this to the cell's population size.
    pub max_agents: u32,
    /// Upper bound (inclusive) on the number of scheduled bursts.
    pub max_events: u32,
    /// Allow [`FaultPlacementSpec::Targeted`] proposals.  Requires the
    /// driver's scenario to register a target predicate
    /// (`ScenarioBuilder::fault_targets`); when `false` (all pre-existing
    /// domains) the proposal RNG stream is **bit-identical** to earlier
    /// report versions, so committed certificates replay unchanged.
    pub targeted: bool,
}

impl FaultDomain {
    /// Fault mutations disabled: the search space is exactly the PR-4
    /// (init variant, seed, scheduler) space.
    pub fn disabled() -> Self {
        FaultDomain {
            enabled: false,
            max_step: 0,
            max_agents: 0,
            max_events: 0,
            targeted: false,
        }
    }

    /// Crash schedules of up to two bursts within the given step budget and
    /// population size — the domain the tracked report grid searches.
    pub fn bursts(max_step: u64, max_agents: u32) -> Self {
        FaultDomain {
            enabled: true,
            max_step,
            max_agents: max_agents.max(1),
            max_events: 2,
            targeted: false,
        }
    }

    /// Enables [`FaultPlacementSpec::Targeted`] proposals (builder-style) —
    /// only for drivers whose scenario registers a target predicate.
    pub fn with_targeted(mut self) -> Self {
        self.targeted = true;
        self
    }

    /// Samples a uniformly random placement.  The targeted arm extends the
    /// draw range instead of re-weighting it, so domains without `targeted`
    /// consume the RNG exactly as before the axis existed.
    fn sample_placement(&self, rng: &mut ChaCha8Rng) -> FaultPlacementSpec {
        let kinds = if self.targeted { 4u8 } else { 3u8 };
        match rng.gen_range(0..kinds) {
            0 => FaultPlacementSpec::Random {
                count: rng.gen_range(1..=self.max_agents),
            },
            1 => FaultPlacementSpec::Block {
                start: rng.gen_range(0..self.max_agents),
                count: rng.gen_range(1..=self.max_agents),
            },
            2 => FaultPlacementSpec::All,
            _ => FaultPlacementSpec::Targeted {
                limit: rng.gen_range(1..=self.max_agents),
            },
        }
    }

    /// Samples a random single-burst schedule.
    fn sample(&self, rng: &mut ChaCha8Rng) -> FaultPlanSpec {
        FaultPlanSpec::none()
            .with_event(rng.gen_range(0..=self.max_step), self.sample_placement(rng))
    }

    /// Proposes a perturbation of `spec`'s timed events: add/drop a burst,
    /// shift a burst's timing (half/double), or redraw a burst's placement.
    /// Triggered events and Byzantine windows are scenario-coupled (they
    /// reference trigger names and rewrite functions the search cannot
    /// invent), so they pass through proposals **verbatim**: a seed
    /// candidate carrying them keeps them while the search mutates the
    /// timed axes around them.
    pub(crate) fn tweak(&self, spec: &FaultPlanSpec, rng: &mut ChaCha8Rng) -> FaultPlanSpec {
        if !self.enabled {
            return FaultPlanSpec::none();
        }
        if spec.is_empty() {
            return self.sample(rng);
        }
        let mut events = spec.events.clone();
        if events.is_empty() {
            // Only scenario-coupled parts so far: propose a first timed
            // burst alongside them.
            events.push(FaultEventSpec {
                at_step: rng.gen_range(0..=self.max_step),
                placement: self.sample_placement(rng),
            });
            return FaultPlanSpec {
                events,
                triggered: spec.triggered.clone(),
                byzantine: spec.byzantine.clone(),
            };
        }
        match rng.gen_range(0..4u8) {
            // Drop one burst (possibly back to the fault-free plan).
            0 => {
                let victim = rng.gen_range(0..events.len());
                events.remove(victim);
            }
            // Add one burst, capacity permitting.
            1 if (events.len() as u32) < self.max_events => {
                events.push(FaultEventSpec {
                    at_step: rng.gen_range(0..=self.max_step),
                    placement: self.sample_placement(rng),
                });
            }
            // Shift one burst's timing: halve or double, clamped to the
            // budget (timing is the sharpest axis — a burst just before
            // convergence is worth far more than one at step 0).
            2 => {
                let i = rng.gen_range(0..events.len());
                let t = events[i].at_step;
                events[i].at_step = if rng.gen_bool(0.5) {
                    t.saturating_mul(2).clamp(0, self.max_step)
                } else {
                    (t / 2).max(1)
                };
            }
            // Redraw one burst's placement.
            _ => {
                let i = rng.gen_range(0..events.len());
                events[i].placement = self.sample_placement(rng);
            }
        }
        events.sort_by_key(|e| e.at_step);
        FaultPlanSpec {
            events,
            triggered: spec.triggered.clone(),
            byzantine: spec.byzantine.clone(),
        }
    }
}

/// Integer-exact description of an interaction-graph family — the topology
/// axis of the worst-case search.  Mirrors the non-custom variants of
/// [`population::GraphFamily`] with exactly-comparable fields, so candidates
/// carrying a graph override hash, compare and serialize like every other
/// spec.  [`GraphFamily::Custom`] closures have no integer description and
/// therefore no spec ([`GraphSpec::from_family`] returns `None` for them).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphSpec {
    /// The paper's directed ring.
    DirectedRing,
    /// The undirected ring of the paper's Section 5.
    UndirectedRing,
    /// The complete interaction graph.
    Complete,
    /// The 2-D wrapped grid (deterministically dimensioned, no seed).
    Torus,
    /// A Watts–Strogatz small-world graph.
    SmallWorld {
        /// Ring-lattice neighbours per agent (`k/2` per side).
        k: u16,
        /// Rewiring probability in thousandths (0..=1000).
        rewire_per_mille: u16,
        /// Family seed.
        seed: u64,
    },
    /// A Barabási–Albert preferential-attachment graph.
    PreferentialAttachment {
        /// Edges attached per new agent.
        m: u16,
        /// Family seed.
        seed: u64,
    },
    /// A random directed `d`-regular graph (union of random Hamiltonian
    /// cycles).
    RandomRegular {
        /// Exact out- and in-degree of every agent.
        degree: u16,
        /// Family seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// The [`GraphFamily`] this spec describes.
    pub fn family(self) -> GraphFamily {
        match self {
            GraphSpec::DirectedRing => GraphFamily::DirectedRing,
            GraphSpec::UndirectedRing => GraphFamily::UndirectedRing,
            GraphSpec::Complete => GraphFamily::Complete,
            GraphSpec::Torus => GraphFamily::Torus,
            GraphSpec::SmallWorld {
                k,
                rewire_per_mille,
                seed,
            } => GraphFamily::SmallWorld {
                k,
                rewire_per_mille,
                seed,
            },
            GraphSpec::PreferentialAttachment { m, seed } => {
                GraphFamily::PreferentialAttachment { m, seed }
            }
            GraphSpec::RandomRegular { degree, seed } => {
                GraphFamily::RandomRegular { degree, seed }
            }
        }
    }

    /// Recovers the spec of a [`GraphFamily`] — the inverse of
    /// [`GraphSpec::family`] for every non-custom family.  Returns `None`
    /// for [`GraphFamily::Custom`], whose closure has no integer
    /// description.
    pub fn from_family(family: &GraphFamily) -> Option<Self> {
        Some(match family {
            GraphFamily::DirectedRing => GraphSpec::DirectedRing,
            GraphFamily::UndirectedRing => GraphSpec::UndirectedRing,
            GraphFamily::Complete => GraphSpec::Complete,
            GraphFamily::Torus => GraphSpec::Torus,
            GraphFamily::SmallWorld {
                k,
                rewire_per_mille,
                seed,
            } => GraphSpec::SmallWorld {
                k: *k,
                rewire_per_mille: *rewire_per_mille,
                seed: *seed,
            },
            GraphFamily::PreferentialAttachment { m, seed } => {
                GraphSpec::PreferentialAttachment { m: *m, seed: *seed }
            }
            GraphFamily::RandomRegular { degree, seed } => GraphSpec::RandomRegular {
                degree: *degree,
                seed: *seed,
            },
            GraphFamily::Custom(_) => return None,
        })
    }

    /// A compact, stable key for reports and JSON output.
    pub fn key(self) -> String {
        match self {
            GraphSpec::DirectedRing => "ring".to_string(),
            GraphSpec::UndirectedRing => "undirected-ring".to_string(),
            GraphSpec::Complete => "complete".to_string(),
            GraphSpec::Torus => "torus".to_string(),
            GraphSpec::SmallWorld {
                k,
                rewire_per_mille,
                seed,
            } => format!("small-world(k={k},p={rewire_per_mille},seed={seed})"),
            GraphSpec::PreferentialAttachment { m, seed } => {
                format!("preferential(m={m},seed={seed})")
            }
            GraphSpec::RandomRegular { degree, seed } => {
                format!("random-regular(degree={degree},seed={seed})")
            }
        }
    }
}

/// One kind of mid-run topology change — the exactly-comparable mirror of
/// [`population::ChurnKind`] (which is not `Hash`, so candidates mirror it
/// instead of embedding it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChurnKindSpec {
    /// Replace `count` arcs with fresh random arcs.
    Rewire {
        /// How many arcs to replace.
        count: u32,
    },
    /// Split the population into `blocks` contiguous blocks.
    Partition {
        /// Number of blocks (at least 2).
        blocks: u32,
    },
    /// Rebuild the pristine family graph at the current size.
    Heal,
    /// Grow the population by `count` agents in arbitrary states.
    Join {
        /// How many agents join.
        count: u32,
    },
    /// Shrink the population by `count` agents (highest indices).
    Leave {
        /// How many agents leave.
        count: u32,
    },
}

impl ChurnKindSpec {
    /// The [`ChurnKind`] this spec describes.
    pub fn kind(self) -> ChurnKind {
        match self {
            ChurnKindSpec::Rewire { count } => ChurnKind::Rewire { count },
            ChurnKindSpec::Partition { blocks } => ChurnKind::Partition { blocks },
            ChurnKindSpec::Heal => ChurnKind::Heal,
            ChurnKindSpec::Join { count } => ChurnKind::Join { count },
            ChurnKindSpec::Leave { count } => ChurnKind::Leave { count },
        }
    }

    /// Recovers the spec of a [`ChurnKind`] — the inverse of
    /// [`ChurnKindSpec::kind`].
    pub fn from_kind(kind: ChurnKind) -> Self {
        match kind {
            ChurnKind::Rewire { count } => ChurnKindSpec::Rewire { count },
            ChurnKind::Partition { blocks } => ChurnKindSpec::Partition { blocks },
            ChurnKind::Heal => ChurnKindSpec::Heal,
            ChurnKind::Join { count } => ChurnKindSpec::Join { count },
            ChurnKind::Leave { count } => ChurnKindSpec::Leave { count },
        }
    }

    /// The kind's part of a [`ChurnPlanSpec::key`].
    fn key(&self) -> String {
        match *self {
            ChurnKindSpec::Rewire { count } => format!("rewire(count={count})"),
            ChurnKindSpec::Partition { blocks } => format!("partition(blocks={blocks})"),
            ChurnKindSpec::Heal => "heal".to_string(),
            ChurnKindSpec::Join { count } => format!("join(count={count})"),
            ChurnKindSpec::Leave { count } => format!("leave(count={count})"),
        }
    }
}

/// One topology change of a churn plan: a step and a kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChurnEventSpec {
    /// The step before which the change applies (step 0 fires before the
    /// first interaction).
    pub at_step: u64,
    /// The topology change.
    pub kind: ChurnKindSpec,
}

/// A value-level description of a whole churn schedule (possibly empty) —
/// the topology sibling of [`FaultPlanSpec`].  The mapping to
/// [`population::ChurnPlan`] is lossless in both directions
/// ([`ChurnPlanSpec::plan`] / [`ChurnPlanSpec::from_plan`], property-tested
/// in this crate), which is what makes churn-bearing certificates replayable
/// through `Scenario::with_churn_plan`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ChurnPlanSpec {
    events: Vec<ChurnEventSpec>,
}

impl ChurnPlanSpec {
    /// The empty schedule: no churn (every search baseline).
    pub fn none() -> Self {
        ChurnPlanSpec::default()
    }

    /// Schedules one more topology change (builder-style; events are kept
    /// sorted by step, with a stable sort so same-step events keep their
    /// given order, exactly like [`ChurnPlan::at`]).
    pub fn with_event(mut self, at_step: u64, kind: ChurnKindSpec) -> Self {
        self.events.push(ChurnEventSpec { at_step, kind });
        self.events.sort_by_key(|e| e.at_step);
        self
    }

    /// The scheduled events, sorted by step.
    pub fn events(&self) -> &[ChurnEventSpec] {
        &self.events
    }

    /// `true` when no topology change is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` if any event grows the population (requires the driver's
    /// scenario to register a corruption function).
    pub fn has_joins(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, ChurnKindSpec::Join { .. }))
    }

    /// A compact, stable key for reports and JSON output (`"none"` for the
    /// empty schedule).
    pub fn key(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        self.events
            .iter()
            .map(|e| format!("{}@{}", e.kind.key(), e.at_step))
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Builds the [`ChurnPlan`] this spec describes.
    ///
    /// # Panics
    ///
    /// Panics on zero-extent events (`count == 0`, or a partition into fewer
    /// than two blocks), exactly like [`ChurnPlan::at`] — [`ChurnDomain`]
    /// never proposes them, so a panicking spec is always hand-built.
    pub fn plan(&self) -> ChurnPlan {
        self.events.iter().fold(ChurnPlan::new(), |plan, e| {
            plan.at(e.at_step, e.kind.kind())
        })
    }

    /// Recovers the spec of a [`ChurnPlan`] — the inverse of
    /// [`ChurnPlanSpec::plan`] (`from_plan(spec.plan()) == spec`, covered by
    /// a property test).
    pub fn from_plan(plan: &ChurnPlan) -> Self {
        ChurnPlanSpec {
            // Events are already sorted: ChurnPlan keeps them by step.
            events: plan
                .events()
                .iter()
                .map(|e| ChurnEventSpec {
                    at_step: e.at_step,
                    kind: ChurnKindSpec::from_kind(e.kind),
                })
                .collect(),
        }
    }
}

/// Which churn-plan mutations the worst-case search may propose.
///
/// The proposal grammar deliberately excludes [`ChurnKindSpec::Partition`]
/// and [`ChurnKindSpec::Heal`]: a proposed partition with no matching heal
/// trivially censors every run at its budget (the stop predicate becomes
/// unreachable), which would let the search "win" without saying anything
/// about the protocol.  Partition/heal schedules stay fully replayable
/// through [`ChurnPlanSpec`] — they are just never *proposed*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnDomain {
    /// Allow churn proposals at all.  When `false` every candidate keeps
    /// [`ChurnPlanSpec::none`] and the proposal RNG stream is bit-identical
    /// to the churn-free search space.
    pub enabled: bool,
    /// Upper bound (inclusive) on each event's `at_step`.
    pub max_step: u64,
    /// Upper bound (inclusive) on the arcs rewired / agents joined or left
    /// per event.
    pub max_extent: u32,
    /// Upper bound (inclusive) on the number of scheduled events.
    pub max_events: u32,
    /// Allow [`ChurnKindSpec::Join`] / [`ChurnKindSpec::Leave`] proposals.
    /// Joins require the driver's scenario to register a corruption
    /// function; when `false` only rewires are proposed.
    pub join_leave: bool,
}

impl ChurnDomain {
    /// Churn mutations disabled: the search space is exactly the churn-free
    /// space, with a bit-identical proposal RNG stream.
    pub fn disabled() -> Self {
        ChurnDomain {
            enabled: false,
            max_step: 0,
            max_extent: 0,
            max_events: 0,
            join_leave: false,
        }
    }

    /// Rewire-only churn of up to two events within the given step budget
    /// and extent.
    pub fn rewirings(max_step: u64, max_extent: u32) -> Self {
        ChurnDomain {
            enabled: true,
            max_step,
            max_extent: max_extent.max(1),
            max_events: 2,
            join_leave: false,
        }
    }

    /// Enables join/leave proposals (builder-style) — only for drivers whose
    /// scenario registers a corruption function.
    pub fn with_join_leave(mut self) -> Self {
        self.join_leave = true;
        self
    }

    /// Samples a uniformly random event kind.  The join/leave arms extend
    /// the draw range instead of re-weighting it, so rewire-only domains
    /// consume the RNG exactly as before the axis existed.
    fn sample_kind(&self, rng: &mut ChaCha8Rng) -> ChurnKindSpec {
        let kinds = if self.join_leave { 3u8 } else { 1u8 };
        match rng.gen_range(0..kinds) {
            0 => ChurnKindSpec::Rewire {
                count: rng.gen_range(1..=self.max_extent),
            },
            1 => ChurnKindSpec::Join {
                count: rng.gen_range(1..=self.max_extent),
            },
            _ => ChurnKindSpec::Leave {
                count: rng.gen_range(1..=self.max_extent),
            },
        }
    }

    /// Samples a random single-event schedule.
    fn sample(&self, rng: &mut ChaCha8Rng) -> ChurnPlanSpec {
        ChurnPlanSpec::none().with_event(rng.gen_range(0..=self.max_step), self.sample_kind(rng))
    }

    /// Proposes a perturbation of `spec`: add/drop an event, shift an
    /// event's timing (half/double), or redraw an event's kind — the same
    /// move grammar as [`FaultDomain::tweak`].
    pub(crate) fn tweak(&self, spec: &ChurnPlanSpec, rng: &mut ChaCha8Rng) -> ChurnPlanSpec {
        if !self.enabled {
            return ChurnPlanSpec::none();
        }
        if spec.is_empty() {
            return self.sample(rng);
        }
        let mut events = spec.events.clone();
        match rng.gen_range(0..4u8) {
            0 => {
                let victim = rng.gen_range(0..events.len());
                events.remove(victim);
            }
            1 if (events.len() as u32) < self.max_events => {
                events.push(ChurnEventSpec {
                    at_step: rng.gen_range(0..=self.max_step),
                    kind: self.sample_kind(rng),
                });
            }
            2 => {
                let i = rng.gen_range(0..events.len());
                let t = events[i].at_step;
                events[i].at_step = if rng.gen_bool(0.5) {
                    t.saturating_mul(2).clamp(0, self.max_step)
                } else {
                    (t / 2).max(1)
                };
            }
            _ => {
                let i = rng.gen_range(0..events.len());
                events[i].kind = self.sample_kind(rng);
            }
        }
        events.sort_by_key(|e| e.at_step);
        ChurnPlanSpec { events }
    }
}

/// Which graph-family mutations the worst-case search may propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphDomain {
    /// Allow graph proposals at all.  When `false` every candidate keeps
    /// `None` (the driver scenario's own family) and the proposal RNG
    /// stream is bit-identical to the fixed-topology search space.
    pub enabled: bool,
    /// Upper bound (inclusive) on the structural degree parameters: `k` for
    /// small-world, `m` for preferential attachment, `degree` for
    /// random-regular.
    pub max_degree: u16,
}

impl GraphDomain {
    /// Graph mutations disabled: candidates keep the scenario's own family.
    pub fn disabled() -> Self {
        GraphDomain {
            enabled: false,
            max_degree: 0,
        }
    }

    /// The generated families (torus, small-world, preferential-attachment,
    /// random-regular) with degree parameters up to `max_degree`.
    pub fn generated(max_degree: u16) -> Self {
        GraphDomain {
            enabled: true,
            max_degree: max_degree.max(2),
        }
    }

    /// Samples a uniformly random generated family.
    fn sample(&self, rng: &mut ChaCha8Rng) -> GraphSpec {
        match rng.gen_range(0..4u8) {
            0 => GraphSpec::Torus,
            1 => GraphSpec::SmallWorld {
                k: rng.gen_range(2..=self.max_degree),
                rewire_per_mille: rng.gen_range(0..=1000),
                seed: rng.gen(),
            },
            2 => GraphSpec::PreferentialAttachment {
                m: rng.gen_range(1..=self.max_degree),
                seed: rng.gen(),
            },
            _ => GraphSpec::RandomRegular {
                degree: rng.gen_range(1..=self.max_degree),
                seed: rng.gen(),
            },
        }
    }

    /// Proposes a graph override: from `None`, a fresh family; from a
    /// seeded family, half the proposals redraw everything and half keep
    /// the structure but reseed it (the cheap local move).
    pub(crate) fn tweak(
        &self,
        spec: &Option<GraphSpec>,
        rng: &mut ChaCha8Rng,
    ) -> Option<GraphSpec> {
        if !self.enabled {
            return None;
        }
        let current = match spec {
            None => return Some(self.sample(rng)),
            Some(s) => *s,
        };
        if rng.gen_bool(0.5) {
            return Some(self.sample(rng));
        }
        Some(match current {
            GraphSpec::SmallWorld {
                k,
                rewire_per_mille,
                ..
            } => GraphSpec::SmallWorld {
                k,
                rewire_per_mille,
                seed: rng.gen(),
            },
            GraphSpec::PreferentialAttachment { m, .. } => {
                GraphSpec::PreferentialAttachment { m, seed: rng.gen() }
            }
            GraphSpec::RandomRegular { degree, .. } => GraphSpec::RandomRegular {
                degree,
                seed: rng.gen(),
            },
            // Parameterless families have no local move: redraw.
            _ => self.sample(rng),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn specs_build_plans_and_round_trip() {
        let spec = FaultPlanSpec::none()
            .with_event(100, FaultPlacementSpec::Random { count: 3 })
            .with_event(7, FaultPlacementSpec::Block { start: 2, count: 4 })
            .with_event(100, FaultPlacementSpec::All);
        // Sorted by step.
        assert_eq!(spec.events()[0].at_step, 7);
        let plan = spec.plan();
        assert_eq!(plan.len(), 3);
        assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
        assert!(FaultPlanSpec::none().is_empty());
        assert!(FaultPlanSpec::none().plan().is_empty());
        assert_eq!(FaultPlanSpec::none().key(), "none");
        assert!(spec.key().contains("block(start=2,count=4)@7"));
    }

    #[test]
    fn disabled_domain_never_proposes_faults() {
        let domain = FaultDomain::disabled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let seeded = FaultPlanSpec::none().with_event(5, FaultPlacementSpec::All);
        for _ in 0..50 {
            assert!(domain.tweak(&seeded, &mut rng).is_empty());
        }
    }

    #[test]
    fn mutations_stay_in_bounds() {
        let domain = FaultDomain::bursts(1_000, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut spec = FaultPlanSpec::none();
        let mut saw_nonempty = false;
        let mut saw_two_events = false;
        for _ in 0..2_000 {
            spec = domain.tweak(&spec, &mut rng);
            saw_nonempty |= !spec.is_empty();
            saw_two_events |= spec.events().len() == 2;
            assert!(spec.events().len() as u32 <= domain.max_events);
            for e in spec.events() {
                assert!(e.at_step <= domain.max_step);
                match e.placement {
                    FaultPlacementSpec::Random { count } => {
                        assert!((1..=domain.max_agents).contains(&count));
                    }
                    FaultPlacementSpec::Block { start, count } => {
                        assert!(start < domain.max_agents);
                        assert!((1..=domain.max_agents).contains(&count));
                    }
                    FaultPlacementSpec::All => {}
                    FaultPlacementSpec::Targeted { .. } => {
                        panic!("targeted placements need FaultDomain::with_targeted")
                    }
                }
            }
        }
        assert!(saw_nonempty && saw_two_events, "domain explores its bounds");
    }

    #[test]
    fn hostile_specs_build_plans_and_round_trip() {
        let spec = FaultPlanSpec::none()
            .with_event(50, FaultPlacementSpec::Targeted { limit: 1 })
            .with_triggered("on-elect", FaultPlacementSpec::All)
            .with_triggered("on-elect", FaultPlacementSpec::Random { count: 2 })
            .with_byzantine(ByzantineWindowSpec::new([7, 3, 3, 0], 10, 500));
        assert!(!spec.is_empty());
        assert_eq!(spec.triggered().len(), 2);
        let w = spec.byzantine().expect("window attached");
        assert_eq!(w.agents(), &[0, 3, 7], "agents sorted and deduplicated");
        let plan = spec.plan();
        assert_eq!(plan.len(), 3, "one timed + two triggered events");
        assert!(plan.byzantine().is_some());
        assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
        assert_eq!(
            spec.key(),
            "targeted(limit=1)@50+all?on-elect+random(count=2)?on-elect\
             +byz(agents=0.3.7,from=10,until=500)"
        );
    }

    #[test]
    fn inert_byzantine_windows_are_dropped_from_specs() {
        let spec =
            FaultPlanSpec::none().with_byzantine(ByzantineWindowSpec::new(Vec::new(), 0, 100));
        assert!(spec.byzantine().is_none());
        assert!(spec.is_empty());
        assert_eq!(spec.key(), "none");
        let closed = FaultPlanSpec::none().with_byzantine(ByzantineWindowSpec::new([1], 5, 5));
        assert!(closed.is_empty(), "empty step ranges are inert too");
        // A triggered-only spec is non-empty even with zero timed events.
        let triggered = FaultPlanSpec::none().with_triggered("t", FaultPlacementSpec::All);
        assert!(!triggered.is_empty());
    }

    #[test]
    fn placements_and_kinds_are_inverse() {
        for placement in [
            FaultPlacementSpec::Random { count: 3 },
            FaultPlacementSpec::Block { start: 2, count: 4 },
            FaultPlacementSpec::All,
            FaultPlacementSpec::Targeted { limit: 1 },
        ] {
            assert_eq!(FaultPlacementSpec::from_kind(placement.kind()), placement);
        }
    }

    #[test]
    fn targeted_proposals_are_gated_behind_the_domain_flag() {
        let plain = FaultDomain::bursts(1_000, 16);
        let armed = FaultDomain::bursts(1_000, 16).with_targeted();
        let is_targeted = |s: &FaultPlanSpec| {
            s.events()
                .iter()
                .any(|e| matches!(e.placement, FaultPlacementSpec::Targeted { .. }))
        };
        let run = |domain: FaultDomain, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut spec = FaultPlanSpec::none();
            let mut specs = Vec::new();
            for _ in 0..500 {
                spec = domain.tweak(&spec, &mut rng);
                specs.push(spec.clone());
            }
            specs
        };
        assert!(
            !run(plain, 9).iter().any(is_targeted),
            "default domains never propose targeted placements"
        );
        assert!(
            run(armed, 9).iter().any(is_targeted),
            "with_targeted opens the axis"
        );
        for e in run(armed, 9).iter().flat_map(|s| s.events()) {
            if let FaultPlacementSpec::Targeted { limit } = e.placement {
                assert!((1..=armed.max_agents).contains(&limit));
            }
        }
    }

    #[test]
    fn graph_specs_and_families_are_inverse() {
        let specs = [
            GraphSpec::DirectedRing,
            GraphSpec::UndirectedRing,
            GraphSpec::Complete,
            GraphSpec::Torus,
            GraphSpec::SmallWorld {
                k: 4,
                rewire_per_mille: 150,
                seed: 9,
            },
            GraphSpec::PreferentialAttachment { m: 2, seed: 9 },
            GraphSpec::RandomRegular { degree: 3, seed: 9 },
        ];
        for spec in specs {
            assert_eq!(GraphSpec::from_family(&spec.family()), Some(spec));
            assert!(!spec.key().is_empty());
        }
        assert_eq!(GraphSpec::DirectedRing.key(), "ring");
        assert_eq!(
            GraphSpec::SmallWorld {
                k: 4,
                rewire_per_mille: 150,
                seed: 9
            }
            .key(),
            "small-world(k=4,p=150,seed=9)"
        );
        let custom = GraphFamily::Custom(std::sync::Arc::new(|n| {
            population::ArbitraryGraph::directed_ring(n)
        }));
        assert_eq!(GraphSpec::from_family(&custom), None);
    }

    #[test]
    fn churn_specs_build_plans_and_round_trip() {
        let spec = ChurnPlanSpec::none()
            .with_event(100, ChurnKindSpec::Heal)
            .with_event(7, ChurnKindSpec::Rewire { count: 2 })
            .with_event(50, ChurnKindSpec::Join { count: 1 })
            .with_event(80, ChurnKindSpec::Leave { count: 1 })
            .with_event(20, ChurnKindSpec::Partition { blocks: 2 });
        assert_eq!(spec.events()[0].at_step, 7, "events are sorted by step");
        assert!(spec.has_joins());
        let plan = spec.plan();
        assert_eq!(plan.len(), 5);
        assert_eq!(ChurnPlanSpec::from_plan(&plan), spec);
        assert!(ChurnPlanSpec::none().is_empty());
        assert!(ChurnPlanSpec::none().plan().is_empty());
        assert_eq!(ChurnPlanSpec::none().key(), "none");
        assert_eq!(
            spec.key(),
            "rewire(count=2)@7+partition(blocks=2)@20+join(count=1)@50\
             +leave(count=1)@80+heal@100"
        );
    }

    #[test]
    fn churn_kinds_and_specs_are_inverse() {
        for kind in [
            ChurnKindSpec::Rewire { count: 3 },
            ChurnKindSpec::Partition { blocks: 2 },
            ChurnKindSpec::Heal,
            ChurnKindSpec::Join { count: 1 },
            ChurnKindSpec::Leave { count: 2 },
        ] {
            assert_eq!(ChurnKindSpec::from_kind(kind.kind()), kind);
        }
    }

    #[test]
    fn disabled_churn_domain_never_proposes() {
        let domain = ChurnDomain::disabled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let seeded = ChurnPlanSpec::none().with_event(5, ChurnKindSpec::Rewire { count: 1 });
        for _ in 0..50 {
            assert!(domain.tweak(&seeded, &mut rng).is_empty());
        }
    }

    #[test]
    fn churn_mutations_stay_in_bounds_and_respect_gating() {
        let plain = ChurnDomain::rewirings(1_000, 8);
        let armed = ChurnDomain::rewirings(1_000, 8).with_join_leave();
        for (domain, joins_allowed) in [(plain, false), (armed, true)] {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let mut spec = ChurnPlanSpec::none();
            let mut saw_join_leave = false;
            for _ in 0..2_000 {
                spec = domain.tweak(&spec, &mut rng);
                assert!(spec.events().len() as u32 <= domain.max_events);
                for e in spec.events() {
                    assert!(e.at_step <= domain.max_step);
                    match e.kind {
                        ChurnKindSpec::Rewire { count }
                        | ChurnKindSpec::Join { count }
                        | ChurnKindSpec::Leave { count } => {
                            assert!((1..=domain.max_extent).contains(&count));
                            if !matches!(e.kind, ChurnKindSpec::Rewire { .. }) {
                                saw_join_leave = true;
                            }
                        }
                        other => panic!("never proposed: {other:?}"),
                    }
                }
            }
            assert_eq!(
                saw_join_leave, joins_allowed,
                "join/leave proposals are gated behind with_join_leave"
            );
        }
    }

    #[test]
    fn disabled_graph_domain_never_proposes() {
        let domain = GraphDomain::disabled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(domain.tweak(&Some(GraphSpec::Torus), &mut rng), None);
        }
    }

    #[test]
    fn graph_mutations_stay_in_bounds() {
        let domain = GraphDomain::generated(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut spec: Option<GraphSpec> = None;
        let mut families = std::collections::HashSet::new();
        for _ in 0..500 {
            spec = domain.tweak(&spec, &mut rng);
            let s = spec.expect("enabled domains always propose");
            families.insert(std::mem::discriminant(&s));
            match s {
                GraphSpec::Torus => {}
                GraphSpec::SmallWorld {
                    k,
                    rewire_per_mille,
                    ..
                } => {
                    assert!((2..=domain.max_degree).contains(&k));
                    assert!(rewire_per_mille <= 1000);
                }
                GraphSpec::PreferentialAttachment { m, .. } => {
                    assert!((1..=domain.max_degree).contains(&m));
                }
                GraphSpec::RandomRegular { degree, .. } => {
                    assert!((1..=domain.max_degree).contains(&degree));
                }
                fixed => panic!("never proposed: {fixed:?}"),
            }
        }
        assert_eq!(families.len(), 4, "all generated families are explored");
    }

    #[test]
    fn tweaks_preserve_scenario_coupled_parts_verbatim() {
        let domain = FaultDomain::bursts(1_000, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut spec = FaultPlanSpec::none()
            .with_triggered("on-elect", FaultPlacementSpec::All)
            .with_byzantine(ByzantineWindowSpec::new([0, 1], 0, 256));
        let (triggered, byzantine) = (spec.triggered().to_vec(), spec.byzantine().cloned());
        for _ in 0..200 {
            spec = domain.tweak(&spec, &mut rng);
            assert_eq!(spec.triggered(), triggered.as_slice());
            assert_eq!(spec.byzantine(), byzantine.as_ref());
        }
        assert!(
            !spec.events().is_empty() || spec.triggered() == triggered.as_slice(),
            "timed axes mutate around the preserved parts"
        );
    }
}
