//! Serializable fault-plan descriptions — the third mutation axis of the
//! worst-case search.
//!
//! Self-stabilization promises recovery from *transient* faults, so the most
//! hostile adversary does not only pick the initial configuration and the
//! schedule: it also crashes agents **mid-run**, ideally right before the
//! protocol would have converged.  [`FaultPlanSpec`] is the integer-exact,
//! exactly-comparable description of such a crash schedule — when each burst
//! fires (timing), which agents it hits (placement) and how many (extent) —
//! that deterministically builds the same [`population::FaultPlan`] every
//! time, exactly like [`crate::SchedulerSpec`] builds schedulers.  Recovery
//! is the protocol's job (that is the self-stabilization contract being
//! probed); the spec only describes the corruption events.
//!
//! The mapping to [`population::FaultPlan`] is lossless in both directions
//! ([`FaultPlanSpec::plan`] / [`FaultPlanSpec::from_plan`] round-trip,
//! property-tested in the workspace), which is what makes fault-bearing
//! [`crate::WorstCase`] certificates replayable through `Scenario`'s fault
//! path.

use population::{FaultKind, FaultPlan};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Which agents one fault burst corrupts (the placement/extent half of a
/// [`FaultEventSpec`]; the timing half is its `at_step`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPlacementSpec {
    /// Corrupt `count` agents chosen by the run's (seeded) fault injector.
    Random {
        /// Number of agents to corrupt.
        count: u32,
    },
    /// Corrupt the contiguous clockwise block of `count` agents starting at
    /// `start` — a localized burst.
    Block {
        /// Index of the first corrupted agent.
        start: u32,
        /// Number of agents to corrupt.
        count: u32,
    },
    /// Corrupt every agent.
    All,
}

/// One crash event of a fault plan: a step and a placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultEventSpec {
    /// The step (counted from the start of the run) before which the burst
    /// fires; step 0 fires before the first interaction.
    pub at_step: u64,
    /// Which agents the burst corrupts.
    pub placement: FaultPlacementSpec,
}

/// A value-level description of a whole crash schedule (possibly empty).
///
/// Events are kept sorted by step (matching [`FaultPlan`]'s ordering), so
/// two specs describing the same schedule compare equal.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlanSpec {
    events: Vec<FaultEventSpec>,
}

impl FaultPlanSpec {
    /// The empty schedule: no faults (the fault-free baseline every search
    /// starts from).
    pub fn none() -> Self {
        FaultPlanSpec::default()
    }

    /// Builds a spec from events (sorted by step; the sort is stable, so
    /// same-step events keep their given order, exactly like
    /// [`FaultPlan::at`]).
    pub fn new(mut events: Vec<FaultEventSpec>) -> Self {
        events.sort_by_key(|e| e.at_step);
        FaultPlanSpec { events }
    }

    /// Schedules one more burst (builder-style).
    pub fn with_event(mut self, at_step: u64, placement: FaultPlacementSpec) -> Self {
        self.events.push(FaultEventSpec { at_step, placement });
        self.events.sort_by_key(|e| e.at_step);
        self
    }

    /// The scheduled events, sorted by step.
    pub fn events(&self) -> &[FaultEventSpec] {
        &self.events
    }

    /// `true` when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A compact, stable key for reports and JSON output (`"none"` for the
    /// empty schedule).
    pub fn key(&self) -> String {
        if self.events.is_empty() {
            return "none".to_string();
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|e| match e.placement {
                FaultPlacementSpec::Random { count } => {
                    format!("random(count={count})@{}", e.at_step)
                }
                FaultPlacementSpec::Block { start, count } => {
                    format!("block(start={start},count={count})@{}", e.at_step)
                }
                FaultPlacementSpec::All => format!("all@{}", e.at_step),
            })
            .collect();
        parts.join("+")
    }

    /// Builds the [`FaultPlan`] this spec describes.
    pub fn plan(&self) -> FaultPlan {
        self.events.iter().fold(FaultPlan::new(), |plan, e| {
            let kind = match e.placement {
                FaultPlacementSpec::Random { count } => FaultKind::CorruptRandomAgents {
                    count: count as usize,
                },
                FaultPlacementSpec::Block { start, count } => FaultKind::CorruptBlock {
                    start: start as usize,
                    count: count as usize,
                },
                FaultPlacementSpec::All => FaultKind::CorruptAll,
            };
            plan.at(e.at_step, kind)
        })
    }

    /// Recovers the spec of a [`FaultPlan`] — the inverse of
    /// [`FaultPlanSpec::plan`] (`from_plan(spec.plan()) == spec`, covered by
    /// a workspace property test).
    ///
    /// # Panics
    ///
    /// Panics if an agent count or block start exceeds `u32::MAX` — specs
    /// are integer-exact by construction, and no practical population gets
    /// anywhere near 2³² agents.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let events = plan
            .events()
            .iter()
            .map(|e| {
                let placement = match e.kind {
                    FaultKind::CorruptRandomAgents { count } => FaultPlacementSpec::Random {
                        count: count.try_into().expect("agent count fits u32"),
                    },
                    FaultKind::CorruptBlock { start, count } => FaultPlacementSpec::Block {
                        start: start.try_into().expect("block start fits u32"),
                        count: count.try_into().expect("agent count fits u32"),
                    },
                    FaultKind::CorruptAll => FaultPlacementSpec::All,
                };
                FaultEventSpec {
                    at_step: e.at_step,
                    placement,
                }
            })
            .collect();
        // Already sorted: FaultPlan keeps its events sorted by step.
        FaultPlanSpec { events }
    }
}

/// Which fault-plan mutations the worst-case search may propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDomain {
    /// Allow fault-plan proposals at all.  When `false` every candidate
    /// keeps [`FaultPlanSpec::none`] (the PR-4 search space).
    pub enabled: bool,
    /// Upper bound (inclusive) on each event's `at_step` — drivers set this
    /// to the run's step budget so every proposed burst can actually fire.
    pub max_step: u64,
    /// Upper bound (inclusive) on the agents corrupted per burst — drivers
    /// set this to the cell's population size.
    pub max_agents: u32,
    /// Upper bound (inclusive) on the number of scheduled bursts.
    pub max_events: u32,
}

impl FaultDomain {
    /// Fault mutations disabled: the search space is exactly the PR-4
    /// (init variant, seed, scheduler) space.
    pub fn disabled() -> Self {
        FaultDomain {
            enabled: false,
            max_step: 0,
            max_agents: 0,
            max_events: 0,
        }
    }

    /// Crash schedules of up to two bursts within the given step budget and
    /// population size — the domain the tracked report grid searches.
    pub fn bursts(max_step: u64, max_agents: u32) -> Self {
        FaultDomain {
            enabled: true,
            max_step,
            max_agents: max_agents.max(1),
            max_events: 2,
        }
    }

    /// Samples a uniformly random placement.
    fn sample_placement(&self, rng: &mut ChaCha8Rng) -> FaultPlacementSpec {
        match rng.gen_range(0..3u8) {
            0 => FaultPlacementSpec::Random {
                count: rng.gen_range(1..=self.max_agents),
            },
            1 => FaultPlacementSpec::Block {
                start: rng.gen_range(0..self.max_agents),
                count: rng.gen_range(1..=self.max_agents),
            },
            _ => FaultPlacementSpec::All,
        }
    }

    /// Samples a random single-burst schedule.
    fn sample(&self, rng: &mut ChaCha8Rng) -> FaultPlanSpec {
        FaultPlanSpec::none()
            .with_event(rng.gen_range(0..=self.max_step), self.sample_placement(rng))
    }

    /// Proposes a perturbation of `spec`: add/drop a burst, shift a burst's
    /// timing (half/double), or redraw a burst's placement.
    pub(crate) fn tweak(&self, spec: &FaultPlanSpec, rng: &mut ChaCha8Rng) -> FaultPlanSpec {
        if !self.enabled {
            return FaultPlanSpec::none();
        }
        if spec.is_empty() {
            return self.sample(rng);
        }
        let mut events = spec.events.clone();
        match rng.gen_range(0..4u8) {
            // Drop one burst (possibly back to the fault-free plan).
            0 => {
                let victim = rng.gen_range(0..events.len());
                events.remove(victim);
            }
            // Add one burst, capacity permitting.
            1 if (events.len() as u32) < self.max_events => {
                events.push(FaultEventSpec {
                    at_step: rng.gen_range(0..=self.max_step),
                    placement: self.sample_placement(rng),
                });
            }
            // Shift one burst's timing: halve or double, clamped to the
            // budget (timing is the sharpest axis — a burst just before
            // convergence is worth far more than one at step 0).
            2 => {
                let i = rng.gen_range(0..events.len());
                let t = events[i].at_step;
                events[i].at_step = if rng.gen_bool(0.5) {
                    t.saturating_mul(2).clamp(0, self.max_step)
                } else {
                    (t / 2).max(1)
                };
            }
            // Redraw one burst's placement.
            _ => {
                let i = rng.gen_range(0..events.len());
                events[i].placement = self.sample_placement(rng);
            }
        }
        FaultPlanSpec::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn specs_build_plans_and_round_trip() {
        let spec = FaultPlanSpec::none()
            .with_event(100, FaultPlacementSpec::Random { count: 3 })
            .with_event(7, FaultPlacementSpec::Block { start: 2, count: 4 })
            .with_event(100, FaultPlacementSpec::All);
        // Sorted by step.
        assert_eq!(spec.events()[0].at_step, 7);
        let plan = spec.plan();
        assert_eq!(plan.len(), 3);
        assert_eq!(FaultPlanSpec::from_plan(&plan), spec);
        assert!(FaultPlanSpec::none().is_empty());
        assert!(FaultPlanSpec::none().plan().is_empty());
        assert_eq!(FaultPlanSpec::none().key(), "none");
        assert!(spec.key().contains("block(start=2,count=4)@7"));
    }

    #[test]
    fn disabled_domain_never_proposes_faults() {
        let domain = FaultDomain::disabled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let seeded = FaultPlanSpec::none().with_event(5, FaultPlacementSpec::All);
        for _ in 0..50 {
            assert!(domain.tweak(&seeded, &mut rng).is_empty());
        }
    }

    #[test]
    fn mutations_stay_in_bounds() {
        let domain = FaultDomain::bursts(1_000, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut spec = FaultPlanSpec::none();
        let mut saw_nonempty = false;
        let mut saw_two_events = false;
        for _ in 0..2_000 {
            spec = domain.tweak(&spec, &mut rng);
            saw_nonempty |= !spec.is_empty();
            saw_two_events |= spec.events().len() == 2;
            assert!(spec.events().len() as u32 <= domain.max_events);
            for e in spec.events() {
                assert!(e.at_step <= domain.max_step);
                match e.placement {
                    FaultPlacementSpec::Random { count } => {
                        assert!((1..=domain.max_agents).contains(&count));
                    }
                    FaultPlacementSpec::Block { start, count } => {
                        assert!(start < domain.max_agents);
                        assert!((1..=domain.max_agents).contains(&count));
                    }
                    FaultPlacementSpec::All => {}
                }
            }
        }
        assert!(saw_nonempty && saw_two_events, "domain explores its bounds");
    }
}
