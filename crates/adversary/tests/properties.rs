//! Property tests for the topology axis: generated graph families are
//! seed-deterministic (including across threads), structurally sound where
//! the constructors promise it, and every spec ⇄ runtime mapping the
//! certificate contract relies on is lossless.
//!
//! Case counts honour `PROPTEST_CASES` like the rest of the workspace.

use population::{torus_dims, weak_reach, Interaction, InteractionGraph};
use proptest::collection::vec;
use proptest::prelude::*;
use ssle_adversary::{
    ByzantineWindowSpec, ChurnKindSpec, ChurnPlanSpec, FaultPlacementSpec, FaultPlanSpec, GraphSpec,
};

/// The generated (non-lattice parameters drawn from the inputs) families —
/// the spec variants the worst-case search's `GraphDomain` can propose.
fn generated_spec(variant: usize, degree: u16, per_mille: u16, seed: u64) -> GraphSpec {
    match variant % 4 {
        0 => GraphSpec::Torus,
        1 => GraphSpec::SmallWorld {
            k: degree,
            rewire_per_mille: per_mille,
            seed,
        },
        2 => GraphSpec::PreferentialAttachment { m: degree, seed },
        _ => GraphSpec::RandomRegular { degree, seed },
    }
}

fn generated_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    (0usize..4, 1u16..6, 0u16..=1000, any::<u64>()).prop_map(
        |(variant, degree, per_mille, seed)| {
            // SmallWorld's k is a per-side pair count: keep it >= 2 so the
            // strategy never collapses every small-world draw to k/2 == 1.
            let degree = if variant % 4 == 1 { degree + 1 } else { degree };
            generated_spec(variant, degree, per_mille, seed)
        },
    )
}

fn any_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    (0usize..7, 2u16..6, 0u16..=1000, any::<u64>()).prop_map(
        |(variant, degree, per_mille, seed)| match variant {
            0 => GraphSpec::DirectedRing,
            1 => GraphSpec::UndirectedRing,
            2 => GraphSpec::Complete,
            _ => generated_spec(variant - 3, degree, per_mille, seed),
        },
    )
}

/// Strongly connected ⟺ every node is forward-reachable from node 0 and
/// node 0 is forward-reachable from every node (via the reversed arcs).
fn strongly_connected(n: usize, arcs: &[Interaction]) -> bool {
    let reach = |forward: bool| {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for a in arcs {
                let (from, to) = if forward {
                    (a.initiator().index(), a.responder().index())
                } else {
                    (a.responder().index(), a.initiator().index())
                };
                if from == u && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen.iter().filter(|s| **s).count()
    };
    reach(true) == n && reach(false) == n
}

fn out_degrees(n: usize, arcs: &[Interaction]) -> Vec<usize> {
    let mut d = vec![0usize; n];
    for a in arcs {
        d[a.initiator().index()] += 1;
    }
    d
}

fn in_degrees(n: usize, arcs: &[Interaction]) -> Vec<usize> {
    let mut d = vec![0usize; n];
    for a in arcs {
        d[a.responder().index()] += 1;
    }
    d
}

/// Rejects random-regular draws whose degree crowds the arc space: the
/// constructor documents that cycle redraws may exhaust their retry budget
/// ([`population::PopulationError::GraphGenerationFailed`]) when `degree`
/// approaches `n`.  The outcome is a deterministic function of the spec and
/// `n`, so rejecting exactly those draws is sound — the structural
/// properties quantify over every spec that builds at all.
fn assume_buildable(spec: GraphSpec, n: usize) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assume!(!matches!(
        spec.family().build(n),
        Err(population::PopulationError::GraphGenerationFailed { .. })
    ));
    Ok(())
}

fn churn_kind(variant: usize, extent: u32) -> ChurnKindSpec {
    match variant % 5 {
        0 => ChurnKindSpec::Rewire { count: extent },
        1 => ChurnKindSpec::Partition { blocks: extent + 1 },
        2 => ChurnKindSpec::Heal,
        3 => ChurnKindSpec::Join { count: extent },
        _ => ChurnKindSpec::Leave { count: extent },
    }
}

fn churn_plan_strategy() -> impl Strategy<Value = ChurnPlanSpec> {
    vec((0u64..10_000, 0usize..5, 1u32..5), 0..5).prop_map(|events| {
        events
            .into_iter()
            .fold(ChurnPlanSpec::none(), |spec, (at, variant, extent)| {
                spec.with_event(at, churn_kind(variant, extent))
            })
    })
}

fn placement(variant: usize, a: u32, b: u32) -> FaultPlacementSpec {
    match variant % 4 {
        0 => FaultPlacementSpec::Random { count: a },
        1 => FaultPlacementSpec::Block { start: b, count: a },
        2 => FaultPlacementSpec::All,
        _ => FaultPlacementSpec::Targeted { limit: a },
    }
}

fn fault_plan_strategy() -> impl Strategy<Value = FaultPlanSpec> {
    (
        vec((0u64..10_000, 0usize..4, 1u32..9, 0u32..9), 0..4),
        0usize..3,
        (vec(0u32..16, 0..4), 0u64..100, 0u64..100),
    )
        .prop_map(|(events, triggers, (byz_agents, from, until))| {
            let spec = events
                .into_iter()
                .fold(FaultPlanSpec::none(), |spec, (at, variant, a, b)| {
                    spec.with_event(at, placement(variant, a, b))
                });
            let spec = (0..triggers).fold(spec, |spec, t| {
                spec.with_triggered(format!("trigger-{t}"), placement(t, 1 + t as u32, 0))
            });
            // Inert windows are dropped by the builder on both the spec and
            // the runtime side, so any (agents, from, until) draw is fair.
            spec.with_byzantine(ByzantineWindowSpec::new(byz_agents, from, until))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole determinism pin: one spec and one population size name
    /// exactly one arc set, no matter how many times or on which thread the
    /// family is built.  Sweep cells and certificate replays rely on this.
    #[test]
    fn generated_families_are_seed_deterministic(
        spec in generated_spec_strategy(),
        n in 4usize..40,
    ) {
        assume_buildable(spec, n)?;
        let arcs = spec.family().build(n).unwrap().arcs();
        prop_assert_eq!(spec.family().build(n).unwrap().arcs(), arcs.clone());
        let workers: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || spec.family().build(n).unwrap().arcs()))
            .collect();
        for w in workers {
            prop_assert_eq!(w.join().unwrap(), arcs.clone());
        }
    }

    /// Every generated family promises (weak and, by their both-direction /
    /// cycle-union constructions, strong) connectivity — the property that
    /// makes a global stop predicate reachable at all.
    #[test]
    fn generated_families_are_connected(
        spec in generated_spec_strategy(),
        n in 4usize..40,
    ) {
        assume_buildable(spec, n)?;
        let graph = spec.family().build(n).unwrap();
        let arcs = graph.arcs();
        prop_assert_eq!(weak_reach(n, &arcs), n);
        prop_assert!(
            strongly_connected(n, &arcs),
            "{} must be strongly connected at n = {n}",
            spec.key()
        );
    }

    /// Random-regular graphs have *exactly* the requested in- and
    /// out-degree everywhere (clamped to the documented `1..=n-1`).
    #[test]
    fn random_regular_has_exact_degrees(
        degree in 1u16..4,
        seed in any::<u64>(),
        n in 8usize..40,
    ) {
        let spec = GraphSpec::RandomRegular { degree, seed };
        let arcs = spec.family().build(n).unwrap().arcs();
        let want = usize::from(degree).clamp(1, n - 1);
        prop_assert_eq!(out_degrees(n, &arcs), vec![want; n]);
        prop_assert_eq!(in_degrees(n, &arcs), vec![want; n]);
    }

    /// The torus is symmetric (every arc has its reverse) and every agent
    /// has exactly as many arcs as it has distinct lattice neighbours —
    /// 4 on a proper 2-D grid, degenerating gracefully on thin dimensions.
    #[test]
    fn torus_has_exact_lattice_degrees(n in 4usize..60) {
        let arcs = GraphSpec::Torus.family().build(n).unwrap().arcs();
        for a in &arcs {
            prop_assert!(
                arcs.contains(&Interaction::new(
                    a.responder().index(),
                    a.initiator().index()
                )),
                "torus arcs come in both directions"
            );
        }
        let (h, w) = torus_dims(n);
        let outs = out_degrees(n, &arcs);
        for r in 0..h {
            for c in 0..w {
                let mut neighbours = vec![
                    r * w + (c + 1) % w,
                    ((r + 1) % h) * w + c,
                    r * w + (c + w - 1) % w,
                    ((r + h - 1) % h) * w + c,
                ];
                neighbours.sort_unstable();
                neighbours.dedup();
                neighbours.retain(|&v| v != r * w + c);
                prop_assert_eq!(outs[r * w + c], neighbours.len());
            }
        }
        prop_assert_eq!(in_degrees(n, &arcs), outs);
    }

    /// Small-world arc counts stay within the lattice bounds: rewiring
    /// relocates chords but never creates or destroys edges.
    #[test]
    fn small_world_arc_counts_are_bounded(
        k in 2u16..8,
        per_mille in 0u16..=1000,
        seed in any::<u64>(),
        n in 4usize..40,
    ) {
        let spec = GraphSpec::SmallWorld { k, rewire_per_mille: per_mille, seed };
        let arcs = spec.family().build(n).unwrap().arcs();
        let half = (usize::from(k) / 2).min((n - 1) / 2).max(1);
        prop_assert!(arcs.len() <= 2 * n * half);
        prop_assert!(arcs.len() >= 2 * (n - 1), "the ring backbone survives rewiring");
    }

    /// Preferential-attachment arc counts are pinned by the growth rule:
    /// a complete core plus 1..=m undirected edges per later agent.
    #[test]
    fn preferential_attachment_arc_counts_are_bounded(
        m in 1u16..6,
        seed in any::<u64>(),
        n in 4usize..40,
    ) {
        let spec = GraphSpec::PreferentialAttachment { m, seed };
        let arcs = spec.family().build(n).unwrap().arcs();
        let m = usize::from(m);
        let core = (m + 1).min(n);
        let core_edges = core * (core - 1) / 2;
        prop_assert!(arcs.len() >= 2 * (core_edges + (n - core)));
        prop_assert!(arcs.len() <= 2 * (core_edges + (n - core) * m));
    }

    /// GraphSpec ⇄ GraphFamily is lossless for every describable family, so
    /// a certificate's topology rebuilds the exact graph it was found on.
    #[test]
    fn graph_specs_round_trip_through_families(spec in any_spec_strategy()) {
        prop_assert_eq!(GraphSpec::from_family(&spec.family()), Some(spec));
    }

    /// ChurnPlanSpec ⇄ ChurnPlan is lossless, so churn-bearing certificates
    /// replay the exact schedule the search evaluated.
    #[test]
    fn churn_plan_specs_round_trip(spec in churn_plan_strategy()) {
        prop_assert_eq!(ChurnPlanSpec::from_plan(&spec.plan()), spec.clone());
        prop_assert_eq!(spec.plan().len(), spec.events().len());
    }

    /// FaultPlanSpec ⇄ FaultPlan is lossless (timed, triggered and
    /// Byzantine halves included).
    #[test]
    fn fault_plan_specs_round_trip(spec in fault_plan_strategy()) {
        prop_assert_eq!(FaultPlanSpec::from_plan(&spec.plan()), spec.clone());
    }
}
