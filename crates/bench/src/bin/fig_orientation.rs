//! Experiment E9 — ring orientation (Section 5, Theorem 5.2): convergence of
//! `P_OR` from random orientations, fitted against the `O(n² log n)` bound,
//! plus the segment/battle-front decay trajectory.
//!
//! `P_OR` has no leader output, so its scenario uses
//! [`ScenarioBuilder::for_protocol`] — the same erased run path as the
//! leader-election scenarios, on the undirected ring.

use analysis::{fit_models, Summary, Table};
use population::{GraphFamily, ScenarioBuilder, Simulation, SweepPoint, UndirectedRing};
use ssle_bench::check_interval;
use ssle_bench::cli::BenchArgs;
use ssle_bench::report::Report;
use ssle_core::orientation::{facing_fronts, is_oriented, random_orientation_config, Por};

fn main() {
    let args = BenchArgs::parse();
    let sizes = args.sizes();
    let runner = args.runner();
    let mut report = Report::new("Ring orientation P_OR (Theorem 5.2)");

    let scenario = ScenarioBuilder::for_protocol("p-or", |_pt: &SweepPoint| Por::new())
        .graph(GraphFamily::UndirectedRing)
        .init(|_p, pt| random_orientation_config(pt.n, pt.seed))
        .stop_when("oriented", |_p: &Por, c| is_oriented(c))
        .check_every(|pt| check_interval(pt.n))
        .step_budget(|pt| 2_000 * (pt.n as u64).pow(2))
        .sim_seed(|pt| pt.seed ^ 0x5EED)
        .build()
        .expect("complete scenario");
    let summaries = scenario.sweep_summaries(&args.grid(0x0815), &runner);

    let mut table = Table::new(
        "Steps for P_OR to orient the ring (random initial orientation, oracle colouring)",
        &[
            "n",
            "mean steps",
            "median",
            "steps / n^2",
            "steps / (n^2 log2 n)",
        ],
    );
    let mut points = Vec::new();
    for s in &summaries {
        if let Some(summary) = Summary::of(&s.convergence_steps()) {
            let n = s.n as f64;
            points.push((n, summary.mean));
            table.push_row(vec![
                s.n.to_string(),
                format!("{:.3e}", summary.mean),
                format!("{:.3e}", summary.median),
                format!("{:.2}", summary.mean / (n * n)),
                format!("{:.2}", summary.mean / (n * n * n.log2())),
            ]);
        }
    }
    report.table(table);
    if points.len() >= 3 {
        report.value("best_fit", fit_models(&points).best().formula());
        report.note("(Theorem 5.2 proves O(n^2 log n); the protocol uses O(1) states)");
    }

    // Battle-front decay for one representative size.
    let n = *sizes.last().unwrap();
    report.heading(format!("Battle-front decay at n = {n}"));
    let mut sim = Simulation::new(
        Por::new(),
        UndirectedRing::new(n).unwrap(),
        random_orientation_config(n, 33),
        77,
    );
    let mut decay = Table::new("", &["steps", "facing fronts"]);
    let chunk = (n as u64).pow(2) / 2;
    for i in 0..20 {
        decay.push_row(vec![
            (i as u64 * chunk).to_string(),
            facing_fronts(sim.config()).to_string(),
        ]);
        if is_oriented(sim.config()) {
            break;
        }
        sim.run_steps(chunk);
    }
    report.table(decay);
    report.note(
        "The number of fronts (equivalently, segments) is non-increasing and halves\n\
         every O(n^2) steps w.h.p., which is where the O(n^2 log n) bound comes from.",
    );
    report.emit(args.json);
}
