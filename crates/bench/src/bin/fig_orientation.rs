//! Experiment E9 — ring orientation (Section 5, Theorem 5.2): convergence of
//! `P_OR` from random orientations, fitted against the `O(n² log n)` bound,
//! plus the segment/battle-front decay trajectory.

use analysis::{fit_models, Summary, Table};
use population::{BatchRunner, Configuration, Simulation, Trial, UndirectedRing};
use ssle_bench::{check_interval, full_mode, sweep_sizes, sweep_trials};
use ssle_core::orientation::{facing_fronts, is_oriented, random_orientation_config, OrState, Por};

fn main() {
    let full = full_mode();
    let sizes = sweep_sizes(full);
    let trials = sweep_trials(full);
    println!("# Ring orientation P_OR (Theorem 5.2)\n");

    let runner = BatchRunner::new();
    let grid = Trial::grid(&sizes, trials, 0x0815);
    let summaries = runner.run_grouped(&grid, |t: Trial| {
        let mut sim = Simulation::new(
            Por::new(),
            UndirectedRing::new(t.n).unwrap(),
            random_orientation_config(t.n, t.seed),
            t.seed ^ 0x5EED,
        );
        sim.run_until(
            |_p, c: &Configuration<OrState>| is_oriented(c),
            check_interval(t.n),
            2_000 * (t.n as u64).pow(2),
        )
    });

    let mut table = Table::new(
        "Steps for P_OR to orient the ring (random initial orientation, oracle colouring)",
        &[
            "n",
            "mean steps",
            "median",
            "steps / n^2",
            "steps / (n^2 log2 n)",
        ],
    );
    let mut points = Vec::new();
    for s in &summaries {
        if let Some(summary) = Summary::of(&s.convergence_steps()) {
            let n = s.n as f64;
            points.push((n, summary.mean));
            table.push_row(vec![
                s.n.to_string(),
                format!("{:.3e}", summary.mean),
                format!("{:.3e}", summary.median),
                format!("{:.2}", summary.mean / (n * n)),
                format!("{:.2}", summary.mean / (n * n * n.log2())),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    if points.len() >= 3 {
        println!(
            "best fit: {}   (Theorem 5.2 proves O(n^2 log n); the protocol uses O(1) states)\n",
            fit_models(&points).best().formula()
        );
    }

    // Battle-front decay for one representative size.
    let n = *sizes.last().unwrap();
    println!("## Battle-front decay at n = {n}\n");
    let mut sim = Simulation::new(
        Por::new(),
        UndirectedRing::new(n).unwrap(),
        random_orientation_config(n, 33),
        77,
    );
    let mut decay = Table::new("", &["steps", "facing fronts"]);
    let chunk = (n as u64).pow(2) / 2;
    for i in 0..20 {
        decay.push_row(vec![
            (i as u64 * chunk).to_string(),
            facing_fronts(sim.config()).to_string(),
        ]);
        if is_oriented(sim.config()) {
            break;
        }
        sim.run_steps(chunk);
    }
    println!("{}", decay.to_markdown());
    println!(
        "The number of fronts (equivalently, segments) is non-increasing and halves\n\
         every O(n^2) steps w.h.p., which is where the O(n^2 log n) bound comes from."
    );
}
