//! Experiment E8 — `EliminateLeaders()` (Section 3.4 / Lemma 4.11): starting
//! from the all-leaders configuration, measures the steps until a unique
//! leader remains (`Θ(n²)` for the bullets-and-shields war) and prints the
//! leader-count decay trajectory.

use analysis::{fit_models, Summary, Table};
use population::{BatchRunner, Configuration, DirectedRing, LeaderElection, Simulation, Trial};
use ssle_bench::{check_interval, full_mode, leader_count_trajectory, sweep_sizes, sweep_trials};
use ssle_core::{init, InitialCondition, Params, Ppl, PplState};

fn main() {
    let full = full_mode();
    let sizes = sweep_sizes(full);
    let trials = sweep_trials(full);
    println!("# EliminateLeaders: all-leaders to a unique leader (Lemma 4.11)\n");

    let runner = BatchRunner::new();
    let grid = Trial::grid(&sizes, trials, 0xE11);
    let summaries = runner.run_grouped(&grid, |t: Trial| {
        let params = Params::for_ring(t.n);
        let protocol = Ppl::new(params);
        let config = init::generate(InitialCondition::AllLeaders, t.n, &params, t.seed);
        let mut sim = Simulation::new(protocol, DirectedRing::new(t.n).unwrap(), config, t.seed);
        sim.run_until(
            |p: &Ppl, c: &Configuration<PplState>| p.has_unique_leader(c.states()),
            check_interval(t.n),
            600 * (t.n as u64).pow(2),
        )
    });

    let mut table = Table::new(
        "Steps until a unique leader remains (all-leaders start)",
        &["n", "mean steps", "median", "steps / n^2"],
    );
    let mut points = Vec::new();
    for s in &summaries {
        if let Some(summary) = Summary::of(&s.convergence_steps()) {
            let n = s.n as f64;
            points.push((n, summary.mean));
            table.push_row(vec![
                s.n.to_string(),
                format!("{:.3e}", summary.mean),
                format!("{:.3e}", summary.median),
                format!("{:.2}", summary.mean / (n * n)),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    if points.len() >= 3 {
        println!(
            "best fit: {}   ([28] proves Θ(n^2))\n",
            fit_models(&points).best().formula()
        );
    }

    // Leader-count decay trajectory for one representative size.
    let n = *sizes.last().unwrap();
    println!("## Leader-count decay at n = {n}\n");
    let traj = leader_count_trajectory(
        n,
        InitialCondition::AllLeaders,
        5,
        200 * (n as u64).pow(2),
        (n as u64).pow(2) / 2,
    );
    let mut decay = Table::new("", &["steps", "leaders"]);
    for (step, count) in traj.iter().step_by(2) {
        decay.push_row(vec![step.to_string(), count.to_string()]);
    }
    println!("{}", decay.to_markdown());
    println!(
        "The count decreases roughly geometrically (each live-bullet flight kills an\n\
         unshielded leader with probability 1/2) and never reaches zero."
    );
}
