//! Experiment E8 — `EliminateLeaders()` (Section 3.4 / Lemma 4.11): starting
//! from the all-leaders configuration, measures the steps until a unique
//! leader remains (`Θ(n²)` for the bullets-and-shields war) and prints the
//! leader-count decay trajectory.

use analysis::{fit_models, Summary, Table};
use population::LeaderElection;
use ssle_bench::cli::BenchArgs;
use ssle_bench::report::Report;
use ssle_bench::{leader_count_trajectory, ppl_builder};
use ssle_core::{InitialCondition, Ppl};

fn main() {
    let args = BenchArgs::parse();
    let sizes = args.sizes();
    let mut report = Report::new("EliminateLeaders: all-leaders to a unique leader (Lemma 4.11)");

    let scenario = ppl_builder(InitialCondition::AllLeaders)
        .stop_when("unique-leader", |p: &Ppl, c| {
            p.has_unique_leader(c.states())
        })
        .step_budget(|pt| 600 * (pt.n as u64).pow(2))
        .build()
        .expect("complete scenario");
    let summaries = scenario.sweep_summaries(&args.grid(0xE11), &args.runner());

    let mut table = Table::new(
        "Steps until a unique leader remains (all-leaders start)",
        &["n", "mean steps", "median", "steps / n^2"],
    );
    let mut points = Vec::new();
    for s in &summaries {
        if let Some(summary) = Summary::of(&s.convergence_steps()) {
            let n = s.n as f64;
            points.push((n, summary.mean));
            table.push_row(vec![
                s.n.to_string(),
                format!("{:.3e}", summary.mean),
                format!("{:.3e}", summary.median),
                format!("{:.2}", summary.mean / (n * n)),
            ]);
        }
    }
    report.table(table);
    if points.len() >= 3 {
        report.value("best_fit", fit_models(&points).best().formula());
        report.note("([28] proves Θ(n^2))");
    }

    // Leader-count decay trajectory for one representative size.
    let n = *sizes.last().unwrap();
    report.heading(format!("Leader-count decay at n = {n}"));
    let traj = leader_count_trajectory(
        n,
        InitialCondition::AllLeaders,
        5,
        200 * (n as u64).pow(2),
        (n as u64).pow(2) / 2,
    );
    let mut decay = Table::new("", &["steps", "leaders"]);
    for (step, count) in traj.iter().step_by(2) {
        decay.push_row(vec![step.to_string(), count.to_string()]);
    }
    report.table(decay);
    report.note(
        "The count decreases roughly geometrically (each live-bullet flight kills an\n\
         unshielded leader with probability 1/2) and never reaches zero.",
    );
    report.emit(args.json);
}
